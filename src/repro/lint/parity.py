"""PAR rules: fast/legacy dual-implementation parity drift.

PRs 3–5 rewrote three hot paths and kept the original implementations
as executable references: the CSR graph kernels next to the networkx
metrics, the columnar :class:`TrafficLog` next to
:class:`LegacyTrafficLog`, and the circuit-cache/compact-replay flags
whose ``False`` settings restore the legacy mixnet behavior.  Each
pair is pinned by a differential or golden-hash test — the whole
reason a fast path is trustworthy.

These rules keep that contract from rotting:

* PAR001 — a registered pair's symbols drifted: one side disappeared,
  or a must-share parameter was renamed/reordered on one side only.
* PAR002 — a registered pair has no test evidence: no file under the
  test tree mentions all of the pair's evidence tokens, so nothing
  differentially pins it anymore.
* PAR003 — an *unregistered* dual implementation: a ``LegacyX`` class
  coexists with ``X`` but no registry entry covers it, so a new fast
  path shipped without a parity pin.

Register new pairs in :data:`PARITY_PAIRS` (tests may inject their own
registry through :class:`~repro.lint.project.ProjectRuleContext`).
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .project import (
    ProjectIndex,
    ProjectRule,
    ProjectRuleContext,
    register_project_rule,
)

__all__ = ["ParityPair", "PARITY_PAIRS", "Par001", "Par002", "Par003"]


@dataclasses.dataclass(frozen=True)
class ParityPair:
    """One fast/legacy dual implementation under parity contract.

    ``symbols`` maps fast symbols to their legacy counterparts as
    ``(fast_symbol, legacy_symbol, must_share)`` triples; symbols are
    ``"function"`` or ``"Class.method"`` names inside the respective
    module.  ``must_share`` lists parameter names that must appear in
    *both* signatures in the same relative order (the carrier argument
    — ``self`` vs ``graph`` — legitimately differs, so full signature
    equality is not required).  ``evidence`` lists tokens that must
    co-occur in at least one test file for the pair to count as pinned.
    """

    name: str
    fast_module: str
    legacy_module: str
    symbols: Tuple[Tuple[str, str, Tuple[str, ...]], ...]
    evidence: Tuple[str, ...]


#: The shipping registry: the fast/legacy pairs grown in PRs 3–5 (CSR
#: graph kernels, columnar traffic log, circuit cache) and PR 7 (the
#: struct-of-arrays node plane).
PARITY_PAIRS: Tuple[ParityPair, ...] = (
    ParityPair(
        name="graph-metrics",
        fast_module="repro.graphs.fastgraph",
        legacy_module="repro.graphs.metrics",
        symbols=(
            (
                "SnapshotAnalysis.fraction_disconnected",
                "fraction_disconnected",
                (),
            ),
            (
                "SnapshotAnalysis.average_path_length",
                "average_path_length",
                ("sample_sources", "rng"),
            ),
            (
                "SnapshotAnalysis.normalized_path_length",
                "normalized_path_length",
                ("total_nodes", "sample_sources", "rng"),
            ),
            ("SnapshotAnalysis.degree_histogram", "degree_histogram", ()),
        ),
        evidence=("fastgraph", "fraction_disconnected"),
    ),
    ParityPair(
        name="traffic-log",
        fast_module="repro.privlink.traffic",
        legacy_module="repro.privlink.traffic",
        symbols=(
            (
                "TrafficLog.record",
                "LegacyTrafficLog.record",
                ("time", "src", "dst", "size_hint"),
            ),
            ("TrafficLog.window", "LegacyTrafficLog.window", ("start", "end")),
            ("TrafficLog.channels", "LegacyTrafficLog.channels", ()),
            ("TrafficLog.by_endpoint", "LegacyTrafficLog.by_endpoint", ()),
        ),
        evidence=("LegacyTrafficLog",),
    ),
    ParityPair(
        name="circuit-cache",
        fast_module="repro.privlink.mixnet",
        legacy_module="repro.privlink.mixnet",
        symbols=(
            (
                "MixNetwork.__init__",
                "make_mixnet_link_layer",
                ("circuit_cache", "circuit_cache_limit", "compact_replay"),
            ),
        ),
        evidence=("circuit_cache",),
    ),
    # PR 7: the struct-of-arrays node plane.  The arena views must stay
    # byte-identical to the per-node classes (the golden-hash suite runs
    # on the arena plane), and the batch kernels must stay semantically
    # identical (the node_plane bench raises on any state divergence).
    ParityPair(
        name="node-plane-slots",
        fast_module="repro.core.arena",
        legacy_module="repro.core.slots",
        symbols=(
            (
                "ArenaSlots.offer_batch",
                "SamplerSlots.offer_batch",
                ("pseudonyms",),
            ),
            ("ArenaSlots.expire", "SamplerSlots.expire", ("now",)),
            ("NodeArena.batch_offer", "SamplerSlots.offer_batch", ()),
        ),
        evidence=("ArenaSlots", "offer_batch"),
    ),
    ParityPair(
        name="node-plane-cache",
        fast_module="repro.core.arena",
        legacy_module="repro.core.cache",
        symbols=(
            (
                "ArenaCache.merge",
                "PseudonymCache.merge",
                ("received", "now", "just_sent", "own_value"),
            ),
            ("NodeArena.batch_cache_merge", "PseudonymCache.merge", ("now",)),
        ),
        evidence=("ArenaCache", "merge"),
    ),
    ParityPair(
        name="node-plane-links",
        fast_module="repro.core.arena",
        legacy_module="repro.core.links",
        symbols=(
            (
                "ArenaLinkSet.update_from_sample",
                "LinkSet.update_from_sample",
                ("sample",),
            ),
            (
                "NodeArena.batch_links_from_slots",
                "LinkSet.update_from_sample",
                (),
            ),
        ),
        evidence=("ArenaLinkSet", "update_from_sample"),
    ),
    # PR 8: the live-network layer.  WallClock must keep the exact
    # scheduling surface of SimClock — the protocol objects are driven
    # through the shared Clock contract, so a parameter renamed on one
    # side silently forks sim and live behavior.
    # PR 9: the sharded simulation engine.  ShardedOverlay spreads one
    # BatchOverlay run across forked workers and must keep its exact
    # driving surface — the serial-equivalence golden test compares the
    # two through these methods, so a drifted signature means the test
    # no longer exercises the same run.
    ParityPair(
        name="sharded-batch",
        fast_module="repro.parallel.shard",
        legacy_module="repro.core.batch",
        symbols=(
            ("ShardedOverlay.run", "BatchOverlay.run", ("rounds",)),
            ("ShardedOverlay.state_digest", "BatchOverlay.state_digest", ()),
            ("ShardedOverlay.snapshot", "BatchOverlay.snapshot", ("online_only",)),
            ("ShardedOverlay.stats", "BatchOverlay.stats", ()),
            (
                "ShardedOverlay.build",
                "BatchOverlay.build",
                ("config", "extra_edges_per_node", "start_all_online"),
            ),
        ),
        evidence=("ShardedOverlay", "state_digest"),
    ),
    # PR 10: the vectorized dissemination plane.  The batch engine is
    # pinned byte-identical to the object-plane disseminators in
    # counter-sampling mode (same delivery sets, rounds, and forward
    # counts — the heavy_broadcast workload raises on divergence), and
    # the columnar ledger's record views must keep BroadcastRecord's
    # reporting surface so coverage_report runs on either plane.
    ParityPair(
        name="dissemination-plane",
        fast_module="repro.dissemination.batch",
        legacy_module="repro.dissemination.epidemic",
        symbols=(
            (
                "BatchBroadcastEngine.__init__",
                "EpidemicBroadcast.__init__",
                ("fanout", "ttl", "infect_forever"),
            ),
            (
                "BatchBroadcastEngine.broadcast",
                "EpidemicBroadcast.broadcast",
                ("origin_id", "payload"),
            ),
        ),
        evidence=("BatchBroadcastEngine", "EpidemicBroadcast"),
    ),
    ParityPair(
        name="broadcast-ledger",
        fast_module="repro.dissemination.batch",
        legacy_module="repro.dissemination.base",
        symbols=(
            (
                "LedgerRecordView.latency_of",
                "BroadcastRecord.latency_of",
                ("node_id",),
            ),
            (
                "LedgerRecordView.coverage",
                "BroadcastRecord.coverage",
                ("num_nodes",),
            ),
            (
                "LedgerRecordView.latency_percentile",
                "BroadcastRecord.latency_percentile",
                ("q",),
            ),
        ),
        evidence=("LedgerRecordView", "BroadcastRecord"),
    ),
    ParityPair(
        name="net-clock",
        fast_module="repro.net.clock",
        legacy_module="repro.sim.clock",
        symbols=(
            ("WallClock.schedule", "SimClock.schedule", ("time", "callback")),
            (
                "WallClock.schedule_after",
                "SimClock.schedule_after",
                ("delay", "callback"),
            ),
            ("WallClock.post", "SimClock.post", ("time", "callback")),
            (
                "WallClock.post_after",
                "SimClock.post_after",
                ("delay", "callback"),
            ),
        ),
        evidence=("WallClock", "SimClock"),
    ),
)


def _lookup_params(
    index: ProjectIndex, module: str, symbol: str
) -> Optional[List[str]]:
    """Parameter names of ``module.symbol``, or None when missing."""
    summary = index.modules.get(module)
    if summary is None:
        return None
    if "." in symbol:
        class_name, method = symbol.split(".", 1)
        return summary.class_signatures.get(class_name, {}).get(method)
    function = summary.functions.get(f"{module}.{symbol}")
    if function is None:
        return None
    return list(function.params)


def _package_in_scope(index: ProjectIndex, module: str) -> bool:
    """Whether ``module``'s package has any file in the linted set.

    Distinguishes a genuinely deleted module (siblings still indexed)
    from a partial lint whose roots simply exclude the whole package —
    e.g. the self-lint run over ``lint/`` + ``parallel/`` must not
    flag a pair's legacy module living in ``repro.core``.
    """
    package = module.rsplit(".", 1)[0] if "." in module else module
    prefix = package + "."
    return any(
        name == package or name.startswith(prefix) for name in index.modules
    )


def _pair_anchor(index: ProjectIndex, pair: ParityPair) -> Tuple[str, int]:
    summary = index.modules.get(pair.fast_module)
    if summary is not None:
        return summary.path, 1
    return pair.fast_module, 1


def _active_pairs(context: ProjectRuleContext) -> Sequence[ParityPair]:
    if context.parity_pairs is not None:
        return tuple(context.parity_pairs)
    return PARITY_PAIRS


@register_project_rule
class Par001(ProjectRule):
    code = "PAR001"
    name = "parity-signature-drift"
    rationale = (
        "A fast/legacy pair's surfaces drifted apart; differential tests "
        "now compare different operations."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        findings: List[Finding] = []
        index = context.index
        for pair in _active_pairs(context):
            fast_present = pair.fast_module in index.modules
            legacy_present = pair.legacy_module in index.modules
            if not fast_present and not legacy_present:
                # Partial lint (single file/package): the pair's modules
                # are out of scope, not missing.
                continue
            path, line = _pair_anchor(index, pair)
            if not (fast_present and legacy_present):
                absent = (
                    pair.legacy_module if fast_present else pair.fast_module
                )
                if not _package_in_scope(index, absent):
                    # Partial lint again: the absent side's whole
                    # package is outside the linted roots.
                    continue
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"parity pair '{pair.name}': module {absent} is "
                        "missing from the project",
                    )
                )
                continue
            for fast_symbol, legacy_symbol, must_share in pair.symbols:
                fast = _lookup_params(index, pair.fast_module, fast_symbol)
                legacy = _lookup_params(
                    index, pair.legacy_module, legacy_symbol
                )
                if fast is None or legacy is None:
                    side = (
                        f"fast symbol {pair.fast_module}.{fast_symbol}"
                        if fast is None
                        else f"legacy symbol {pair.legacy_module}.{legacy_symbol}"
                    )
                    findings.append(
                        self.finding(
                            path,
                            line,
                            f"parity pair '{pair.name}': {side} is missing",
                        )
                    )
                    continue
                drift = self._order_drift(must_share, fast, legacy)
                if drift is not None:
                    findings.append(
                        self.finding(
                            path,
                            line,
                            f"parity pair '{pair.name}': {fast_symbol} vs "
                            f"{legacy_symbol} drifted — {drift}",
                        )
                    )
        return findings

    @staticmethod
    def _order_drift(
        must_share: Tuple[str, ...], fast: List[str], legacy: List[str]
    ) -> Optional[str]:
        for side_name, params in (("fast", fast), ("legacy", legacy)):
            positions = []
            for shared in must_share:
                if shared not in params:
                    return f"parameter '{shared}' missing on the {side_name} side"
                positions.append(params.index(shared))
            if positions != sorted(positions):
                return f"shared parameters reordered on the {side_name} side"
        return None


@register_project_rule
class Par002(ProjectRule):
    code = "PAR002"
    name = "parity-pair-unpinned"
    rationale = (
        "Every fast/legacy pair must be pinned by a differential or "
        "golden-hash test; an unpinned pair can drift silently."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        if context.tests_root is None:
            return []
        tests_root = Path(context.tests_root)
        if not tests_root.is_dir():
            return []
        sources: Dict[str, str] = {}
        for test_file in sorted(tests_root.rglob("*.py")):
            try:
                sources[str(test_file)] = test_file.read_text(
                    encoding="utf-8", errors="replace"
                )
            except OSError:
                continue
        findings: List[Finding] = []
        for pair in _active_pairs(context):
            if (
                pair.fast_module not in context.index.modules
                and pair.legacy_module not in context.index.modules
            ):
                continue  # out of lint scope, same rule as PAR001
            pinned = any(
                all(token in text for token in pair.evidence)
                for text in sources.values()
            )
            if not pinned:
                path, line = _pair_anchor(context.index, pair)
                tokens = ", ".join(pair.evidence)
                findings.append(
                    self.finding(
                        path,
                        line,
                        f"parity pair '{pair.name}' has no pinning test: no "
                        f"file under {tests_root.name}/ mentions {tokens}",
                    )
                )
        return findings


@register_project_rule
class Par003(ProjectRule):
    code = "PAR003"
    name = "unregistered-dual-implementation"
    rationale = (
        "A LegacyX class next to X is a fast/legacy pair; it must be "
        "registered so the parity rules watch it."
    )

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        index = context.index
        registered: set = set()
        for pair in _active_pairs(context):
            for fast_symbol, legacy_symbol, _ in pair.symbols:
                registered.add(legacy_symbol.split(".")[0])
                registered.add(fast_symbol.split(".")[0])
        findings: List[Finding] = []
        for class_qualname in sorted(index.classes):
            module_summary = index.classes[class_qualname]
            class_name = class_qualname.rsplit(".", 1)[-1]
            if not class_name.startswith("Legacy"):
                continue
            modern = class_name[len("Legacy"):]
            counterpart_exists = any(
                modern in summary.classes
                for summary in index.modules.values()
            )
            if not counterpart_exists:
                continue
            if class_name in registered:
                continue
            findings.append(
                self.finding(
                    module_summary.path,
                    1,
                    f"{class_name} pairs with {modern} but is not in the "
                    "parity registry; add a ParityPair so drift and missing "
                    "pins are caught",
                )
            )
        return findings
