"""The whole-program lint pass: index, call graph, and project rules.

:class:`ProjectIndex` assembles per-file :class:`ModuleSummary` records
(:mod:`repro.lint.summaries`) into a project view:

* **name resolution** — a call written ``metrics.foo(...)`` or a bare
  ``helper(...)`` is resolved through import aliases, re-exports, and
  local scope to the :class:`FunctionSummary` that defines it;
* **call graph** — resolved edges between project functions, with
  worker-entry roots (``_*_task`` names, ``# lint: fork-entry``
  markers, and callables handed to ``parallel_map``/``run_tasks``)
  and BFS reachability for the FORK race rules;
* **recorder classification** — the fixpoint set of pure
  record-keeping functions (no RNG, no clocks, no shared-state
  writes) that the DET003 reporting-only waiver may route timing
  values through;
* **clock waivers** — the interprocedural half of the
  ``perf_counter``-only-feeds-reporting analysis: a clock read whose
  local verdict was ``conditional`` is waived when every callee it
  depends on resolves to a recorder.

Project rules subclass :class:`ProjectRule` and register with
:func:`register_project_rule`; the FLOW/FORK/PAR families live in
:mod:`repro.lint.flow`, :mod:`repro.lint.fork`, and
:mod:`repro.lint.parity`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple, Type

from .findings import Finding
from .summaries import FunctionSummary, ModuleSummary

__all__ = [
    "ProjectIndex",
    "ProjectRule",
    "PROJECT_RULES",
    "register_project_rule",
    "project_rule_codes",
]

#: Callables that fan work out to forked worker processes, as
#: ``(dotted-suffix, runner-arg-position)`` pairs.  A callable passed in
#: the runner slot (positionally or by these keyword names) becomes a
#: worker entry point.
_POOL_CALLS: Dict[str, int] = {
    "parallel_map": 0,
    "run_tasks": 0,
    "run_parallel_sweep": 2,
    "parallel_grid_sweep": 2,
}
_POOL_RUNNER_KEYWORDS: FrozenSet[str] = frozenset({"func", "runner", "experiment"})


class ProjectIndex:
    """Cross-module view over a set of :class:`ModuleSummary` records."""

    def __init__(self, modules: Sequence[ModuleSummary]) -> None:
        self.modules: Dict[str, ModuleSummary] = {
            summary.module: summary for summary in modules
        }
        #: Every function summary by qualified name.
        self.functions: Dict[str, FunctionSummary] = {}
        #: Class qualname ("repro.x.Cls") -> defining module summary.
        self.classes: Dict[str, ModuleSummary] = {}
        for summary in modules:
            self.functions.update(summary.functions)
            for class_name in summary.classes:
                self.classes[f"{summary.module}.{class_name}"] = summary
        self._resolution_cache: Dict[Tuple[str, str, str], Optional[str]] = {}
        self._recorders: Optional[FrozenSet[str]] = None
        self._call_edges: Optional[Dict[str, Tuple[str, ...]]] = None
        self._entries: Optional[Tuple[str, ...]] = None
        self._reachable: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------
    # name resolution
    # ------------------------------------------------------------------

    def resolve_dotted(self, dotted: str, depth: int = 0) -> Optional[str]:
        """Resolve a dotted reference to a project function qualname.

        Follows re-exports (``from .traffic import TrafficLog`` in a
        package ``__init__``) up to a small depth so public aliases
        resolve to the defining module.
        """
        if depth > 8 or not dotted:
            return None
        if dotted in self.functions:
            return dotted
        if dotted in self.classes:
            # Calling a class: the interesting bodies are __init__ and
            # __call__; prefer __init__ for reachability.
            summary = self.classes[dotted]
            class_name = dotted.rsplit(".", 1)[-1]
            for method in ("__init__", "__call__"):
                qualname = f"{summary.module}.{class_name}.{method}"
                if qualname in self.functions:
                    return qualname
            return None
        head, _, tail = dotted.rpartition(".")
        if not head:
            return None
        module = self.modules.get(head)
        if module is not None:
            target = module.aliases.get(tail)
            if target is not None and target != dotted:
                return self.resolve_dotted(target, depth + 1)
            return None
        # The head itself may be an alias target (e.g. repro.privlink
        # re-exporting repro.privlink.traffic.TrafficLog): resolve the
        # head as a name first.
        resolved_head = self._resolve_value_name(head, depth + 1)
        if resolved_head is not None and resolved_head != head:
            return self.resolve_dotted(f"{resolved_head}.{tail}", depth + 1)
        return None

    def _resolve_value_name(self, dotted: str, depth: int) -> Optional[str]:
        """Resolve a dotted name to whatever dotted target it aliases."""
        if depth > 8:
            return None
        if dotted in self.modules or dotted in self.classes:
            return dotted
        head, _, tail = dotted.rpartition(".")
        module = self.modules.get(head)
        if module is not None:
            target = module.aliases.get(tail)
            if target is not None and target != dotted:
                return self._resolve_value_name(target, depth + 1)
        return None

    def resolve_call(
        self, caller: FunctionSummary, kind: str, target: str,
        dotted: Optional[str],
    ) -> Optional[str]:
        """Resolve one call site to a project function qualname."""
        key = (caller.qualname, kind, target)
        if key in self._resolution_cache:
            return self._resolution_cache[key]
        resolved = self._resolve_call_uncached(caller, kind, target, dotted)
        self._resolution_cache[key] = resolved
        return resolved

    def _resolve_call_uncached(
        self, caller: FunctionSummary, kind: str, target: str,
        dotted: Optional[str],
    ) -> Optional[str]:
        module = self.modules.get(caller.module)
        if kind == "self" and caller.class_name is not None:
            method = target.split(".")[0]
            qualname = f"{caller.module}.{caller.class_name}.{method}"
            return qualname if qualname in self.functions else None
        if kind == "name":
            # Nested function in the same unit.
            nested = f"{caller.qualname}.<locals>.{target}"
            if nested in self.functions:
                return nested
            # Sibling nested function (call from one closure to another).
            if "<locals>" in caller.qualname:
                parent = caller.qualname.rsplit(".<locals>.", 1)[0]
                sibling = f"{parent}.<locals>.{target}"
                if sibling in self.functions:
                    return sibling
            # Module-level function or class in the same module.
            local = f"{caller.module}.{target}"
            if local in self.functions:
                return local
            if local in self.classes:
                return self.resolve_dotted(local)
            # Imported name.
            if module is not None:
                aliased = module.aliases.get(target)
                if aliased is not None:
                    return self.resolve_dotted(aliased)
            return None
        if kind == "attr":
            if dotted is not None:
                resolved = self.resolve_dotted(dotted)
                if resolved is not None:
                    return resolved
            # The chain may be rooted at a local module-like name that
            # resolve_imports missed; try the literal text.
            return self.resolve_dotted(target)
        return None

    # ------------------------------------------------------------------
    # recorders (interprocedural half of the DET003 waiver)
    # ------------------------------------------------------------------

    def recorders(self) -> FrozenSet[str]:
        """Functions that only record/compute: safe timing-value sinks.

        A recorder creates no generators, reads no clocks, writes no
        shared state, and every project-resolved call it makes is to
        another recorder.  Computed as a greatest fixpoint: start from
        every candidate and discard violators until stable.
        """
        if self._recorders is not None:
            return self._recorders
        candidates: Set[str] = set()
        for qualname, summary in self.functions.items():
            if summary.rng_creations or summary.clock_reads:
                continue
            if any(
                not write.memo_guarded for write in summary.global_writes
            ):
                continue
            candidates.add(qualname)
        changed = True
        while changed:
            changed = False
            for qualname in list(candidates):
                summary = self.functions[qualname]
                for call in summary.calls:
                    resolved = self.resolve_call(
                        summary, call.kind, call.target, call.dotted
                    )
                    if resolved is not None and resolved not in candidates:
                        candidates.discard(qualname)
                        changed = True
                        break
        self._recorders = frozenset(candidates)
        return self._recorders

    def resolve_waiver_dep(
        self, summary: FunctionSummary, dep: str
    ) -> Optional[str]:
        """Resolve a clock-waiver dependency reference to a qualname."""
        if "." in dep:
            return self.resolve_call(summary, "attr", dep, dep)
        return self.resolve_call(summary, "name", dep, None)

    def waived_clock_lines(self) -> Dict[str, Set[Tuple[int, str]]]:
        """Map of path -> {(line, qualified)} of waived DET003 reads.

        Local ``waived`` verdicts pass through; ``conditional`` ones are
        upgraded when every dependency resolves to a recorder function.
        """
        recorders = self.recorders()
        waived: Dict[str, Set[Tuple[int, str]]] = {}
        for summary in self.functions.values():
            for read in summary.clock_reads:
                if read.verdict == "waived":
                    ok = True
                elif read.verdict == "conditional":
                    ok = True
                    for dep in read.deps:
                        resolved = self.resolve_waiver_dep(summary, dep)
                        if resolved is None or resolved not in recorders:
                            ok = False
                            break
                else:
                    ok = False
                if ok:
                    waived.setdefault(summary.path, set()).add(
                        (read.line, read.qualified)
                    )
        return waived

    # ------------------------------------------------------------------
    # call graph and worker reachability
    # ------------------------------------------------------------------

    def call_edges(self) -> Dict[str, Tuple[str, ...]]:
        """Resolved project-internal call edges per function."""
        if self._call_edges is not None:
            return self._call_edges
        edges: Dict[str, Tuple[str, ...]] = {}
        for qualname, summary in self.functions.items():
            out: List[str] = []
            for call in summary.calls:
                resolved = self.resolve_call(
                    summary, call.kind, call.target, call.dotted
                )
                if resolved is not None:
                    out.append(resolved)
                    # Instantiating a class also exposes its __call__.
                    if resolved.endswith(".__init__"):
                        sibling = resolved[: -len("__init__")] + "__call__"
                        if sibling in self.functions:
                            out.append(sibling)
            # A method's unit includes implicit edges to the class's
            # other dunders only when called; nothing extra here.
            edges[qualname] = tuple(dict.fromkeys(out))
        self._call_edges = edges
        return edges

    def _runner_forwarding_params(self) -> Dict[str, Set[int]]:
        """Functions forwarding a parameter into a pool-runner slot.

        ``figures._map_tasks(func, items, workers)`` hands its first
        parameter to ``parallel_map``; call sites of ``_map_tasks``
        therefore register *their* argument as a worker entry.  One
        forwarding level is resolved.
        """
        forwarding: Dict[str, Set[int]] = {}
        for qualname, summary in self.functions.items():
            param_positions = {
                name: i for i, name in enumerate(summary.params)
            }
            for call in summary.calls:
                runner_pos = self._pool_runner_slot(call.target, call.dotted)
                if runner_pos is None:
                    continue
                for slot, shape in call.callable_args:
                    if not shape.startswith("name:"):
                        continue
                    name = shape.split(":", 1)[1]
                    if name not in param_positions:
                        continue
                    if slot == str(runner_pos) or slot in _POOL_RUNNER_KEYWORDS:
                        forwarding.setdefault(qualname, set()).add(
                            param_positions[name]
                        )
        return forwarding

    @staticmethod
    def _pool_runner_slot(target: str, dotted: Optional[str]) -> Optional[int]:
        for reference in (dotted, target):
            if not reference:
                continue
            tail = reference.rsplit(".", 1)[-1]
            if tail in _POOL_CALLS:
                return _POOL_CALLS[tail]
        return None

    def worker_entries(self) -> Tuple[str, ...]:
        """Worker-side entry points of the call graph.

        A function is an entry when it (a) carries the
        ``# lint: fork-entry`` marker, (b) matches the worker-task
        naming convention (``_worker_main``, ``_*_task``), or (c) is
        passed as the runner/experiment callable to the pool APIs —
        directly or through one forwarding parameter.
        """
        if self._entries is not None:
            return self._entries
        entries: Set[str] = set()
        for qualname, summary in self.functions.items():
            if summary.fork_entry_marker or summary.is_fork_entry_name:
                entries.add(qualname)
        forwarding = self._runner_forwarding_params()
        for summary in self.functions.values():
            for call in summary.calls:
                slots: Set[str] = set()
                runner_pos = self._pool_runner_slot(call.target, call.dotted)
                if runner_pos is not None:
                    slots.add(str(runner_pos))
                    slots.update(_POOL_RUNNER_KEYWORDS)
                resolved_callee = self.resolve_call(
                    summary, call.kind, call.target, call.dotted
                )
                if resolved_callee in forwarding:
                    slots.update(
                        str(position)
                        for position in forwarding[resolved_callee]
                    )
                if not slots:
                    continue
                for slot, shape in call.callable_args:
                    if slot not in slots or not shape.startswith("name:"):
                        continue
                    name = shape.split(":", 1)[1]
                    resolved = self.resolve_call(summary, "name", name, None)
                    if resolved is not None:
                        entries.add(resolved)
        self._entries = tuple(sorted(entries))
        return self._entries

    def worker_reachable(self) -> Dict[str, str]:
        """Functions reachable from worker entries, with one entry name.

        Returns ``{qualname: entry_qualname}`` for every function on a
        resolved call path from a worker entry (entries map to
        themselves).
        """
        if self._reachable is not None:
            return self._reachable
        edges = self.call_edges()
        reachable: Dict[str, str] = {}
        queue: deque = deque()
        for entry in self.worker_entries():
            if entry not in reachable:
                reachable[entry] = entry
                queue.append(entry)
        while queue:
            current = queue.popleft()
            for callee in edges.get(current, ()):
                if callee not in reachable:
                    reachable[callee] = reachable[current]
                    queue.append(callee)
        self._reachable = reachable
        return reachable

    def call_path(self, start: str, goal: str) -> Optional[List[str]]:
        """A shortest resolved call chain from ``start`` to ``goal``."""
        if start == goal:
            return [start]
        edges = self.call_edges()
        parents: Dict[str, str] = {start: start}
        queue: deque = deque([start])
        while queue:
            current = queue.popleft()
            for callee in edges.get(current, ()):
                if callee in parents:
                    continue
                parents[callee] = current
                if callee == goal:
                    chain = [callee]
                    while chain[-1] != start:
                        chain.append(parents[chain[-1]])
                    return list(reversed(chain))
                queue.append(callee)
        return None


# ----------------------------------------------------------------------
# project rule registry
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ProjectRuleContext:
    """What a project rule gets to see."""

    index: ProjectIndex
    #: Root of the test tree, when one was found (PAR002 needs it).
    tests_root: Optional[str] = None
    #: Parity-pair registry override (tests inject synthetic pairs).
    parity_pairs: Optional[Sequence] = None


class ProjectRule:
    """Base class for one interprocedural rule over the whole project."""

    code: str = ""
    name: str = ""
    rationale: str = ""

    def run(self, context: ProjectRuleContext) -> List[Finding]:
        raise NotImplementedError

    def finding(
        self, path: str, line: int, message: str, column: int = 0
    ) -> Finding:
        return Finding(
            path=path, line=line, column=column, rule=self.code,
            message=message,
        )


PROJECT_RULES: Dict[str, Type[ProjectRule]] = {}


def register_project_rule(rule_class: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a project rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in PROJECT_RULES:
        raise ValueError(f"duplicate project rule code {rule_class.code}")
    PROJECT_RULES[rule_class.code] = rule_class
    return rule_class


def project_rule_codes() -> List[str]:
    """All registered project rule codes, sorted."""
    return sorted(PROJECT_RULES)
