"""Suppression comments: ``# lint: disable=RULE[,RULE...]``.

Two scopes are supported:

* **Line scope** — a trailing comment on the offending line::

      started = time.perf_counter()  # lint: disable=DET003

* **File scope** — a ``disable-file`` comment anywhere in the file
  (conventionally near the top)::

      # lint: disable-file=HYG002

Omitting the rule list (``# lint: disable``) suppresses *every* rule
for that scope.  Rule codes are comma-separated and case-insensitive.

Comments are found with :mod:`tokenize`, not regular expressions, so a
string literal containing the marker text never triggers a suppression.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterable, Optional, Set

__all__ = ["SuppressionTable", "parse_suppressions"]

#: Sentinel rule set meaning "all rules".
_ALL: FrozenSet[str] = frozenset({"*"})

_COMMENT_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable-file|disable)\s*(?:=\s*(?P<rules>[\w\s,\-]+))?",
    re.IGNORECASE,
)


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return _ALL
    rules = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return frozenset(rules) if rules else _ALL


class SuppressionTable:
    """Suppressed (line, rule) pairs plus file-wide suppressions."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()

    def add_line(self, line: int, rules: Iterable[str]) -> None:
        """Suppress ``rules`` (or all, for ``"*"``) on ``line``."""
        self._by_line.setdefault(line, set()).update(rules)

    def add_file(self, rules: Iterable[str]) -> None:
        """Suppress ``rules`` (or all, for ``"*"``) in the whole file."""
        self._file_wide.update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        rule = rule.upper()
        if "*" in self._file_wide or rule in self._file_wide:
            return True
        on_line = self._by_line.get(line)
        if on_line is None:
            return False
        return "*" in on_line or rule in on_line

    def __bool__(self) -> bool:
        return bool(self._by_line or self._file_wide)


def parse_suppressions(source: str) -> SuppressionTable:
    """Extract every suppression comment from ``source``.

    Unreadable files (tokenize errors) yield an empty table — the
    parser, not the suppression scanner, is responsible for reporting
    syntax problems.
    """
    table = SuppressionTable()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _COMMENT_RE.search(token.string)
            if match is None:
                continue
            rules = _parse_rule_list(match.group("rules"))
            if match.group("scope").lower() == "disable-file":
                table.add_file(rules)
            else:
                table.add_line(token.start[0], rules)
    except (tokenize.TokenError, IndentationError):
        pass
    return table
