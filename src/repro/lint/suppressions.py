"""Suppression comments: ``# lint: disable=RULE[,RULE...]``.

Two scopes are supported:

* **Line scope** — a trailing comment on the offending line::

      started = time.perf_counter()  # lint: disable=DET003

* **File scope** — a ``disable-file`` comment anywhere in the file
  (conventionally near the top)::

      # lint: disable-file=HYG002

Omitting the rule list (``# lint: disable``) suppresses *every* rule
for that scope.  Rule codes are comma-separated and case-insensitive.

Comments are found with :mod:`tokenize`, not regular expressions, so a
string literal containing the marker text never triggers a suppression.

A line-scope comment suppresses the whole *statement* it is attached
to, not just its physical line: a disable comment anywhere on a call
spanning five lines covers all five, and one on a decorator covers the
decorated def's header (decorators through the signature).  Compound
statements (``def``/``class``/``if``/...) expand to their header only —
a disable on an ``if`` line does not blanket the body.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["SuppressionTable", "parse_suppressions"]

#: Sentinel rule set meaning "all rules".
_ALL: FrozenSet[str] = frozenset({"*"})

_COMMENT_RE = re.compile(
    r"#\s*lint:\s*(?P<scope>disable-file|disable)\s*(?:=\s*(?P<rules>[\w\s,\-]+))?",
    re.IGNORECASE,
)


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return _ALL
    rules = {part.strip().upper() for part in raw.split(",") if part.strip()}
    return frozenset(rules) if rules else _ALL


class SuppressionTable:
    """Suppressed (line, rule) pairs plus file-wide suppressions."""

    def __init__(self) -> None:
        self._by_line: Dict[int, Set[str]] = {}
        self._file_wide: Set[str] = set()
        #: Number of suppression *comments* in the file (what the
        #: baseline ratchet counts; span expansion does not inflate it).
        self.comment_count = 0

    def add_line(self, line: int, rules: Iterable[str]) -> None:
        """Suppress ``rules`` (or all, for ``"*"``) on ``line``."""
        self._by_line.setdefault(line, set()).update(rules)

    def add_file(self, rules: Iterable[str]) -> None:
        """Suppress ``rules`` (or all, for ``"*"``) in the whole file."""
        self._file_wide.update(rules)

    def is_suppressed(self, line: int, rule: str) -> bool:
        """Whether ``rule`` is suppressed at ``line``."""
        rule = rule.upper()
        if "*" in self._file_wide or rule in self._file_wide:
            return True
        on_line = self._by_line.get(line)
        if on_line is None:
            return False
        return "*" in on_line or rule in on_line

    def __bool__(self) -> bool:
        return bool(self._by_line or self._file_wide)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize for the on-disk result cache."""
        return {
            "lines": {
                str(line): sorted(rules)
                for line, rules in self._by_line.items()
            },
            "file": sorted(self._file_wide),
            "comments": self.comment_count,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SuppressionTable":
        table = cls()
        for line, rules in data.get("lines", {}).items():
            table.add_line(int(line), rules)
        table.add_file(data.get("file", ()))
        table.comment_count = int(data.get("comments", 0))
        return table


def _statement_spans(tree: ast.AST) -> List[Tuple[int, int]]:
    """(start, end) line spans of every statement, innermost-friendly.

    Simple statements span their full source extent.  Compound
    statements (anything with a body) span their *header* only:
    decorators through the line before the first body statement, so a
    suppression on a decorator or a wrapped signature covers the whole
    header without blanketing the body.
    """
    spans: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.stmt):
            continue
        start = node.lineno
        for decorator in getattr(node, "decorator_list", []):
            start = min(start, decorator.lineno)
        body = getattr(node, "body", None)
        if body and isinstance(body, list) and isinstance(body[0], ast.stmt):
            end = max(start, body[0].lineno - 1)
        else:
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
        spans.append((start, end))
    return spans


def _expand_to_statement(
    line: int, spans: List[Tuple[int, int]]
) -> range:
    """Lines of the innermost statement span containing ``line``."""
    best: Optional[Tuple[int, int]] = None
    for start, end in spans:
        if start <= line <= end:
            if best is None or (end - start) < (best[1] - best[0]):
                best = (start, end)
    if best is None:
        return range(line, line + 1)
    return range(best[0], best[1] + 1)


def parse_suppressions(
    source: str, tree: Optional[ast.AST] = None
) -> SuppressionTable:
    """Extract every suppression comment from ``source``.

    When ``tree`` is provided (or the source parses), line-scope
    suppressions expand to the whole statement the comment sits on.
    Unreadable files (tokenize errors) yield an empty table — the
    parser, not the suppression scanner, is responsible for reporting
    syntax problems.
    """
    table = SuppressionTable()
    if tree is None:
        try:
            tree = ast.parse(source)
        except SyntaxError:
            tree = None
    spans = _statement_spans(tree) if tree is not None else []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _COMMENT_RE.search(token.string)
            if match is None:
                continue
            rules = _parse_rule_list(match.group("rules"))
            table.comment_count += 1
            if match.group("scope").lower() == "disable-file":
                table.add_file(rules)
            else:
                for line in _expand_to_statement(token.start[0], spans):
                    table.add_line(line, rules)
    except (tokenize.TokenError, IndentationError):
        pass
    return table
