"""Rule registry and the built-in determinism / hygiene rules.

Every rule is an :class:`ast.NodeVisitor` subclass registered under a
stable code (``DET...`` for determinism, ``HYG...`` for simulation
hygiene).  The engine instantiates one rule object per file, calls
:meth:`Rule.run`, and collects the findings.

Determinism rules encode the property the paper's evaluation rests on:
every random draw must flow from the experiment's single root seed
(:class:`repro.rng.RandomStreams`), simulated time must come from the
simulator (never the host clock), and no decision may depend on
hash-randomized iteration order.  See ``docs/linting.md`` for the full
catalog with rationale.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Type

from .findings import Finding

__all__ = ["Rule", "RULES", "register", "rule_codes", "resolve_imports"]


# ----------------------------------------------------------------------
# import resolution
# ----------------------------------------------------------------------


def resolve_imports(tree: ast.AST) -> Dict[str, str]:
    """Map local names to the dotted paths they were imported as.

    ``import numpy as np``           -> ``{"np": "numpy"}``
    ``import numpy.random as npr``   -> ``{"npr": "numpy.random"}``
    ``from numpy import random``     -> ``{"random": "numpy.random"}``
    ``from time import time as now`` -> ``{"now": "time.time"}``

    Only top-level bindings are tracked; a rebinding later in the file
    keeps the last import's target (good enough for lint heuristics).
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the top-level package name.
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports never shadow stdlib/numpy
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def qualified_name(
    node: ast.AST, aliases: Dict[str, str]
) -> Optional[str]:
    """Resolve an attribute chain to a dotted path via import aliases.

    Returns None when the chain does not bottom out at an imported
    name (e.g. a method call on a local variable).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    root = aliases.get(current.id)
    if root is None:
        return None
    parts.append(root)
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# rule base + registry
# ----------------------------------------------------------------------


class Rule(ast.NodeVisitor):
    """Base class for one lint rule over one file.

    Subclasses set ``code``, ``name``, and ``rationale``, then override
    visitor methods and call :meth:`report`.  ``applies_to_path`` lets a
    rule scope itself to part of the tree (e.g. HYG003 only checks
    ``repro/core``).
    """

    code: str = ""
    name: str = ""
    rationale: str = ""

    def __init__(self, path: str, tree: ast.AST) -> None:
        self.path = path
        self.tree = tree
        self.aliases = resolve_imports(tree)
        self.findings: List[Finding] = []

    @classmethod
    def applies_to_path(cls, path: str) -> bool:
        """Whether this rule runs at all for ``path`` (default: yes)."""
        return True

    def report(self, node: ast.AST, message: str) -> None:
        """Record one finding anchored at ``node``."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                rule=self.code,
                message=message,
            )
        )

    def run(self) -> List[Finding]:
        """Visit the tree and return the findings."""
        self.visit(self.tree)
        return self.findings


RULES: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.code:
        raise ValueError(f"{rule_class.__name__} has no code")
    if rule_class.code in RULES:
        raise ValueError(f"duplicate rule code {rule_class.code}")
    RULES[rule_class.code] = rule_class
    return rule_class


def rule_codes() -> List[str]:
    """All registered rule codes, sorted."""
    return sorted(RULES)


# ----------------------------------------------------------------------
# DET001 — unseeded numpy randomness
# ----------------------------------------------------------------------

#: Module-level numpy convenience functions drawing from the hidden
#: global ``RandomState`` (plus ``seed``, which mutates it).
_NP_GLOBAL_FUNCS: FrozenSet[str] = frozenset(
    f"numpy.random.{name}"
    for name in (
        "random",
        "rand",
        "randn",
        "randint",
        "random_sample",
        "random_integers",
        "ranf",
        "sample",
        "choice",
        "shuffle",
        "permutation",
        "seed",
        "normal",
        "uniform",
        "standard_normal",
        "exponential",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "bytes",
    )
)


@register
class UnseededNumpyRng(Rule):
    """Unseeded ``np.random.default_rng()`` or global ``np.random.*``."""

    code = "DET001"
    name = "unseeded-numpy-rng"
    rationale = (
        "Every generator must derive from the experiment's root seed "
        "(repro.rng.RandomStreams); OS-entropy generators and the hidden "
        "global RandomState make runs unreproducible."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = qualified_name(node.func, self.aliases)
        if qualified in ("numpy.random.default_rng", "numpy.random.RandomState"):
            if not node.args and not node.keywords:
                short = qualified.rsplit(".", 1)[-1]
                self.report(
                    node,
                    f"unseeded numpy.random.{short}() draws from OS entropy; "
                    "pass a seed or a RandomStreams substream "
                    "(e.g. repro.rng.fallback_rng(...))",
                )
        elif qualified in _NP_GLOBAL_FUNCS:
            self.report(
                node,
                f"{qualified}() uses numpy's hidden global RandomState; "
                "draw from an explicit np.random.Generator instead",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET002 — the stdlib random module
# ----------------------------------------------------------------------


@register
class GlobalRandomModule(Rule):
    """Any use of the stdlib ``random`` module."""

    code = "DET002"
    name = "stdlib-random"
    rationale = (
        "The stdlib random module keeps interpreter-global state that any "
        "import can perturb; simulation code must draw from numpy "
        "Generators threaded from RandomStreams."
    )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random" or alias.name.startswith("random."):
                self.report(
                    node,
                    "import of the stdlib random module; use numpy "
                    "Generators from repro.rng.RandomStreams",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.level == 0 and node.module == "random":
            self.report(
                node,
                "import from the stdlib random module; use numpy "
                "Generators from repro.rng.RandomStreams",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        qualified = qualified_name(node.func, self.aliases)
        if qualified is not None and (
            qualified == "random" or qualified.startswith("random.")
        ):
            self.report(
                node,
                f"call into the stdlib random module ({qualified}); use an "
                "explicit numpy Generator",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET003 — host-clock reads
# ----------------------------------------------------------------------

_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class HostClock(Rule):
    """Host-clock reads in simulation code paths."""

    code = "DET003"
    name = "host-clock"
    rationale = (
        "Simulated time comes from Simulator.now; host-clock reads leak "
        "wall-clock nondeterminism into results.  Progress display in the "
        "CLI is the one allowlisted use — tag it with "
        "'# lint: disable=DET003'."
    )

    def visit_Call(self, node: ast.Call) -> None:
        qualified = qualified_name(node.func, self.aliases)
        if qualified in _CLOCK_CALLS:
            self.report(
                node,
                f"{qualified}() reads the host clock; simulation code must "
                "use the simulator's clock (sim.now).  If this is CLI "
                "progress display, suppress with '# lint: disable=DET003'",
            )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# DET004 — set iteration feeding RNG-driven logic
# ----------------------------------------------------------------------

_SET_TYPE_NAMES: FrozenSet[str] = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}
)


def _is_set_annotation(annotation: Optional[ast.AST]) -> bool:
    """Whether an annotation names a set type (possibly subscripted)."""
    if annotation is None:
        return False
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_TYPE_NAMES
    if isinstance(target, ast.Name):
        return target.id in _SET_TYPE_NAMES
    if isinstance(target, ast.Constant) and isinstance(target.value, str):
        # String annotations: match the leading type name.
        head = target.value.split("[")[0].split(".")[-1].strip()
        return head in _SET_TYPE_NAMES
    return False


def _is_set_expression(node: ast.AST, set_names: FrozenSet[str]) -> bool:
    """Whether ``node`` evaluates to a set, as far as we can tell."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset") and bool(
            node.args or node.keywords
        )
    return False


def _mentions_rng(node: ast.AST) -> bool:
    """Whether an expression looks like a random generator object."""
    if isinstance(node, ast.Name):
        return "rng" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "rng" in node.attr.lower()
    return False


def _walk_scope(func: ast.AST):
    """Walk a function's body without descending into nested functions."""
    from collections import deque as _deque

    queue = _deque(ast.iter_child_nodes(func))
    while queue:
        node = queue.popleft()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        queue.extend(ast.iter_child_nodes(node))


@register
class SetOrderFeedsRng(Rule):
    """Set iteration inside a function that also draws randomness."""

    code = "DET004"
    name = "set-order-into-rng"
    rationale = (
        "Set iteration order depends on hashing; when the iterated "
        "sequence feeds an RNG-driven choice (indexing, permutation, "
        "overlay ordering), replay diverges even under a fixed seed.  "
        "Iterate sorted(the_set) instead."
    )

    def _check_function(self, func: ast.AST) -> None:
        scope = list(_walk_scope(func))
        draws_randomness = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _mentions_rng(node.func.value)
            for node in scope
        )
        if not draws_randomness:
            return

        set_names = set()
        args = func.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _is_set_annotation(arg.annotation):
                set_names.add(arg.arg)
        for node in scope:
            if isinstance(node, ast.Assign) and _is_set_expression(
                node.value, frozenset()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if _is_set_annotation(node.annotation) or (
                    node.value is not None
                    and _is_set_expression(node.value, frozenset())
                ):
                    set_names.add(node.target.id)
        frozen_names = frozenset(set_names)

        for node in scope:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expression(node.iter, frozen_names):
                    self._flag(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for generator in node.generators:
                    if _is_set_expression(generator.iter, frozen_names):
                        self._flag(generator.iter)
            elif isinstance(node, ast.Call):
                callee = node.func
                if (
                    isinstance(callee, ast.Name)
                    and callee.id in ("list", "tuple")
                    and node.args
                    and _is_set_expression(node.args[0], frozen_names)
                ):
                    self._flag(node.args[0])

    def _flag(self, node: ast.AST) -> None:
        self.report(
            node,
            "iteration order of a set feeds RNG-driven logic in this "
            "function; iterate sorted(...) for replay-stable order",
        )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


# ----------------------------------------------------------------------
# HYG001 — mutable default arguments
# ----------------------------------------------------------------------

_MUTABLE_FACTORIES: FrozenSet[str] = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter",
     "OrderedDict"}
)


@register
class MutableDefault(Rule):
    """Mutable default argument values."""

    code = "HYG001"
    name = "mutable-default"
    rationale = (
        "A mutable default is shared across calls; state leaks between "
        "invocations and, in simulation code, between runs in the same "
        "process.  Use None plus an in-body default."
    )

    def _check_defaults(self, node: ast.AST) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            default for default in args.kw_defaults if default is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)):
                self.report(
                    default,
                    "mutable default argument (literal); use None and "
                    "create the value inside the function",
                )
            elif isinstance(default, ast.Call):
                callee = default.func
                name = None
                if isinstance(callee, ast.Name):
                    name = callee.id
                elif isinstance(callee, ast.Attribute):
                    name = callee.attr
                if name in _MUTABLE_FACTORIES:
                    self.report(
                        default,
                        f"mutable default argument ({name}(...)); use None "
                        "and create the value inside the function",
                    )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)


# ----------------------------------------------------------------------
# HYG002 — bare / broad except
# ----------------------------------------------------------------------


def _contains_raise(body: Sequence[ast.stmt]) -> bool:
    for statement in body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Raise):
                return True
    return False


@register
class BroadExcept(Rule):
    """Bare ``except:`` and non-re-raising ``except Exception:``."""

    code = "HYG002"
    name = "broad-except"
    rationale = (
        "A swallowed exception turns a deterministic crash into silent "
        "state corruption that differs between runs.  Catch something "
        "specific, or re-raise."
    )

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.report(
                node,
                "bare 'except:' catches everything including "
                "KeyboardInterrupt; name the exceptions you expect",
            )
        else:
            names: List[str] = []
            targets = (
                node.type.elts if isinstance(node.type, ast.Tuple) else [node.type]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names.append(target.id)
                elif isinstance(target, ast.Attribute):
                    names.append(target.attr)
            broad = {"Exception", "BaseException"} & set(names)
            if broad and not _contains_raise(node.body):
                self.report(
                    node,
                    f"broad 'except {sorted(broad)[0]}:' without re-raise "
                    "swallows unexpected failures; narrow it or re-raise",
                )
        self.generic_visit(node)


# ----------------------------------------------------------------------
# HYG003 — missing __slots__ on hot-path classes
# ----------------------------------------------------------------------


@register
class MissingSlots(Rule):
    """Hot-path classes (``repro/core``) without ``__slots__``."""

    code = "HYG003"
    name = "missing-slots"
    rationale = (
        "repro.core objects exist once per node (thousands per run) and "
        "repro.privlink objects sit on the per-message path; "
        "per-instance __dict__s dominate memory and slow attribute "
        "access.  Declare __slots__ (dataclasses are exempt: the "
        "decorator is visible to the linter)."
    )

    #: Path fragments marking hot-path modules.  Checked against the
    #: POSIX form of the file path.
    HOT_PATHS = ("repro/core/", "repro/privlink/")

    @classmethod
    def applies_to_path(cls, path: str) -> bool:
        normalized = path.replace("\\", "/")
        return any(fragment in normalized for fragment in cls.HOT_PATHS)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if node.decorator_list:
            self.generic_visit(node)
            return  # dataclasses & friends manage their own layout
        has_slots = any(
            (
                isinstance(statement, ast.Assign)
                and any(
                    isinstance(target, ast.Name) and target.id == "__slots__"
                    for target in statement.targets
                )
            )
            or (
                isinstance(statement, ast.AnnAssign)
                and isinstance(statement.target, ast.Name)
                and statement.target.id == "__slots__"
            )
            for statement in node.body
        )
        if not has_slots and self._assigns_instance_attributes(node):
            self.report(
                node,
                f"class {node.name} in a hot path stores instance "
                "attributes but declares no __slots__",
            )
        self.generic_visit(node)

    @staticmethod
    def _assigns_instance_attributes(node: ast.ClassDef) -> bool:
        for statement in node.body:
            if (
                isinstance(statement, ast.FunctionDef)
                and statement.name == "__init__"
            ):
                for inner in ast.walk(statement):
                    targets: List[ast.expr] = []
                    if isinstance(inner, ast.Assign):
                        targets = list(inner.targets)
                    elif isinstance(inner, ast.AnnAssign):
                        targets = [inner.target]
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            return True
        return False
