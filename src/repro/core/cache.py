"""The per-node pseudonym cache (paper Section III-D1).

"Each node n maintains a pseudonym cache of a configurable size.  The
cache is empty when the system starts. [...] Upon receiving a set over
the link, the node updates its own cache to include all entries in the
received set (with the exception of its own pseudonym, if present).
The cache replacement policy is similar to that employed in [CYCLON]."

CYCLON's replacement rule, adapted to pseudonyms: when merging a
received batch into a full cache, first drop expired entries, then
prefer evicting entries that were just sent to the gossip partner
(they live on in the partner's cache, so overall information is
preserved), and finally evict the oldest entries.

When a node learns a *newer* pseudonym with the same value (a later
expiry — cannot happen for honestly minted pseudonyms, whose values are
unique with overwhelming probability, but the policy is total anyway),
the later-expiring copy wins.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from ..errors import ProtocolError
from .pseudonym import Pseudonym

__all__ = ["PseudonymCache"]


class _Entry:
    __slots__ = ("pseudonym", "inserted_at")

    def __init__(self, pseudonym: Pseudonym, inserted_at: float) -> None:
        self.pseudonym = pseudonym
        self.inserted_at = inserted_at


class PseudonymCache:
    """A bounded pseudonym store with CYCLON-style replacement."""

    __slots__ = ("_capacity", "_entries", "_min_expires")

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ProtocolError(f"cache capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._entries: Dict[int, _Entry] = {}  # keyed by pseudonym value
        # Lower bound on the earliest expiry among cached entries; lets
        # remove_expired() skip its scan until something can actually
        # expire.  Invariant: _min_expires <= true minimum expiry.
        self._min_expires = math.inf

    @property
    def capacity(self) -> int:
        """Maximum number of stored pseudonyms."""
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, pseudonym: Pseudonym) -> bool:
        entry = self._entries.get(pseudonym.value)
        return entry is not None and entry.pseudonym == pseudonym

    def pseudonyms(self) -> List[Pseudonym]:
        """All cached pseudonyms (unordered snapshot)."""
        return [entry.pseudonym for entry in self._entries.values()]

    def remove_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        if now < self._min_expires:
            return 0
        expired = []
        min_expires = math.inf
        for value, entry in self._entries.items():
            expires_at = entry.pseudonym.expires_at
            if expires_at <= now:
                expired.append(value)
            elif expires_at < min_expires:
                min_expires = expires_at
        for value in expired:
            del self._entries[value]
        self._min_expires = min_expires
        return len(expired)

    def remove(self, pseudonym: Pseudonym) -> bool:
        """Remove a specific pseudonym; returns whether it was present."""
        entry = self._entries.get(pseudonym.value)
        if entry is None or entry.pseudonym != pseudonym:
            return False
        del self._entries[pseudonym.value]
        return True

    def newest(self, count: int, now: float) -> List[Pseudonym]:
        """The ``count`` most recently inserted unexpired pseudonyms.

        Used by the naive cache-based sampler ablation (no Brahms
        slots): links follow whatever arrived last, which
        over-represents frequently gossiped (hub) pseudonyms.
        """
        self.remove_expired(now)
        ordered = sorted(
            self._entries.values(), key=lambda entry: entry.inserted_at, reverse=True
        )
        return [entry.pseudonym for entry in ordered[:count]]

    def select_for_shuffle(
        self, rng: np.random.Generator, count: int, now: float
    ) -> List[Pseudonym]:
        """Uniformly sample up to ``count`` unexpired cached pseudonyms."""
        self.remove_expired(now)
        entries = list(self._entries.values())
        if count >= len(entries):
            return [entry.pseudonym for entry in entries]
        indices = rng.choice(len(entries), size=count, replace=False)
        return [entries[int(index)].pseudonym for index in indices]

    def merge(
        self,
        received: Iterable[Pseudonym],
        now: float,
        just_sent: Optional[Iterable[Pseudonym]] = None,
        own_value: Optional[int] = None,
    ) -> int:
        """Merge a received batch, applying the replacement policy.

        Parameters
        ----------
        received:
            Pseudonyms from the gossip partner.
        now:
            Current time (drives expiry and insertion timestamps).
        just_sent:
            The entries this node sent to the partner in the same
            exchange; preferred eviction victims, per CYCLON.
        own_value:
            The node's own pseudonym value, which is never cached.

        Returns
        -------
        int
            Number of received entries actually inserted or refreshed.
        """
        self.remove_expired(now)
        sent_values: Set[int] = (
            {pseudonym.value for pseudonym in just_sent} if just_sent else set()
        )

        inserted = 0
        for pseudonym in received:
            if pseudonym.is_expired(now):
                continue
            if own_value is not None and pseudonym.value == own_value:
                continue
            existing = self._entries.get(pseudonym.value)
            if existing is not None:
                if pseudonym.expires_at > existing.pseudonym.expires_at:
                    existing.pseudonym = pseudonym
                    inserted += 1
                continue
            if len(self._entries) >= self._capacity:
                victim = self._pick_victim(sent_values)
                if victim is None:
                    break
                del self._entries[victim]
            self._entries[pseudonym.value] = _Entry(pseudonym, now)
            if pseudonym.expires_at < self._min_expires:
                self._min_expires = pseudonym.expires_at
            inserted += 1
        return inserted

    def _pick_victim(self, sent_values: Set[int]) -> Optional[int]:
        """Choose an eviction victim: just-sent entries first, then oldest."""
        if sent_values:
            for value in sent_values:
                if value in self._entries:
                    sent_values.discard(value)
                    return value
        # Entries are only ever appended with a non-decreasing ``now``
        # and never reordered, so dict order is ascending inserted_at:
        # the first key is the oldest entry (same victim the previous
        # full scan chose).
        return next(iter(self._entries), None)
