"""Pseudonyms (paper Section III-C).

A pseudonym is "an address that any other node m can use in conjunction
with the pseudonym service to build a link to n such that n's ID is not
disclosed to m and vice versa".  For the sampling protocol it must look
like a "random p-bit sequence"; for routing it must name a pseudonym-
service endpoint.  :class:`Pseudonym` therefore carries:

* ``value`` — the random p-bit integer the Brahms-style sampler keys on;
* ``address`` — the pseudonym-service endpoint messages are sent to;
* ``expires_at`` — absolute expiry time (``math.inf`` = never), the
  TTL mechanism that drives overlay reconfiguration and bounds what
  any observer can correlate.

Crucially, a pseudonym does **not** contain its owner's identity: the
owner mapping lives only inside the pseudonym service (and, for
measurement, in the simulation's omniscient registry).
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from ..errors import PseudonymError
from ..privlink import Address
from ..rng import PSEUDONYM_BITS, random_bits

__all__ = ["Pseudonym", "mint_pseudonym"]


@dataclasses.dataclass(frozen=True)
class Pseudonym:
    """An anonymous, ephemeral node address."""

    value: int
    address: Address
    expires_at: float

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << PSEUDONYM_BITS):
            raise PseudonymError(
                f"pseudonym value {self.value} outside [0, 2^{PSEUDONYM_BITS})"
            )

    def is_expired(self, now: float) -> bool:
        """Whether the pseudonym's lifetime has elapsed at ``now``."""
        return now >= self.expires_at

    @property
    def never_expires(self) -> bool:
        """True for ``r = Infinite`` pseudonyms."""
        return math.isinf(self.expires_at)

    def __str__(self) -> str:
        expiry = "inf" if self.never_expires else f"{self.expires_at:.1f}"
        return f"Pseudonym({self.value:016x} @ {self.address}, exp={expiry})"


def mint_pseudonym(
    rng: np.random.Generator,
    address: Address,
    now: float,
    lifetime: float,
) -> Pseudonym:
    """Create a fresh pseudonym bound to an endpoint address.

    Parameters
    ----------
    rng:
        Randomness for the p-bit value.
    address:
        A newly created pseudonym-service endpoint.
    now:
        Current simulated time.
    lifetime:
        Pseudonym lifetime in shuffling periods; ``math.inf`` disables
        expiry.

    Notes
    -----
    The paper observes that if pseudonyms cannot natively be random bit
    strings, "a similar effect can be achieved by adding some random
    bits [...] and then applying a cryptographically strong hash
    function".  Here values are drawn uniformly, which is the ideal the
    hashing construction approximates.
    """
    if lifetime <= 0:
        raise PseudonymError(f"lifetime must be positive, got {lifetime}")
    expires_at = math.inf if math.isinf(lifetime) else now + lifetime
    return Pseudonym(
        value=random_bits(rng, PSEUDONYM_BITS),
        address=address,
        expires_at=expires_at,
    )
