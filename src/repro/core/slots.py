"""Brahms-style pseudonym sampling (paper Section III-D2).

Each node n keeps a list ``n.L`` of S slots.  Each slot holds a pair
``(P, R)``: ``P`` is a sampled pseudonym (or empty) and ``R`` is a
random p-bit *reference value* fixed when the node starts and never
changed.  On receiving a pseudonym P' through the shuffling protocol,
the node traverses the list and replaces P with P' in any slot where

1. the slot is empty, or
2. P' is numerically closer to R than P is, or
3. P' is as close to R as P, but P' expires later.

Expired pseudonyms vanish from their slots automatically.  Because each
slot keeps the received pseudonym *minimizing* |value - R| over
everything ever received (min-wise sampling), the slot contents form a
uniform random sample of all received pseudonyms, "regardless of how
frequently any pseudonym is received" — the property that makes the
overlay converge to a random graph even though gossip delivers hub
pseudonyms far more often.

The distance computation is vectorized with numpy: references, current
distances, and expiries live in parallel arrays, and a whole received
batch is folded in with one (batch x S) distance matrix.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..errors import ProtocolError
from ..rng import PSEUDONYM_BITS, random_bits
from .pseudonym import Pseudonym

__all__ = ["SamplerSlots"]

_EMPTY_DISTANCE = np.iinfo(np.int64).max


class SamplerSlots:
    """The per-node sampler list ``n.L``.

    Parameters
    ----------
    size:
        Number of slots S.  May be zero — the paper lets well-connected
        hubs run with no pseudonym links at all.
    rng:
        Randomness for the immutable reference values.
    """

    __slots__ = (
        "_size",
        "_references",
        "_distances",
        "_expiries",
        "_entries",
        "_soonest",
        "_sample_cache",
    )

    def __init__(self, size: int, rng: np.random.Generator) -> None:
        if size < 0:
            raise ProtocolError(f"slot count must be non-negative, got {size}")
        self._size = size
        self._references = np.array(
            [random_bits(rng, PSEUDONYM_BITS) for _ in range(size)], dtype=np.int64
        )
        self._distances = np.full(size, _EMPTY_DISTANCE, dtype=np.int64)
        self._expiries = np.full(size, -np.inf, dtype=np.float64)
        self._entries: List[Optional[Pseudonym]] = [None] * size
        # Lower bound on the earliest expiry among occupied slots, so
        # expire() can skip its scan; invariant: _soonest <= true min.
        self._soonest = math.inf
        # Lazily rebuilt sample() result; invalidated whenever any slot
        # changes.  Treat the returned list as read-only.
        self._sample_cache: Optional[List[Pseudonym]] = None

    @property
    def size(self) -> int:
        """Number of slots S."""
        return self._size

    @property
    def references(self) -> np.ndarray:
        """The immutable reference values (read-only view)."""
        view = self._references.view()
        view.flags.writeable = False
        return view

    def filled(self) -> int:
        """Number of non-empty slots."""
        return sum(entry is not None for entry in self._entries)

    def entry(self, index: int) -> Optional[Pseudonym]:
        """The pseudonym in slot ``index`` (None when empty)."""
        return self._entries[index]

    def sample(self) -> List[Pseudonym]:
        """Distinct pseudonyms currently held across all slots.

        Returns a cached snapshot list (rebuilt after any slot change);
        treat it as read-only.
        """
        cached = self._sample_cache
        if cached is None:
            seen = set()
            cached = []
            for entry in self._entries:
                if entry is not None and entry.value not in seen:
                    seen.add(entry.value)
                    cached.append(entry)
            self._sample_cache = cached
        return cached

    def expire(self, now: float) -> int:
        """Empty every slot holding an expired pseudonym; returns count."""
        if now < self._soonest:
            return 0
        removed = 0
        soonest = math.inf
        for index, entry in enumerate(self._entries):
            if entry is None:
                continue
            if entry.is_expired(now):
                self._clear_slot(index)
                removed += 1
            elif entry.expires_at < soonest:
                soonest = entry.expires_at
        self._soonest = soonest
        if removed:
            self._sample_cache = None
        return removed

    def evict(self, pseudonym: Pseudonym) -> int:
        """Remove a specific pseudonym from all slots; returns count."""
        removed = 0
        for index, entry in enumerate(self._entries):
            if entry is not None and entry == pseudonym:
                self._clear_slot(index)
                removed += 1
        if removed:
            self._sample_cache = None
        return removed

    def _clear_slot(self, index: int) -> None:
        self._entries[index] = None
        self._distances[index] = _EMPTY_DISTANCE
        self._expiries[index] = -np.inf

    def offer(self, pseudonym: Pseudonym) -> int:
        """Offer one pseudonym to every slot; returns slots replaced."""
        return self.offer_batch([pseudonym])

    def offer_batch(self, pseudonyms: Sequence[Pseudonym]) -> int:
        """Fold a received batch into the slots.

        Equivalent to offering each pseudonym in turn (the paper's
        per-receipt traversal), but evaluated with one vectorized
        distance matrix: for each slot, the winning candidate is the
        received pseudonym with minimal |value - R|, ties broken by
        latest expiry; it replaces the current occupant under the
        paper's three replacement conditions.

        Returns the number of slots whose occupant changed.
        """
        if self._size == 0 or not pseudonyms:
            return 0
        values = np.fromiter(
            (pseudonym.value for pseudonym in pseudonyms),
            dtype=np.int64,
            count=len(pseudonyms),
        )
        expiries = np.fromiter(
            (
                np.inf if math.isinf(pseudonym.expires_at) else pseudonym.expires_at
                for pseudonym in pseudonyms
            ),
            dtype=np.float64,
            count=len(pseudonyms),
        )
        # (batch x S) distance matrix.  Values are < 2^63 so the signed
        # difference never overflows int64.
        distance_matrix = np.abs(values[:, None] - self._references[None, :])
        min_distances = distance_matrix.min(axis=0)
        # Tie-break among minimal-distance candidates by latest expiry.
        is_minimal = distance_matrix == min_distances[None, :]
        masked_expiries = np.where(is_minimal, expiries[:, None], -np.inf)
        best_rows = masked_expiries.argmax(axis=0)
        best_expiries = masked_expiries[best_rows, np.arange(self._size)]

        closer = min_distances < self._distances
        tie_later = (min_distances == self._distances) & (
            best_expiries > self._expiries
        )
        replace = closer | tie_later

        changed = 0
        soonest = self._soonest
        for index in np.flatnonzero(replace):
            index = int(index)
            candidate = pseudonyms[int(best_rows[index])]
            if self._entries[index] == candidate:
                continue
            self._entries[index] = candidate
            self._distances[index] = int(min_distances[index])
            expiry = float(best_expiries[index])
            self._expiries[index] = expiry
            if expiry < soonest:
                soonest = expiry
            changed += 1
        if changed:
            self._soonest = soonest
            self._sample_cache = None
        return changed

    def refresh_distances(self) -> None:
        """Recompute cached distances from entries (defensive resync).

        Not needed in normal operation; exposed so property-based tests
        can verify the cached arrays always match the entries.
        """
        soonest = math.inf
        for index, entry in enumerate(self._entries):
            if entry is None:
                self._distances[index] = _EMPTY_DISTANCE
                self._expiries[index] = -np.inf
            else:
                self._distances[index] = abs(entry.value - int(self._references[index]))
                self._expiries[index] = entry.expires_at
                if entry.expires_at < soonest:
                    soonest = entry.expires_at
        self._soonest = soonest
        self._sample_cache = None

    def holds(self, pseudonyms: Iterable[Pseudonym]) -> bool:
        """Whether every given pseudonym occupies at least one slot."""
        held = {entry.value for entry in self._entries if entry is not None}
        return all(pseudonym.value in held for pseudonym in pseudonyms)
