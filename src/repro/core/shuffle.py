"""Shuffle protocol messages (paper Section III-D1).

One shuffle exchange is a request/response pair: "Each of the two nodes
sends an encrypted message containing a set of up to l pseudonyms to
the other [...] The set includes one node's own pseudonym and up to
l - 1 pseudonyms from the node's cache."

The wire types here carry *only* privacy-safe material:

* ``entries`` — pseudonyms (anonymous by construction);
* a reply channel — either the requester's real node id (legitimate
  only over a trusted link, where the two friends already know each
  other) or the requester's own pseudonym address (over pseudonym
  links, so the responder learns nothing about the requester's ID).

End-to-end encryption of these messages is the application's duty in
the paper; in the simulation the link layer's sealed delivery plays
that role.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..privlink import Address
from .pseudonym import Pseudonym

__all__ = ["ShuffleRequest", "ShuffleResponse", "make_shuffle_set"]


@dataclasses.dataclass(frozen=True)
class ShuffleRequest:
    """A shuffle initiation carrying the initiator's pseudonym set.

    Exactly one of ``reply_node`` / ``reply_address`` is set, depending
    on whether the request traveled over a trusted or a pseudonym link.
    """

    entries: Tuple[Pseudonym, ...]
    reply_node: Optional[int] = None
    reply_address: Optional[Address] = None

    def __post_init__(self) -> None:
        if (self.reply_node is None) == (self.reply_address is None):
            raise ProtocolError(
                "ShuffleRequest needs exactly one reply channel"
            )
        if not self.entries:
            raise ProtocolError("ShuffleRequest must carry at least one entry")

    @property
    def over_trusted_link(self) -> bool:
        """Whether the request traveled between mutually trusting nodes."""
        return self.reply_node is not None


@dataclasses.dataclass(frozen=True)
class ShuffleResponse:
    """The responder's pseudonym set, sent back over the reply channel."""

    entries: Tuple[Pseudonym, ...]

    def __post_init__(self) -> None:
        if not self.entries:
            raise ProtocolError("ShuffleResponse must carry at least one entry")


def make_shuffle_set(
    own: Pseudonym,
    cache_selection: Sequence[Pseudonym],
    limit: int,
) -> Tuple[Pseudonym, ...]:
    """Assemble a shuffle set: own pseudonym plus cache entries, capped.

    The own pseudonym always leads — its inclusion in every exchange is
    what propagates fresh pseudonyms after renewal.
    """
    if limit < 1:
        raise ProtocolError("shuffle set limit must be at least 1")
    entries = [own]
    for pseudonym in cache_selection:
        if len(entries) >= limit:
            break
        if pseudonym.value == own.value:
            continue
        entries.append(pseudonym)
    return tuple(entries)
