"""Overlay orchestration: build, run, and observe a whole system.

:class:`Overlay` wires together everything a paper experiment needs:

* a trust graph (node ids ``0..n-1``),
* one :class:`~repro.core.node.OverlayNode` per vertex, with the
  degree-adaptive sampler size
  ``S = max(min_pseudonym_links, target_degree - trusted_degree)``,
* a privacy-preserving link layer (ideal by default),
* the churn process flipping nodes online/offline,
* an omniscient measurement registry mapping pseudonyms to owners —
  used *only* to build snapshot graphs for metrics, never by protocol
  logic (no protocol entity can resolve a pseudonym to an ID).

The usual entry point is :meth:`Overlay.build`, which constructs the
simulator, random streams, link layer, and churn from a
:class:`~repro.config.SystemConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import networkx as nx
import numpy as np

from ..churn import (
    ChurnProcess,
    NodeChurnSpec,
    SessionTrace,
    homogeneous_specs,
    replay_trace,
)
from ..config import SystemConfig
from ..errors import GraphError, ProtocolError
from ..privlink import Address, LinkLayer, make_ideal_link_layer
from ..rng import RandomStreams
from ..sim import Simulator
from .maintenance import AdaptiveLifetime, LifetimePolicy
from .node import OverlayNode
from .pseudonym import Pseudonym

__all__ = ["Overlay", "OverlayStats"]


@dataclasses.dataclass
class OverlayStats:
    """System-wide cumulative statistics at a point in time."""

    time: float
    online_nodes: int
    messages_sent: int
    link_replacements: int
    pseudonyms_created: int


class Overlay:
    """A complete overlay system over one trust graph."""

    __slots__ = (
        "trust_graph",
        "config",
        "sim",
        "link_layer",
        "churn",
        "nodes",
        "_streams",
        "_churn_trace",
        "_value_owner",
        "_address_owner",
        "_started",
    )

    def __init__(
        self,
        trust_graph: nx.Graph,
        config: SystemConfig,
        sim: Simulator,
        link_layer: LinkLayer,
        streams: RandomStreams,
        churn: Optional[ChurnProcess] = None,
    ) -> None:
        num_nodes = trust_graph.number_of_nodes()
        if num_nodes != config.num_nodes:
            raise GraphError(
                f"trust graph has {num_nodes} nodes but config.num_nodes is "
                f"{config.num_nodes}"
            )
        if set(trust_graph.nodes()) != set(range(num_nodes)):
            raise GraphError("trust graph nodes must be labeled 0..n-1")

        self.trust_graph = trust_graph
        self.config = config
        self.sim = sim
        self.link_layer = link_layer
        self.churn = churn
        self._streams = streams
        self._churn_trace: Optional[SessionTrace] = None

        # Omniscient measurement registry (never read by protocol code).
        self._value_owner: Dict[int, int] = {}
        self._address_owner: Dict[Address, int] = {}

        self.nodes: List[OverlayNode] = []
        for node_id in range(num_nodes):
            neighbors = list(trust_graph.neighbors(node_id))
            slot_count = max(
                config.min_pseudonym_links,
                config.target_degree - len(neighbors),
            )
            policy: Optional[LifetimePolicy] = None
            if config.adaptive_lifetime:
                policy = AdaptiveLifetime(
                    ratio=config.lifetime_ratio,
                    initial_estimate=config.mean_offline_time,
                    smoothing=config.adaptive_smoothing,
                )
            node = OverlayNode(
                node_id=node_id,
                trusted_neighbors=neighbors,
                slot_count=slot_count,
                cache_size=config.cache_size,
                shuffle_length=config.shuffle_length,
                pseudonym_lifetime=config.pseudonym_lifetime,
                sim=sim,
                link_layer=link_layer,
                rng=streams.substream("node", node_id),
                pseudonym_listener=self._record_pseudonym,
                sampler_mode=config.sampler_mode,
                lifetime_policy=policy,
            )
            self.nodes.append(node)

        self._started = False

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        trust_graph: nx.Graph,
        config: SystemConfig,
        with_churn: bool = True,
        start_all_online: bool = False,
        churn_specs: Optional[List[NodeChurnSpec]] = None,
        churn_trace: Optional[SessionTrace] = None,
        link_layer_factory=None,
    ) -> "Overlay":
        """One-stop construction from a trust graph and a config.

        Parameters
        ----------
        trust_graph:
            Connected graph with nodes ``0..config.num_nodes-1``.
        config:
            Protocol and simulation parameters.
        with_churn:
            When False, every node is permanently online (no churn
            process) — useful for convergence micro-studies.
        start_all_online:
            Passed to the churn process: start from a full system
            instead of the stationary online set.
        churn_specs:
            Optional heterogeneous per-node churn; defaults to the
            paper's homogeneous exponential model.
        churn_trace:
            Pre-generated churn schedule
            (:func:`repro.churn.generate_trace`).  Drives availability
            deterministically instead of a live churn process — use it
            to expose the overlay and any baseline to *identical*
            availability patterns.  Mutually exclusive with
            ``churn_specs``; ignores ``start_all_online``.
        link_layer_factory:
            ``factory(sim, rng) -> LinkLayer``; defaults to the ideal
            link layer with ``config.message_latency``.
        """
        if churn_trace is not None and churn_specs is not None:
            raise ProtocolError("pass churn_specs or churn_trace, not both")
        streams = RandomStreams(config.seed)
        sim = Simulator()
        if link_layer_factory is None:
            link_layer = make_ideal_link_layer(
                sim, streams.substream("link-layer"),
                max_latency=config.message_latency,
            )
        else:
            link_layer = link_layer_factory(sim, streams.substream("link-layer"))

        churn: Optional[ChurnProcess] = None
        if churn_trace is not None:
            if churn_trace.num_nodes != config.num_nodes:
                raise ProtocolError(
                    f"churn trace covers {churn_trace.num_nodes} nodes, "
                    f"config expects {config.num_nodes}"
                )
            overlay = cls(trust_graph, config, sim, link_layer, streams)
            overlay._churn_trace = churn_trace
            return overlay
        if with_churn:
            if churn_specs is None:
                churn_specs = homogeneous_specs(
                    config.num_nodes, config.availability, config.mean_offline_time
                )
            churn = ChurnProcess(
                sim,
                churn_specs,
                streams.substream("churn"),
                start_all_online=start_all_online,
            )
        return cls(trust_graph, config, sim, link_layer, streams, churn=churn)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start churn (if any) and bring the initial online set up.

        Without churn, every node comes online at time zero — this
        reproduces the paper's synchronized start whose pseudonym
        expirations cause the early oscillations in Figure 9.
        """
        if self._started:
            raise ProtocolError("overlay already started")
        self._started = True
        if self._churn_trace is not None:
            replay_trace(self.sim, self._churn_trace, self._on_churn_transition)
            for node_id, online in enumerate(self._churn_trace.initial_online):
                if online:
                    self.nodes[node_id].come_online()
        elif self.churn is not None:
            self.churn.set_listener(self._on_churn_transition)
            self.churn.start()
            for node_id in self.churn.online_nodes():
                self.nodes[node_id].come_online()
        else:
            for node in self.nodes:
                node.come_online()

    def run_until(self, horizon: float) -> None:
        """Advance the simulation to ``horizon`` shuffling periods."""
        if not self._started:
            raise ProtocolError("call start() before run_until()")
        self.sim.run_until(horizon)

    # ------------------------------------------------------------------
    # trust-graph growth (additions only; removals are future work in
    # the paper and here)
    # ------------------------------------------------------------------

    def add_trust_edge(self, u: int, v: int) -> None:
        """Record a new trust relationship between existing nodes.

        Both users learn of the friendship out of band (the paper's
        bootstrap assumption); adding edges discloses nothing new to
        third parties.
        """
        if u == v:
            raise ProtocolError("a node cannot trust itself")
        for node_id in (u, v):
            if not 0 <= node_id < len(self.nodes):
                raise ProtocolError(f"no such node {node_id}")
        self.trust_graph.add_edge(u, v)
        self.nodes[u].links.add_trusted(v)
        self.nodes[v].links.add_trusted(u)

    def add_node(
        self,
        trusted_neighbors: List[int],
        start_online: bool = True,
    ) -> int:
        """Invite a new user into the group; returns the new node id.

        The newcomer knows only its inviters (its trust neighbors) and
        joins with empty protocol state, exactly like a first-time
        start.  Under churn, it begins ``start_online`` and then follows
        the same availability model as everyone else.
        """
        if not trusted_neighbors:
            raise ProtocolError("a new node needs at least one inviter")
        for neighbor in trusted_neighbors:
            if not 0 <= neighbor < len(self.nodes):
                raise ProtocolError(f"no such inviter {neighbor}")
        node_id = len(self.nodes)
        self.trust_graph.add_node(node_id)
        for neighbor in set(trusted_neighbors):
            self.trust_graph.add_edge(node_id, neighbor)
            self.nodes[neighbor].links.add_trusted(node_id)

        config = self.config
        slot_count = max(
            config.min_pseudonym_links,
            config.target_degree - len(set(trusted_neighbors)),
        )
        policy: Optional[LifetimePolicy] = None
        if config.adaptive_lifetime:
            policy = AdaptiveLifetime(
                ratio=config.lifetime_ratio,
                initial_estimate=config.mean_offline_time,
                smoothing=config.adaptive_smoothing,
            )
        node = OverlayNode(
            node_id=node_id,
            trusted_neighbors=set(trusted_neighbors),
            slot_count=slot_count,
            cache_size=config.cache_size,
            shuffle_length=config.shuffle_length,
            pseudonym_lifetime=config.pseudonym_lifetime,
            sim=self.sim,
            link_layer=self.link_layer,
            rng=self._streams.substream("node", node_id),
            pseudonym_listener=self._record_pseudonym,
            sampler_mode=config.sampler_mode,
            lifetime_policy=policy,
        )
        self.nodes.append(node)

        if self.churn is not None:
            from ..churn import Exponential, NodeChurnSpec

            spec = NodeChurnSpec(
                Exponential(config.mean_online_time),
                Exponential(config.mean_offline_time),
            )
            self.churn.add_node(spec, start_online=start_online)
        if self._started and start_online:
            node.come_online()
        return node_id

    def _on_churn_transition(self, node_id: int, online: bool) -> None:
        if online:
            self.nodes[node_id].come_online()
        else:
            self.nodes[node_id].go_offline()

    def _record_pseudonym(self, node_id: int, pseudonym: Pseudonym) -> None:
        self._value_owner[pseudonym.value] = node_id
        self._address_owner[pseudonym.address] = node_id

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def substream(self, *key) -> np.random.Generator:
        """A named random substream derived from the overlay's root seed.

        Auxiliary layers (dissemination, attacks, measurement) draw
        their randomness here so they never perturb protocol streams.
        """
        return self._streams.substream("aux", *key)

    def online_ids(self) -> List[int]:
        """Ids of currently online nodes."""
        if self.churn is not None:
            return self.churn.online_nodes()
        return [node.node_id for node in self.nodes if node.online]

    def owner_of_value(self, value: int) -> Optional[int]:
        """Measurement oracle: owner of a pseudonym value (or None)."""
        return self._value_owner.get(value)

    def owner_of_address(self, address: Address) -> Optional[int]:
        """Measurement oracle: owner of an endpoint address (or None)."""
        return self._address_owner.get(address)

    def snapshot(self, online_only: bool = True) -> nx.Graph:
        """The current overlay as an undirected graph.

        Edges are trusted links (both ends online when ``online_only``)
        plus unexpired pseudonym links resolved through the measurement
        registry.  All communication is bidirectional, so links are
        undirected edges regardless of who established them.
        """
        now = self.sim.now
        graph = nx.Graph()
        if online_only:
            included = set(self.online_ids())
        else:
            included = set(range(len(self.nodes)))
        graph.add_nodes_from(included)

        for node in self.nodes:
            if node.node_id not in included:
                continue
            for neighbor in node.links.trusted:
                if neighbor in included:
                    graph.add_edge(node.node_id, neighbor)
            for pseudonym in node.links.pseudonym_links():
                if pseudonym.is_expired(now):
                    continue
                owner = self._value_owner.get(pseudonym.value)
                if owner is None or owner == node.node_id:
                    continue
                if owner in included:
                    graph.add_edge(node.node_id, owner)
        return graph

    def trust_snapshot(self) -> nx.Graph:
        """The trust graph restricted to online nodes (baseline metric)."""
        online = self.online_ids()
        return self.trust_graph.subgraph(online).copy()

    def stats(self) -> OverlayStats:
        """Aggregate cumulative counters."""
        return OverlayStats(
            time=self.sim.now,
            online_nodes=len(self.online_ids()),
            messages_sent=sum(node.counters.messages_sent for node in self.nodes),
            link_replacements=sum(
                node.links.replacements_total for node in self.nodes
            ),
            pseudonyms_created=sum(
                node.counters.pseudonyms_created for node in self.nodes
            ),
        )

    def total_online_time(self, node_id: int) -> float:
        """Cumulative online time of ``node_id`` including the open session."""
        node = self.nodes[node_id]
        total = node.counters.online_time
        if node.counters.last_online_at is not None:
            total += self.sim.now - node.counters.last_online_at
        return total
