"""Overlay orchestration: build, run, and observe a whole system.

:class:`Overlay` wires together everything a paper experiment needs:

* a trust graph (node ids ``0..n-1``),
* one :class:`~repro.core.node.OverlayNode` per vertex, with the
  degree-adaptive sampler size
  ``S = max(min_pseudonym_links, target_degree - trusted_degree)``,
* a privacy-preserving link layer (ideal by default),
* the churn process flipping nodes online/offline,
* an omniscient measurement registry mapping pseudonyms to owners —
  used *only* to build snapshot graphs for metrics, never by protocol
  logic (no protocol entity can resolve a pseudonym to an ID).

The usual entry point is :meth:`Overlay.build`, which constructs the
simulator, random streams, link layer, and churn from a
:class:`~repro.config.SystemConfig`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..churn import (
    ChurnProcess,
    NodeChurnSpec,
    SessionTrace,
    homogeneous_specs,
    replay_trace,
)
from ..config import SystemConfig
from ..errors import GraphError, ProtocolError
from ..graphs.fastgraph import FlatSnapshot
from ..privlink import Address, LinkLayer, make_ideal_link_layer
from ..rng import RandomStreams
from ..sim import Clock, Simulator
from .arena import NodeArena, resolve_node_plane
from .maintenance import AdaptiveLifetime, LifetimePolicy
from .node import OverlayNode
from .pseudonym import Pseudonym

__all__ = ["Overlay", "OverlayStats"]


@dataclasses.dataclass
class OverlayStats:
    """System-wide cumulative statistics at a point in time.

    The mixnet fields stay at their zero defaults when the link layer
    is not mixnet-backed (the ideal and mailbox layers have no relays
    or circuits).
    """

    time: float
    online_nodes: int
    messages_sent: int
    link_replacements: int
    pseudonyms_created: int
    replays_dropped: int = 0
    replay_cache_entries: int = 0
    replay_cache_flushes: int = 0
    circuit_cache_hits: int = 0
    circuit_cache_misses: int = 0


class _SnapshotStore:
    """Incrementally maintained flat edge arrays behind ``snapshot_fast``.

    One row per pseudonym link — ``(holder, resolved owner, expiry)`` —
    stored in flat numpy arrays with one slot of rows per node.  The
    store compares each node's :attr:`LinkSet.version` against its
    last-seen value and rewrites only the slots that changed, so a
    measurement sample touches the nodes that gossiped since the last
    sample instead of re-scanning every link table.  Expiry is resolved
    lazily at query time (rows are written once, filtered by
    ``expiry > now`` per snapshot), matching
    :meth:`Pseudonym.is_expired` semantics exactly.

    Slots that outgrow their capacity are relocated to the end of the
    arrays; the abandoned rows are tombstoned with a negative expiry
    and the whole store is rebuilt once tombstones dominate.
    """

    __slots__ = (
        "num_nodes",
        "link_versions",
        "trusted_versions",
        "starts",
        "lens",
        "caps",
        "row_node",
        "row_owner",
        "row_expiry",
        "top",
        "live",
        "trusted_u",
        "trusted_v",
        "_trusted_stale",
        "pos",
    )

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.link_versions = [-1] * num_nodes
        self.trusted_versions = [-1] * num_nodes
        self.starts = [0] * num_nodes
        self.lens = [0] * num_nodes
        self.caps = [0] * num_nodes
        capacity = max(256, 8 * num_nodes)
        self.row_node = np.zeros(capacity, dtype=np.int64)
        self.row_owner = np.zeros(capacity, dtype=np.int64)
        self.row_expiry = np.full(capacity, -1.0)
        self.top = 0
        self.live = 0
        self.trusted_u = np.zeros(0, dtype=np.int64)
        self.trusted_v = np.zeros(0, dtype=np.int64)
        self._trusted_stale = True
        # Scratch label -> position map reused by every snapshot build.
        self.pos = np.full(num_nodes, -1, dtype=np.int64)

    def grow(self, num_nodes: int) -> None:
        """Track newly added overlay nodes."""
        added = num_nodes - self.num_nodes
        if added <= 0:
            return
        self.link_versions.extend([-1] * added)
        self.trusted_versions.extend([-1] * added)
        self.starts.extend([0] * added)
        self.lens.extend([0] * added)
        self.caps.extend([0] * added)
        self.pos = np.full(num_nodes, -1, dtype=np.int64)
        self.num_nodes = num_nodes
        self._trusted_stale = True

    def _ensure_capacity(self, needed: int) -> None:
        capacity = len(self.row_node)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for name in ("row_node", "row_owner", "row_expiry"):
            old = getattr(self, name)
            grown = np.full(capacity, -1.0) if name == "row_expiry" else np.zeros(
                capacity, dtype=np.int64
            )
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _rebuild_slot(
        self, node_id: int, node: OverlayNode, value_owner: Dict[int, int]
    ) -> None:
        link_rows = getattr(node.links, "link_rows", None)
        if link_rows is not None:
            # Arena-backed link set: read the (values, expiries) columns
            # directly, no pseudonym objects materialized.
            values, expiries = link_rows()
            values = values.tolist()
        else:
            links = node.links.pseudonym_links()
            values = [pseudonym.value for pseudonym in links]
            expiries = [pseudonym.expires_at for pseudonym in links]
        count = len(values)
        if count <= self.caps[node_id]:
            start = self.starts[node_id]
            self.live += count - self.lens[node_id]
        else:
            # Relocate: tombstone the old slot, allocate a bigger one.
            old_start = self.starts[node_id]
            old_len = self.lens[node_id]
            self.row_expiry[old_start : old_start + old_len] = -1.0
            self.live += count - old_len
            cap = count + 4
            self._ensure_capacity(self.top + cap)
            start = self.top
            self.starts[node_id] = start
            self.caps[node_id] = cap
            self.top += cap
        row_owner = self.row_owner
        row_expiry = self.row_expiry
        self.row_node[start : start + self.caps[node_id]] = node_id
        get_owner = value_owner.get
        for offset, value in enumerate(values):
            # Unresolvable pseudonyms keep a row pointing at the holder
            # itself: excluded from edges (self-loop) but still counted
            # by the out-degree kernel, matching OverlayNode.out_degree.
            owner = get_owner(value)
            row_owner[start + offset] = node_id if owner is None else owner
        row_expiry[start : start + count] = expiries
        row_expiry[start + count : start + self.caps[node_id]] = -1.0
        self.lens[node_id] = count

    def _rebuild_trusted(self, nodes: List[OverlayNode]) -> None:
        lows: List[int] = []
        highs: List[int] = []
        for node in nodes:
            node_id = node.node_id
            for neighbor in sorted(node.links.trusted):
                if neighbor == node_id:
                    continue
                if neighbor < node_id:
                    lows.append(neighbor)
                    highs.append(node_id)
                else:
                    lows.append(node_id)
                    highs.append(neighbor)
        if lows:
            packed = np.unique(
                np.array(lows, dtype=np.int64) * self.num_nodes
                + np.array(highs, dtype=np.int64)
            )
            self.trusted_u = packed // self.num_nodes
            self.trusted_v = packed % self.num_nodes
        else:
            self.trusted_u = np.zeros(0, dtype=np.int64)
            self.trusted_v = np.zeros(0, dtype=np.int64)
        self._trusted_stale = False

    def sync(self, nodes: List[OverlayNode], value_owner: Dict[int, int]) -> None:
        """Bring the arrays up to date with every dirty link table."""
        dead = self.top - self.live
        if dead > 1024 and dead > self.top // 2:
            self.top = 0
            self.live = 0
            for node_id in range(self.num_nodes):
                self.starts[node_id] = 0
                self.lens[node_id] = 0
                self.caps[node_id] = 0
                self.link_versions[node_id] = -1
        link_versions = self.link_versions
        trusted_versions = self.trusted_versions
        for node_id, node in enumerate(nodes):
            links = node.links
            if links.version != link_versions[node_id]:
                self._rebuild_slot(node_id, node, value_owner)
                link_versions[node_id] = links.version
            if links.trusted_version != trusted_versions[node_id]:
                trusted_versions[node_id] = links.trusted_version
                self._trusted_stale = True
        if self._trusted_stale:
            self._rebuild_trusted(nodes)

    def _positions(self, ids: np.ndarray) -> np.ndarray:
        pos = self.pos
        pos.fill(-1)
        pos[ids] = np.arange(len(ids), dtype=np.int64)
        return pos

    def overlay_snapshot(self, ids: np.ndarray, now: float) -> FlatSnapshot:
        """The overlay restricted to ``ids`` (sorted labels) at ``now``."""
        pos = self._positions(ids)
        top = self.top
        alive = self.row_expiry[:top] > now
        holder = pos[self.row_node[:top][alive]]
        owner = pos[self.row_owner[:top][alive]]
        keep = (holder >= 0) & (owner >= 0) & (holder != owner)
        trusted_a = pos[self.trusted_u]
        trusted_b = pos[self.trusted_v]
        trusted_keep = (trusted_a >= 0) & (trusted_b >= 0)
        return FlatSnapshot.from_edge_positions(
            ids,
            np.concatenate((trusted_a[trusted_keep], holder[keep])),
            np.concatenate((trusted_b[trusted_keep], owner[keep])),
        )

    def restricted_snapshot(
        self, edge_u: np.ndarray, edge_v: np.ndarray, ids: np.ndarray
    ) -> FlatSnapshot:
        """A static label-edge list restricted to ``ids`` (trust baseline)."""
        pos = self._positions(ids)
        a = pos[edge_u]
        b = pos[edge_v]
        keep = (a >= 0) & (b >= 0)
        return FlatSnapshot.from_edge_positions(ids, a[keep], b[keep])

    def pseudonym_degrees(self, now: float) -> np.ndarray:
        """Per-node count of unexpired pseudonym links (all nodes)."""
        top = self.top
        alive = self.row_expiry[:top] > now
        return np.bincount(self.row_node[:top][alive], minlength=self.num_nodes)


class Overlay:
    """A complete overlay system over one trust graph."""

    __slots__ = (
        "trust_graph",
        "config",
        "sim",
        "link_layer",
        "churn",
        "nodes",
        "arena",
        "_streams",
        "_churn_trace",
        "_value_owner",
        "_address_owner",
        "_started",
        "_snap_store",
        "_trust_version",
        "_trust_edge_cache",
        "_trust_fast_cache",
        "_online_epoch",
        "_online_cache",
        "_online_cache_epoch",
    )

    def __init__(
        self,
        trust_graph: nx.Graph,
        config: SystemConfig,
        sim: Clock,
        link_layer: LinkLayer,
        streams: RandomStreams,
        churn: Optional[ChurnProcess] = None,
    ) -> None:
        num_nodes = trust_graph.number_of_nodes()
        if num_nodes != config.num_nodes:
            raise GraphError(
                f"trust graph has {num_nodes} nodes but config.num_nodes is "
                f"{config.num_nodes}"
            )
        if set(trust_graph.nodes()) != set(range(num_nodes)):
            raise GraphError("trust graph nodes must be labeled 0..n-1")

        self.trust_graph = trust_graph
        self.config = config
        self.sim = sim
        self.link_layer = link_layer
        self.churn = churn
        self._streams = streams
        self._churn_trace: Optional[SessionTrace] = None

        # Omniscient measurement registry (never read by protocol code).
        self._value_owner: Dict[int, int] = {}
        self._address_owner: Dict[Address, int] = {}

        #: The columnar node plane backing every node's link/cache/slot
        #: state (None under REPRO_NODE_PLANE=objects).  Both planes are
        #: byte-identical; see docs/node_plane.md.
        self.arena: Optional[NodeArena] = (
            NodeArena() if resolve_node_plane() == "arena" else None
        )
        self.nodes: List[OverlayNode] = []
        for node_id in range(num_nodes):
            neighbors = list(trust_graph.neighbors(node_id))
            slot_count = max(
                config.min_pseudonym_links,
                config.target_degree - len(neighbors),
            )
            policy: Optional[LifetimePolicy] = None
            if config.adaptive_lifetime:
                policy = AdaptiveLifetime(
                    ratio=config.lifetime_ratio,
                    initial_estimate=config.mean_offline_time,
                    smoothing=config.adaptive_smoothing,
                )
            node = OverlayNode(
                node_id=node_id,
                trusted_neighbors=neighbors,
                slot_count=slot_count,
                cache_size=config.cache_size,
                shuffle_length=config.shuffle_length,
                pseudonym_lifetime=config.pseudonym_lifetime,
                sim=sim,
                link_layer=link_layer,
                rng=streams.substream("node", node_id),
                pseudonym_listener=self._record_pseudonym,
                sampler_mode=config.sampler_mode,
                lifetime_policy=policy,
                arena=self.arena,
            )
            node.online_listener = self._on_online_change
            self.nodes.append(node)

        self._started = False
        # Fast-snapshot machinery: the incremental edge store is created
        # lazily on first use; online-set and trust-edge caches are
        # invalidated by epoch/version counters instead of re-scans.
        self._snap_store: Optional[_SnapshotStore] = None
        self._trust_version = 0
        self._trust_edge_cache: Optional[
            Tuple[int, np.ndarray, np.ndarray]
        ] = None
        self._trust_fast_cache: Optional[
            Tuple[Tuple[int, int], FlatSnapshot]
        ] = None
        self._online_epoch = 0
        self._online_cache: Optional[List[int]] = None
        self._online_cache_epoch = -1

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        trust_graph: nx.Graph,
        config: SystemConfig,
        with_churn: bool = True,
        start_all_online: bool = False,
        churn_specs: Optional[List[NodeChurnSpec]] = None,
        churn_trace: Optional[SessionTrace] = None,
        link_layer_factory=None,
    ) -> "Overlay":
        """One-stop construction from a trust graph and a config.

        Parameters
        ----------
        trust_graph:
            Connected graph with nodes ``0..config.num_nodes-1``.
        config:
            Protocol and simulation parameters.
        with_churn:
            When False, every node is permanently online (no churn
            process) — useful for convergence micro-studies.
        start_all_online:
            Passed to the churn process: start from a full system
            instead of the stationary online set.
        churn_specs:
            Optional heterogeneous per-node churn; defaults to the
            paper's homogeneous exponential model.
        churn_trace:
            Pre-generated churn schedule
            (:func:`repro.churn.generate_trace`).  Drives availability
            deterministically instead of a live churn process — use it
            to expose the overlay and any baseline to *identical*
            availability patterns.  Mutually exclusive with
            ``churn_specs``; ignores ``start_all_online``.
        link_layer_factory:
            ``factory(sim, rng) -> LinkLayer``; defaults to the ideal
            link layer with ``config.message_latency``.
        """
        if churn_trace is not None and churn_specs is not None:
            raise ProtocolError("pass churn_specs or churn_trace, not both")
        streams = RandomStreams(config.seed)
        sim = Simulator()
        if link_layer_factory is None:
            link_layer = make_ideal_link_layer(
                sim, streams.substream("link-layer"),
                max_latency=config.message_latency,
            )
        else:
            link_layer = link_layer_factory(sim, streams.substream("link-layer"))

        churn: Optional[ChurnProcess] = None
        if churn_trace is not None:
            if churn_trace.num_nodes != config.num_nodes:
                raise ProtocolError(
                    f"churn trace covers {churn_trace.num_nodes} nodes, "
                    f"config expects {config.num_nodes}"
                )
            overlay = cls(trust_graph, config, sim, link_layer, streams)
            overlay._churn_trace = churn_trace
            return overlay
        if with_churn:
            if churn_specs is None:
                churn_specs = homogeneous_specs(
                    config.num_nodes, config.availability, config.mean_offline_time
                )
            churn = ChurnProcess(
                sim,
                churn_specs,
                streams.substream("churn"),
                start_all_online=start_all_online,
            )
        return cls(trust_graph, config, sim, link_layer, streams, churn=churn)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start churn (if any) and bring the initial online set up.

        Without churn, every node comes online at time zero — this
        reproduces the paper's synchronized start whose pseudonym
        expirations cause the early oscillations in Figure 9.
        """
        if self._started:
            raise ProtocolError("overlay already started")
        self._started = True
        if self._churn_trace is not None:
            replay_trace(self.sim, self._churn_trace, self._on_churn_transition)
            for node_id, online in enumerate(self._churn_trace.initial_online):
                if online:
                    self.nodes[node_id].come_online()
        elif self.churn is not None:
            self.churn.set_listener(self._on_churn_transition)
            self.churn.start()
            for node_id in self.churn.online_nodes():
                self.nodes[node_id].come_online()
        else:
            for node in self.nodes:
                node.come_online()

    def run_until(self, horizon: float) -> None:
        """Advance the simulation to ``horizon`` shuffling periods."""
        if not self._started:
            raise ProtocolError("call start() before run_until()")
        self.sim.run_until(horizon)

    # ------------------------------------------------------------------
    # trust-graph growth (additions only; removals are future work in
    # the paper and here)
    # ------------------------------------------------------------------

    def add_trust_edge(self, u: int, v: int) -> None:
        """Record a new trust relationship between existing nodes.

        Both users learn of the friendship out of band (the paper's
        bootstrap assumption); adding edges discloses nothing new to
        third parties.
        """
        if u == v:
            raise ProtocolError("a node cannot trust itself")
        for node_id in (u, v):
            if not 0 <= node_id < len(self.nodes):
                raise ProtocolError(f"no such node {node_id}")
        self.trust_graph.add_edge(u, v)
        self.nodes[u].links.add_trusted(v)
        self.nodes[v].links.add_trusted(u)
        self._trust_version += 1

    def add_node(
        self,
        trusted_neighbors: List[int],
        start_online: bool = True,
    ) -> int:
        """Invite a new user into the group; returns the new node id.

        The newcomer knows only its inviters (its trust neighbors) and
        joins with empty protocol state, exactly like a first-time
        start.  Under churn, it begins ``start_online`` and then follows
        the same availability model as everyone else.
        """
        if not trusted_neighbors:
            raise ProtocolError("a new node needs at least one inviter")
        for neighbor in trusted_neighbors:
            if not 0 <= neighbor < len(self.nodes):
                raise ProtocolError(f"no such inviter {neighbor}")
        node_id = len(self.nodes)
        self.trust_graph.add_node(node_id)
        for neighbor in set(trusted_neighbors):
            self.trust_graph.add_edge(node_id, neighbor)
            self.nodes[neighbor].links.add_trusted(node_id)

        config = self.config
        slot_count = max(
            config.min_pseudonym_links,
            config.target_degree - len(set(trusted_neighbors)),
        )
        policy: Optional[LifetimePolicy] = None
        if config.adaptive_lifetime:
            policy = AdaptiveLifetime(
                ratio=config.lifetime_ratio,
                initial_estimate=config.mean_offline_time,
                smoothing=config.adaptive_smoothing,
            )
        node = OverlayNode(
            node_id=node_id,
            trusted_neighbors=set(trusted_neighbors),
            slot_count=slot_count,
            cache_size=config.cache_size,
            shuffle_length=config.shuffle_length,
            pseudonym_lifetime=config.pseudonym_lifetime,
            sim=self.sim,
            link_layer=self.link_layer,
            rng=self._streams.substream("node", node_id),
            pseudonym_listener=self._record_pseudonym,
            sampler_mode=config.sampler_mode,
            lifetime_policy=policy,
            arena=self.arena,
        )
        node.online_listener = self._on_online_change
        self.nodes.append(node)
        self._trust_version += 1
        # New node: position maps and cached online sets are stale even
        # before any transition (the churn process may seat it online).
        self._online_epoch += 1
        if self._snap_store is not None:
            self._snap_store.grow(len(self.nodes))

        if self.churn is not None:
            from ..churn import Exponential, NodeChurnSpec

            spec = NodeChurnSpec(
                Exponential(config.mean_online_time),
                Exponential(config.mean_offline_time),
            )
            self.churn.add_node(spec, start_online=start_online)
        if self._started and start_online:
            node.come_online()
        return node_id

    def _on_churn_transition(self, node_id: int, online: bool) -> None:
        # Bump here as well as in the node listener: the churn process
        # has already flipped its own online table even when the node
        # call below is a no-op (e.g. a test toggled the node directly).
        self._online_epoch += 1
        if online:
            self.nodes[node_id].come_online()
        else:
            self.nodes[node_id].go_offline()

    def _on_online_change(self, node_id: int, online: bool) -> None:
        self._online_epoch += 1

    def _record_pseudonym(self, node_id: int, pseudonym: Pseudonym) -> None:
        self._value_owner[pseudonym.value] = node_id
        self._address_owner[pseudonym.address] = node_id

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def substream(self, *key) -> np.random.Generator:
        """A named random substream derived from the overlay's root seed.

        Auxiliary layers (dissemination, attacks, measurement) draw
        their randomness here so they never perturb protocol streams.
        """
        return self._streams.substream("aux", *key)

    def online_ids(self) -> List[int]:
        """Ids of currently online nodes, ascending.

        Cached on an epoch counter bumped by every online/offline
        transition, so repeated calls within one measurement sample are
        O(k) copies instead of O(n) re-scans.  Callers that need the
        set several times in one tick should still call this once and
        pass the list down (``snapshot``/``trust_snapshot``/``stats``
        all accept it).
        """
        cache = self._online_cache
        if cache is None or self._online_cache_epoch != self._online_epoch:
            if self.churn is not None:
                cache = self.churn.online_nodes()
            else:
                cache = [node.node_id for node in self.nodes if node.online]
            self._online_cache = cache
            self._online_cache_epoch = self._online_epoch
        return list(cache)

    def _online_array(self, online_ids: Optional[Sequence[int]]) -> np.ndarray:
        if online_ids is None:
            online_ids = self.online_ids()
        return np.sort(np.asarray(online_ids, dtype=np.int64))

    def owner_of_value(self, value: int) -> Optional[int]:
        """Measurement oracle: owner of a pseudonym value (or None)."""
        return self._value_owner.get(value)

    def owner_of_address(self, address: Address) -> Optional[int]:
        """Measurement oracle: owner of an endpoint address (or None)."""
        return self._address_owner.get(address)

    def snapshot(
        self,
        online_only: bool = True,
        online_ids: Optional[Sequence[int]] = None,
    ) -> nx.Graph:
        """The current overlay as an undirected graph.

        Edges are trusted links (both ends online when ``online_only``)
        plus unexpired pseudonym links resolved through the measurement
        registry.  All communication is bidirectional, so links are
        undirected edges regardless of who established them.

        This is the networkx reference path; :meth:`snapshot_fast`
        returns the same graph as a :class:`FlatSnapshot`.
        ``online_ids`` may carry a precomputed :meth:`online_ids`
        result.
        """
        now = self.sim.now
        graph = nx.Graph()
        if online_only:
            included = set(
                self.online_ids() if online_ids is None else online_ids
            )
        else:
            included = set(range(len(self.nodes)))
        graph.add_nodes_from(included)

        for node in self.nodes:
            if node.node_id not in included:
                continue
            for neighbor in node.links.trusted:
                if neighbor in included:
                    graph.add_edge(node.node_id, neighbor)
            for pseudonym in node.links.pseudonym_links():
                if pseudonym.is_expired(now):
                    continue
                owner = self._value_owner.get(pseudonym.value)
                if owner is None or owner == node.node_id:
                    continue
                if owner in included:
                    graph.add_edge(node.node_id, owner)
        return graph

    def trust_snapshot(
        self, online_ids: Optional[Sequence[int]] = None
    ) -> nx.Graph:
        """The trust graph restricted to online nodes (baseline metric)."""
        online = self.online_ids() if online_ids is None else online_ids
        return self.trust_graph.subgraph(online).copy()

    # ------------------------------------------------------------------
    # fast snapshots (flat-array backend; see docs/metrics.md)
    # ------------------------------------------------------------------

    def _ensure_store(self) -> _SnapshotStore:
        store = self._snap_store
        if store is None:
            store = self._snap_store = _SnapshotStore(len(self.nodes))
        elif store.num_nodes < len(self.nodes):
            store.grow(len(self.nodes))
        store.sync(self.nodes, self._value_owner)
        return store

    def snapshot_fast(
        self,
        online_only: bool = True,
        online_ids: Optional[Sequence[int]] = None,
    ) -> FlatSnapshot:
        """:meth:`snapshot` as a :class:`FlatSnapshot` (same graph).

        Assembled from the incrementally maintained edge store: only
        nodes whose link tables changed since the previous call are
        re-read, everything else is numpy filtering.  ``online_ids``
        may carry a precomputed :meth:`online_ids` result and must then
        equal the current online set.
        """
        store = self._ensure_store()
        if online_only:
            ids = self._online_array(online_ids)
        else:
            ids = np.arange(len(self.nodes), dtype=np.int64)
        return store.overlay_snapshot(ids, self.sim.now)

    def trust_snapshot_fast(
        self, online_ids: Optional[Sequence[int]] = None
    ) -> FlatSnapshot:
        """:meth:`trust_snapshot` as a :class:`FlatSnapshot`.

        Cached on ``(online epoch, trust version)``: between churn
        transitions the restricted baseline (and hence its component
        labeling, cached by the caller on snapshot identity) is reused
        outright.  ``online_ids`` must equal the current online set
        when given.
        """
        key = (self._online_epoch, self._trust_version)
        cached = self._trust_fast_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        edge_cache = self._trust_edge_cache
        if edge_cache is None or edge_cache[0] != self._trust_version:
            lows: List[int] = []
            highs: List[int] = []
            for u, v in self.trust_graph.edges():
                if u == v:
                    continue
                lows.append(min(u, v))
                highs.append(max(u, v))
            edge_cache = (
                self._trust_version,
                np.array(lows, dtype=np.int64),
                np.array(highs, dtype=np.int64),
            )
            self._trust_edge_cache = edge_cache
        store = self._ensure_store()
        snap = store.restricted_snapshot(
            edge_cache[1], edge_cache[2], self._online_array(online_ids)
        )
        self._trust_fast_cache = (key, snap)
        return snap

    def online_out_degrees(
        self,
        now: Optional[float] = None,
        online_ids: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """``OverlayNode.out_degree(now)`` for every online node, batched.

        Returns an int64 array aligned with the (ascending) online id
        list: trusted degree plus unexpired pseudonym links, including
        links whose pseudonyms cannot be resolved to an owner — exactly
        the per-node method, computed with one bincount.
        """
        store = self._ensure_store()
        if now is None:
            now = self.sim.now
        trusted = np.fromiter(
            (node.links.trusted_degree for node in self.nodes),
            dtype=np.int64,
            count=len(self.nodes),
        )
        degrees = trusted + store.pseudonym_degrees(now)
        return degrees[self._online_array(online_ids)]

    def stats(self, online_ids: Optional[Sequence[int]] = None) -> OverlayStats:
        """Aggregate cumulative counters.

        ``online_ids`` may carry a precomputed :meth:`online_ids` result.
        """
        stats = OverlayStats(
            time=self.sim.now,
            online_nodes=len(
                self.online_ids() if online_ids is None else online_ids
            ),
            messages_sent=sum(node.counters.messages_sent for node in self.nodes),
            link_replacements=sum(
                node.links.replacements_total for node in self.nodes
            ),
            pseudonyms_created=sum(
                node.counters.pseudonyms_created for node in self.nodes
            ),
        )
        network = getattr(self.link_layer, "network", None)
        if network is not None:
            stats.replays_dropped = network.total_replays_dropped()
            stats.replay_cache_entries = network.total_replay_cache_entries()
            stats.replay_cache_flushes = network.total_replay_flushes()
            stats.circuit_cache_hits = network.circuit_cache_hits
            stats.circuit_cache_misses = network.circuit_cache_misses
        return stats

    def total_online_time(self, node_id: int) -> float:
        """Cumulative online time of ``node_id`` including the open session."""
        node = self.nodes[node_id]
        total = node.counters.online_time
        if node.counters.last_online_at is not None:
            total += self.sim.now - node.counters.last_online_at
        return total
