"""The overlay node: state machine, gossip engine, pseudonym lifecycle.

:class:`OverlayNode` implements one participant of the paper's overlay
layer (Section III):

* **Trusted links** to its trust-graph neighbors, available whenever
  both ends are online.
* **An own pseudonym**, created at start, renewed whenever it expires
  (Section III-C), and always included in outgoing shuffle sets.
* **A pseudonym cache** fed by the shuffling protocol (Section III-D1).
* **Sampler slots** that pick which cached pseudonyms become links
  (Section III-D2); the slot count ``S`` is fixed per node at
  ``max(min_pseudonym_links, target_degree - trusted_degree)`` so all
  nodes end up with a similar total degree.
* **Churn behaviour**: going offline stops the gossip timer but retains
  all state; rejoining re-arms the timer and lazily drops whatever
  expired in the meantime (Section II-D's rejoin semantics).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..errors import NodeOfflineError, ProtocolError
from ..privlink import LinkLayer
from ..sim import Clock, EventHandle, PeriodicProcess
from .arena import ArenaCache, ArenaLinkSet, ArenaSlots, NodeArena
from .cache import PseudonymCache
from .links import LinkSet, LinkTarget
from .maintenance import FixedLifetime, LifetimePolicy
from .pseudonym import Pseudonym, mint_pseudonym
from .shuffle import ShuffleRequest, ShuffleResponse, make_shuffle_set
from .slots import SamplerSlots

__all__ = ["NodeCounters", "OverlayNode"]

PseudonymListener = Callable[[int, Pseudonym], None]


class NodeCounters:
    """Cumulative per-node protocol counters (feed the overhead figures)."""

    __slots__ = (
        "messages_sent",
        "shuffles_initiated",
        "responses_sent",
        "shuffle_sets_absorbed",
        "pseudonyms_created",
        "online_time",
        "last_online_at",
    )

    def __init__(self) -> None:
        self.messages_sent = 0
        self.shuffles_initiated = 0
        self.responses_sent = 0
        self.shuffle_sets_absorbed = 0
        self.pseudonyms_created = 0
        self.online_time = 0.0
        self.last_online_at: Optional[float] = None


class OverlayNode:
    """One participant in the privacy-preserving overlay.

    Parameters
    ----------
    node_id:
        The node's index in the trust graph.
    trusted_neighbors:
        Trust-graph adjacency — the only knowledge the node starts with.
    slot_count:
        Sampler size ``S`` for this node (degree-adaptive, computed by
        the protocol layer).
    cache_size, shuffle_length, pseudonym_lifetime:
        Protocol parameters (Table I).
    sim, link_layer, rng:
        Infrastructure: the simulator, the privacy-preserving link
        layer, and this node's private random stream.
    pseudonym_listener:
        Measurement hook called as ``listener(node_id, pseudonym)``
        whenever this node mints a pseudonym; the protocol layer uses it
        to maintain the omniscient owner registry for snapshots.  It is
        not part of the protocol.
    """

    __slots__ = (
        "node_id",
        "links",
        "cache",
        "slots",
        "sampler_mode",
        "online",
        "own",
        "counters",
        "app_handler",
        "observer",
        "shuffle_filter",
        "_shuffle_length",
        "_lifetime_policy",
        "_slot_count",
        "_went_offline_at",
        "_sim",
        "_link_layer",
        "_rng",
        "_pseudonym_listener",
        "online_listener",
        "_renewal_handle",
        "_last_sent_entries",
        "_shuffler",
    )

    def __init__(
        self,
        node_id: int,
        trusted_neighbors: Iterable[int],
        slot_count: int,
        cache_size: int,
        shuffle_length: int,
        pseudonym_lifetime: float,
        sim: Clock,
        link_layer: LinkLayer,
        rng: np.random.Generator,
        pseudonym_listener: Optional[PseudonymListener] = None,
        sampler_mode: str = "slots",
        lifetime_policy: Optional[LifetimePolicy] = None,
        arena: Optional[NodeArena] = None,
    ) -> None:
        if shuffle_length < 1:
            raise ProtocolError("shuffle_length must be at least 1")
        if pseudonym_lifetime <= 0:
            raise ProtocolError("pseudonym_lifetime must be positive")
        if sampler_mode not in ("slots", "cache"):
            raise ProtocolError(
                f"sampler_mode must be 'slots' or 'cache', got {sampler_mode!r}"
            )
        self.node_id = node_id
        if arena is None:
            # The per-object reference plane (REPRO_NODE_PLANE=objects,
            # or a node constructed outside an overlay).
            self.links = LinkSet(trusted_neighbors)
            self.cache = PseudonymCache(cache_size)
            self.slots = SamplerSlots(slot_count, rng)
        else:
            # The columnar plane: state lives in this node's arena row;
            # the views are byte-identical drop-ins (docs/node_plane.md).
            arena.register_node(node_id, slot_count, cache_size)
            self.links = ArenaLinkSet(arena, node_id, trusted_neighbors)
            self.cache = ArenaCache(arena, node_id, cache_size)
            self.slots = ArenaSlots(arena, node_id, slot_count, rng)
        self._shuffle_length = shuffle_length
        self._lifetime_policy = (
            lifetime_policy
            if lifetime_policy is not None
            else FixedLifetime(pseudonym_lifetime)
        )
        #: "slots" = the paper's Brahms-style sampler; "cache" = the
        #: naive ablation where links follow the newest cache entries.
        self.sampler_mode = sampler_mode
        self._slot_count = slot_count
        self._went_offline_at: Optional[float] = None
        self._sim = sim
        self._link_layer = link_layer
        self._rng = rng
        self._pseudonym_listener = pseudonym_listener
        #: Measurement hook ``listener(node_id, online)`` fired after
        #: every actual online/offline transition (suppressed when the
        #: call is a no-op).  The protocol layer uses it to invalidate
        #: cached online sets; it is not part of the protocol.
        self.online_listener: Optional[Callable[[int, bool], None]] = None

        self.online = False
        self.own: Optional[Pseudonym] = None
        self.counters = NodeCounters()
        #: Optional application-layer handler ``(node_id, payload) -> None``
        #: installed by dissemination protocols.
        self.app_handler: Optional[Callable[[int, object], None]] = None
        #: Optional measurement hook ``(event, details) -> None`` fed with
        #: everything this node legitimately observes; used by the
        #: attack analyses (internal-observer threat model).
        self.observer: Optional[Callable[[str, dict], None]] = None
        #: Adversarial instrumentation: when set, outgoing shuffle sets
        #: pass through this filter.  Models protocol *deviation* (e.g.
        #: the III-E3 vertex-cut coalition forwarding only its own
        #: pseudonyms); honest nodes leave it None.
        self.shuffle_filter: Optional[
            Callable[[Tuple[Pseudonym, ...]], Tuple[Pseudonym, ...]]
        ] = None
        self._renewal_handle: Optional[EventHandle] = None
        self._last_sent_entries: Tuple[Pseudonym, ...] = ()
        self._shuffler = PeriodicProcess(
            sim, period=1.0, callback=self._shuffle_tick, rng=rng, jitter=0.1
        )

        link_layer.register_node(node_id, self._on_message, lambda: self.online)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def come_online(self) -> None:
        """Join (or rejoin) the system.

        State is retained across offline periods; only expired material
        is dropped, and a fresh own pseudonym is minted if the previous
        one expired while offline.
        """
        if self.online:
            return
        self.online = True
        now = self._sim.now
        self.counters.last_online_at = now
        if self._went_offline_at is not None:
            # A node trivially observes its own offline stints; adaptive
            # lifetime policies learn from them (Section III-C).
            self._lifetime_policy.observe_offline_duration(
                now - self._went_offline_at
            )
            self._went_offline_at = None
        self._expire_state(now)
        self._ensure_own_pseudonym(now)
        self._shuffler.start()
        if self.online_listener is not None:
            self.online_listener(self.node_id, True)

    def go_offline(self) -> None:
        """Leave the system, retaining all protocol state."""
        if not self.online:
            return
        self.online = False
        now = self._sim.now
        self._went_offline_at = now
        if self.counters.last_online_at is not None:
            self.counters.online_time += now - self.counters.last_online_at
            self.counters.last_online_at = None
        self._shuffler.stop()
        if self._renewal_handle is not None:
            self._renewal_handle.cancel()
            self._renewal_handle = None
        if self.online_listener is not None:
            self.online_listener(self.node_id, False)

    # ------------------------------------------------------------------
    # pseudonym lifecycle (Section III-C)
    # ------------------------------------------------------------------

    def _ensure_own_pseudonym(self, now: float) -> None:
        if self.own is not None and not self.own.is_expired(now):
            if self._renewal_handle is None:
                self._schedule_renewal()
            return
        if self.own is not None:
            # Retire the expired endpoint; links to it die via expiry on
            # the other nodes' side.
            self._link_layer.close_endpoint(self.own.address)
        address = self._link_layer.create_endpoint(self.node_id)
        self.own = mint_pseudonym(
            self._rng, address, now, self._lifetime_policy.next_lifetime()
        )
        self.counters.pseudonyms_created += 1
        if self._pseudonym_listener is not None:
            self._pseudonym_listener(self.node_id, self.own)
        self._schedule_renewal()

    def _schedule_renewal(self) -> None:
        if self._renewal_handle is not None:
            self._renewal_handle.cancel()
            self._renewal_handle = None
        if self.own is None or math.isinf(self.own.expires_at):
            return
        self._renewal_handle = self._sim.schedule(
            self.own.expires_at, self._renew_pseudonym
        )

    def _renew_pseudonym(self) -> None:
        self._renewal_handle = None
        if not self.online:
            return  # handled lazily on rejoin
        self._ensure_own_pseudonym(self._sim.now)

    # ------------------------------------------------------------------
    # gossip engine (Section III-D)
    # ------------------------------------------------------------------

    def _current_sample(self, now: float) -> list:
        if self.sampler_mode == "slots":
            return self.slots.sample()
        return self.cache.newest(self._slot_count, now)

    def _expire_state(self, now: float) -> None:
        expired = self.cache.remove_expired(now)
        if self.sampler_mode == "slots":
            if self.slots.expire(now) > 0:
                self.links.update_from_sample(self.slots.sample())
        elif expired > 0:
            self.links.update_from_sample(self._current_sample(now))

    def _build_shuffle_set(self, now: float) -> Tuple[Pseudonym, ...]:
        if self.own is None:
            raise NodeOfflineError("node has no pseudonym; is it online?")
        selection = self.cache.select_for_shuffle(
            self._rng, self._shuffle_length - 1, now
        )
        entries = make_shuffle_set(self.own, selection, self._shuffle_length)
        if self.shuffle_filter is not None:
            entries = self.shuffle_filter(entries)
            if not entries:
                entries = (self.own,)  # a set always carries something
        return entries

    def _shuffle_tick(self) -> None:
        if not self.online:
            return
        now = self._sim.now
        self._expire_state(now)
        target = self.links.pick_random_target(self._rng)
        if target is None or self.own is None:
            return
        entries = self._build_shuffle_set(now)
        self._last_sent_entries = entries
        if target.is_trusted:
            request = ShuffleRequest(entries=entries, reply_node=self.node_id)
            self._link_layer.send_to_node(self.node_id, target.node_id, request)
        else:
            request = ShuffleRequest(
                entries=entries, reply_address=self.own.address
            )
            self._link_layer.send_to_endpoint(
                self.node_id, target.pseudonym.address, request
            )
        self.counters.messages_sent += 1
        self.counters.shuffles_initiated += 1
        if self.observer is not None:
            self.observer(
                "shuffle_request_sent",
                {"time": now, "target": target, "entries": entries},
            )

    def _on_message(self, payload: object) -> None:
        if isinstance(payload, ShuffleRequest):
            self._handle_request(payload)
        elif isinstance(payload, ShuffleResponse):
            self._handle_response(payload)
        elif self.app_handler is not None:
            # Application-layer traffic (dissemination protocols).
            self.app_handler(self.node_id, payload)

    def _handle_request(self, request: ShuffleRequest) -> None:
        now = self._sim.now
        self._expire_state(now)
        self._ensure_own_pseudonym(now)
        response_entries = self._build_shuffle_set(now)
        response = ShuffleResponse(entries=response_entries)
        if request.reply_node is not None:
            self._link_layer.send_to_node(self.node_id, request.reply_node, response)
        elif request.reply_address is not None:
            self._link_layer.send_to_endpoint(
                self.node_id, request.reply_address, response
            )
        self.counters.messages_sent += 1
        self.counters.responses_sent += 1
        if self.observer is not None:
            self.observer(
                "shuffle_request_received",
                {
                    "time": now,
                    "entries": request.entries,
                    "reply_node": request.reply_node,
                    "reply_address": request.reply_address,
                },
            )
        self._absorb(request.entries, just_sent=response_entries)

    def _handle_response(self, response: ShuffleResponse) -> None:
        if self.observer is not None:
            self.observer(
                "shuffle_response_received",
                {"time": self._sim.now, "entries": response.entries},
            )
        self._absorb(response.entries, just_sent=self._last_sent_entries)

    def _absorb(
        self,
        received: Tuple[Pseudonym, ...],
        just_sent: Tuple[Pseudonym, ...],
    ) -> None:
        """Fold a received shuffle set into cache, slots, and links.

        "All pseudonyms in the received set, whether already in the
        cache or not, are sampled."
        """
        now = self._sim.now
        if self.own is None:
            return
        own_value = self.own.value
        usable = [
            pseudonym
            for pseudonym in received
            if pseudonym.value != own_value and not pseudonym.is_expired(now)
        ]
        self.cache.merge(usable, now, just_sent=just_sent, own_value=own_value)
        if self.sampler_mode == "slots":
            self.slots.expire(now)
            if usable:
                self.slots.offer_batch(usable)
        self.links.update_from_sample(self._current_sample(now))
        self.counters.shuffle_sets_absorbed += 1

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------

    def out_degree(self, now: Optional[float] = None) -> int:
        """Links this node currently maintains, excluding expired ones."""
        if now is None:
            now = self._sim.now
        valid_pseudonym_links = sum(
            not pseudonym.is_expired(now)
            for pseudonym in self.links.pseudonym_links()
        )
        return self.links.trusted_degree + valid_pseudonym_links

    def estimate_population(self, now: Optional[float] = None) -> int:
        """Estimate the number of participating nodes.

        Section III-E4: "all nodes will eventually see all pseudonyms in
        the system before they expire, which allows nodes to estimate
        the number of participating nodes.  This, however, does not
        violate our privacy requirements."  The estimator counts the
        distinct *live* pseudonym values this node currently knows (its
        cache, its links, itself) plus its trusted peers that own no
        known pseudonym — all information the protocol legitimately
        provides.
        """
        if now is None:
            now = self._sim.now
        values = {
            pseudonym.value
            for pseudonym in self.cache.pseudonyms()
            if not pseudonym.is_expired(now)
        }
        values.update(
            pseudonym.value
            for pseudonym in self.links.pseudonym_links()
            if not pseudonym.is_expired(now)
        )
        if self.own is not None and not self.own.is_expired(now):
            values.add(self.own.value)
        # Trusted peers participate whether or not their pseudonym has
        # reached us; counting them can only improve the lower bound.
        return max(len(values), self.links.trusted_degree + 1)

    def valid_pseudonym_links(self, now: Optional[float] = None) -> List[Pseudonym]:
        """Unexpired pseudonym links at ``now``."""
        if now is None:
            now = self._sim.now
        return [
            pseudonym
            for pseudonym in self.links.pseudonym_links()
            if not pseudonym.is_expired(now)
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "online" if self.online else "offline"
        return (
            f"OverlayNode(id={self.node_id}, {state}, "
            f"trusted={self.links.trusted_degree}, "
            f"pseudonym_links={self.links.pseudonym_degree()})"
        )
