"""Pseudonym lifetime policies (paper Section III-C).

The paper treats pseudonym lifetime as a global constant but notes that
"it might be better to let each node adapt the lifetime of its
pseudonyms based on the availability characteristics of the other
participating nodes".  This module implements that extension:

* :class:`FixedLifetime` — the paper's global ``r x Toff`` setting.
* :class:`AdaptiveLifetime` — each node tracks its *own* offline
  durations (it trivially observes them: the gap between going offline
  and rejoining) with an exponentially weighted moving average, and
  sizes new pseudonyms at ``ratio x`` that estimate.  Nodes that rarely
  disappear get short-lived pseudonyms (better privacy: observers can
  correlate traffic to one pseudonym only briefly); nodes with long
  offline stints get lifetimes long enough that their links survive,
  which is the paper's rule of thumb ("longer than the time nodes are
  expected to be offline before rejoining").

Policies are deliberately *local*: they consume only what a node can
observe about itself, so the extension adds no privacy exposure.  They
are also *clock-agnostic*: inputs are durations and the caller's
``clock.now``, never a wall-clock read, so the same policy objects run
unmodified under the simulator and under ``repro.net``'s wall clock
(see :class:`repro.sim.clock.Clock`).
"""

from __future__ import annotations

import abc
import math

from ..errors import ProtocolError

__all__ = ["LifetimePolicy", "FixedLifetime", "AdaptiveLifetime"]


class LifetimePolicy(abc.ABC):
    """Decides the lifetime of each newly minted pseudonym."""

    __slots__ = ()

    @abc.abstractmethod
    def next_lifetime(self) -> float:
        """Lifetime (in shuffling periods) for the next pseudonym."""

    def observe_offline_duration(self, duration: float) -> None:
        """Feed one observed offline stint (no-op by default)."""


class FixedLifetime(LifetimePolicy):
    """The paper's global setting: every pseudonym lives equally long."""

    __slots__ = ("_lifetime",)

    def __init__(self, lifetime: float) -> None:
        if lifetime <= 0:
            raise ProtocolError(f"lifetime must be positive, got {lifetime}")
        self._lifetime = lifetime

    @property
    def lifetime(self) -> float:
        """The constant lifetime."""
        return self._lifetime

    def next_lifetime(self) -> float:
        return self._lifetime

    def __repr__(self) -> str:
        return f"FixedLifetime({self._lifetime})"


class AdaptiveLifetime(LifetimePolicy):
    """Per-node lifetime: ``ratio x`` EWMA of own offline durations.

    Parameters
    ----------
    ratio:
        Multiplier over the estimated mean offline time (the paper's
        ``r``; its evaluation recommends r >= 3 for robustness).
    initial_estimate:
        Mean-offline-time guess before any observation (e.g. the
        system-wide Toff the group expects).
    smoothing:
        EWMA weight of each new observation, in (0, 1].
    floor, ceiling:
        Clamp on produced lifetimes, so one freak stint cannot produce
        a uselessly short or effectively immortal pseudonym.
    """

    __slots__ = (
        "_ratio",
        "_estimate",
        "_smoothing",
        "_floor",
        "_ceiling",
        "_observations",
    )

    def __init__(
        self,
        ratio: float,
        initial_estimate: float,
        smoothing: float = 0.3,
        floor: float = 1.0,
        ceiling: float = math.inf,
    ) -> None:
        if ratio <= 0:
            raise ProtocolError("ratio must be positive")
        if initial_estimate <= 0:
            raise ProtocolError("initial_estimate must be positive")
        if not 0.0 < smoothing <= 1.0:
            raise ProtocolError("smoothing must be in (0, 1]")
        if floor <= 0 or ceiling < floor:
            raise ProtocolError("need 0 < floor <= ceiling")
        self._ratio = ratio
        self._estimate = initial_estimate
        self._smoothing = smoothing
        self._floor = floor
        self._ceiling = ceiling
        self._observations = 0

    @property
    def estimate(self) -> float:
        """Current mean-offline-time estimate."""
        return self._estimate

    @property
    def observations(self) -> int:
        """How many offline stints have been observed."""
        return self._observations

    def observe_offline_duration(self, duration: float) -> None:
        if duration < 0:
            raise ProtocolError("offline duration cannot be negative")
        self._observations += 1
        self._estimate = (
            self._smoothing * duration + (1.0 - self._smoothing) * self._estimate
        )

    def next_lifetime(self) -> float:
        lifetime = self._ratio * self._estimate
        return min(self._ceiling, max(self._floor, lifetime))

    def __repr__(self) -> str:
        return (
            f"AdaptiveLifetime(ratio={self._ratio}, "
            f"estimate={self._estimate:.2f}, n={self._observations})"
        )
