"""Per-node overlay link management (paper Section III-A).

"The set of overlay links of a node n (denoted n.links) is the union of
its trusted links and pseudonym links."  Trusted links are static —
one per trust-graph neighbor, re-established whenever both ends are
online.  Pseudonym links follow the sampler: after every gossip
exchange the node updates n.links to include exactly the pseudonyms
appearing in at least one sampler slot.

Links are never removed because the far end went offline ("overlay
links to nodes that go offline are not removed; such links become
operational again when the corresponding nodes rejoin") — they only
change through sampling and pseudonym expiry.  :class:`LinkSet` counts
those changes, which is the paper's overhead metric (Figure 9).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import ProtocolError
from .pseudonym import Pseudonym

__all__ = ["LinkTarget", "LinkSet"]


@dataclasses.dataclass(frozen=True)
class LinkTarget:
    """One overlay link endpoint, as the owning node sees it.

    Exactly one of ``node_id`` (trusted link — the friend's real ID) and
    ``pseudonym`` (pseudonym link — nothing but the pseudonym) is set.
    """

    node_id: Optional[int] = None
    pseudonym: Optional[Pseudonym] = None

    def __post_init__(self) -> None:
        if (self.node_id is None) == (self.pseudonym is None):
            raise ProtocolError(
                "LinkTarget needs exactly one of node_id / pseudonym"
            )

    @property
    def is_trusted(self) -> bool:
        """Whether this is a trusted (friend) link."""
        return self.node_id is not None


class LinkSet:
    """``n.links``: trusted links plus the sampled pseudonym links."""

    __slots__ = (
        "_trusted",
        "_trusted_list",
        "_pseudonym_links",
        "replacements_total",
        "additions_total",
    )

    def __init__(self, trusted_neighbors: Iterable[int]) -> None:
        self._trusted = set(trusted_neighbors)
        self._trusted_list: List[int] = sorted(self._trusted)
        self._pseudonym_links: Dict[int, Pseudonym] = {}  # keyed by value
        self.replacements_total = 0
        self.additions_total = 0

    @property
    def trusted(self) -> FrozenSet[int]:
        """Trust-graph neighbor ids.

        Static in the paper's immutable-trust-graph setting; grows only
        through :meth:`add_trusted` (node/edge additions, which the
        paper notes raise no privacy concerns).
        """
        return frozenset(self._trusted)

    def add_trusted(self, neighbor: int) -> bool:
        """Add a trusted link (new friend); returns False if present."""
        if neighbor in self._trusted:
            return False
        self._trusted.add(neighbor)
        self._trusted_list = sorted(self._trusted)
        return True

    @property
    def trusted_degree(self) -> int:
        """Number of trusted links."""
        return len(self._trusted)

    def pseudonym_links(self) -> List[Pseudonym]:
        """Current pseudonym-link targets (snapshot)."""
        return list(self._pseudonym_links.values())

    def pseudonym_degree(self) -> int:
        """Number of current pseudonym links."""
        return len(self._pseudonym_links)

    def out_degree(self) -> int:
        """Total links this node maintains (trusted + pseudonym)."""
        return len(self._trusted) + len(self._pseudonym_links)

    def has_pseudonym_link(self, pseudonym: Pseudonym) -> bool:
        """Whether a link to this exact pseudonym exists."""
        current = self._pseudonym_links.get(pseudonym.value)
        return current == pseudonym

    def update_from_sample(self, sample: Iterable[Pseudonym]) -> Tuple[int, int]:
        """Make the pseudonym links exactly match the sampler output.

        Returns ``(added, removed)``.  ``removed`` feeds the paper's
        link-replacement overhead metric: a removal happens either
        because the pseudonym expired out of every slot or because the
        sampler found numerically better pseudonyms.
        """
        new_links = {pseudonym.value: pseudonym for pseudonym in sample}
        removed = 0
        added = 0
        for value in list(self._pseudonym_links):
            replacement = new_links.get(value)
            if replacement is None:
                del self._pseudonym_links[value]
                removed += 1
            elif replacement != self._pseudonym_links[value]:
                self._pseudonym_links[value] = replacement
                removed += 1
                added += 1
        for value, pseudonym in new_links.items():
            if value not in self._pseudonym_links:
                self._pseudonym_links[value] = pseudonym
                added += 1
        self.replacements_total += removed
        self.additions_total += added
        return added, removed

    def all_targets(self) -> List[LinkTarget]:
        """Every overlay link as a :class:`LinkTarget` list."""
        targets = [LinkTarget(node_id=neighbor) for neighbor in self._trusted_list]
        targets.extend(
            LinkTarget(pseudonym=pseudonym)
            for pseudonym in self._pseudonym_links.values()
        )
        return targets

    def pick_random_target(
        self, rng: np.random.Generator
    ) -> Optional[LinkTarget]:
        """Select a link uniformly at random (the shuffle partner choice).

        "Periodically, n selects a link from n.links uniformly at
        random and executes a shuffling protocol with the node m at the
        other end."  Returns None when the node has no links at all.
        """
        total = self.out_degree()
        if total == 0:
            return None
        index = int(rng.integers(0, total))
        if index < len(self._trusted_list):
            return LinkTarget(node_id=self._trusted_list[index])
        pseudonym_index = index - len(self._trusted)
        for offset, pseudonym in enumerate(self._pseudonym_links.values()):
            if offset == pseudonym_index:
                return LinkTarget(pseudonym=pseudonym)
        raise ProtocolError("link index out of range (concurrent mutation?)")
