"""Per-node overlay link management (paper Section III-A).

"The set of overlay links of a node n (denoted n.links) is the union of
its trusted links and pseudonym links."  Trusted links are static —
one per trust-graph neighbor, re-established whenever both ends are
online.  Pseudonym links follow the sampler: after every gossip
exchange the node updates n.links to include exactly the pseudonyms
appearing in at least one sampler slot.

Links are never removed because the far end went offline ("overlay
links to nodes that go offline are not removed; such links become
operational again when the corresponding nodes rejoin") — they only
change through sampling and pseudonym expiry.  :class:`LinkSet` counts
those changes, which is the paper's overhead metric (Figure 9).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple, Union

import numpy as np

from ..errors import ProtocolError
from .pseudonym import Pseudonym

__all__ = ["LinkTarget", "LinkSet"]


@dataclasses.dataclass(frozen=True)
class LinkTarget:
    """One overlay link endpoint, as the owning node sees it.

    Exactly one of ``node_id`` (trusted link — the friend's real ID) and
    ``pseudonym`` (pseudonym link — nothing but the pseudonym) is set.
    """

    node_id: Optional[int] = None
    pseudonym: Optional[Pseudonym] = None

    def __post_init__(self) -> None:
        if (self.node_id is None) == (self.pseudonym is None):
            raise ProtocolError(
                "LinkTarget needs exactly one of node_id / pseudonym"
            )

    @property
    def is_trusted(self) -> bool:
        """Whether this is a trusted (friend) link."""
        return self.node_id is not None


class LinkSet:
    """``n.links``: trusted links plus the sampled pseudonym links."""

    __slots__ = (
        "_trusted",
        "_trusted_list",
        "_trusted_frozen",
        "_pseudonym_links",
        "_pseudonym_list",
        "replacements_total",
        "additions_total",
        "version",
        "trusted_version",
    )

    def __init__(self, trusted_neighbors: Iterable[int]) -> None:
        self._trusted = set(trusted_neighbors)
        self._trusted_list: List[int] = sorted(self._trusted)
        self._trusted_frozen: FrozenSet[int] = frozenset(self._trusted)
        self._pseudonym_links: Dict[int, Pseudonym] = {}  # keyed by value
        # Lazily rebuilt snapshot of the pseudonym links, in dict
        # insertion order.  Invalidated on every mutation; shared by
        # pick_random_target / pseudonym_links so the per-shuffle hot
        # path never walks the dict.
        self._pseudonym_list: Optional[List[Pseudonym]] = None
        self.replacements_total = 0
        self.additions_total = 0
        #: Change counters: ``version`` bumps whenever the pseudonym
        #: link set changes, ``trusted_version`` whenever the trusted
        #: set grows.  The overlay's incremental snapshot store compares
        #: them against its last-seen values instead of re-reading every
        #: node's link table on each measurement sample.
        self.version = 0
        self.trusted_version = 0

    @property
    def trusted(self) -> FrozenSet[int]:
        """Trust-graph neighbor ids.

        Static in the paper's immutable-trust-graph setting; grows only
        through :meth:`add_trusted` (node/edge additions, which the
        paper notes raise no privacy concerns).
        """
        return self._trusted_frozen

    def add_trusted(self, neighbor: int) -> bool:
        """Add a trusted link (new friend); returns False if present."""
        if neighbor in self._trusted:
            return False
        self._trusted.add(neighbor)
        self._trusted_list = sorted(self._trusted)
        self._trusted_frozen = frozenset(self._trusted)
        self.trusted_version += 1
        return True

    @property
    def trusted_degree(self) -> int:
        """Number of trusted links."""
        return len(self._trusted)

    def pseudonym_links(self) -> List[Pseudonym]:
        """Current pseudonym-link targets.

        Returns a cached snapshot list (rebuilt after any change);
        treat it as read-only.
        """
        snapshot = self._pseudonym_list
        if snapshot is None:
            snapshot = self._pseudonym_list = list(self._pseudonym_links.values())
        return snapshot

    def pseudonym_degree(self) -> int:
        """Number of current pseudonym links."""
        return len(self._pseudonym_links)

    def out_degree(self) -> int:
        """Total links this node maintains (trusted + pseudonym)."""
        return len(self._trusted) + len(self._pseudonym_links)

    def has_pseudonym_link(self, pseudonym: Pseudonym) -> bool:
        """Whether a link to this exact pseudonym exists."""
        current = self._pseudonym_links.get(pseudonym.value)
        return current == pseudonym

    def update_from_sample(self, sample: Iterable[Pseudonym]) -> Tuple[int, int]:
        """Make the pseudonym links exactly match the sampler output.

        Returns ``(added, removed)``.  ``removed`` feeds the paper's
        link-replacement overhead metric: a removal happens either
        because the pseudonym expired out of every slot or because the
        sampler found numerically better pseudonyms.
        """
        new_links = {pseudonym.value: pseudonym for pseudonym in sample}
        current = self._pseudonym_links
        removed = 0
        added = 0
        if len(new_links) != len(current) or new_links.keys() != current.keys():
            for value in [v for v in current if v not in new_links]:
                del current[value]
                removed += 1
        for value, pseudonym in new_links.items():
            existing = current.get(value)
            if existing is None:
                current[value] = pseudonym
                added += 1
            elif existing != pseudonym:
                current[value] = pseudonym
                removed += 1
                added += 1
        if added or removed:
            self._pseudonym_list = None
            self.version += 1
        self.replacements_total += removed
        self.additions_total += added
        return added, removed

    def all_targets(self) -> List[LinkTarget]:
        """Every overlay link as a :class:`LinkTarget` list."""
        targets = [LinkTarget(node_id=neighbor) for neighbor in self._trusted_list]
        targets.extend(
            LinkTarget(pseudonym=pseudonym)
            for pseudonym in self._pseudonym_links.values()
        )
        return targets

    def pick_random_target(
        self, rng: np.random.Generator
    ) -> Optional[LinkTarget]:
        """Select a link uniformly at random (the shuffle partner choice).

        "Periodically, n selects a link from n.links uniformly at
        random and executes a shuffling protocol with the node m at the
        other end."  Returns None when the node has no links at all.
        """
        trusted_list = self._trusted_list
        snapshot = self._pseudonym_list
        if snapshot is None:
            snapshot = self._pseudonym_list = list(self._pseudonym_links.values())
        total = len(trusted_list) + len(snapshot)
        if total == 0:
            return None
        index = int(rng.integers(0, total))
        if index < len(trusted_list):
            return LinkTarget(node_id=trusted_list[index])
        return LinkTarget(pseudonym=snapshot[index - len(trusted_list)])
