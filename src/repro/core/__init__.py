"""The paper's core contribution: privacy-preserving overlay maintenance.

Builds and maintains an overlay that starts from a trust graph and —
through ephemeral pseudonyms, gossip-based distribution, and
Brahms-style sampling — converges to random-graph-like robustness
without ever disclosing node identities or trust relations.
"""

from .arena import (
    ArenaCache,
    ArenaLinkSet,
    ArenaSlots,
    NodeArena,
    PseudonymArena,
    get_node_plane,
    resolve_node_plane,
    set_node_plane,
)
from .batch import BatchOverlay
from .cache import PseudonymCache
from .links import LinkSet, LinkTarget
from .maintenance import AdaptiveLifetime, FixedLifetime, LifetimePolicy
from .node import NodeCounters, OverlayNode
from .protocol import Overlay, OverlayStats
from .pseudonym import Pseudonym, mint_pseudonym
from .shuffle import ShuffleRequest, ShuffleResponse, make_shuffle_set
from .slots import SamplerSlots

__all__ = [
    "Pseudonym",
    "mint_pseudonym",
    "PseudonymCache",
    "SamplerSlots",
    "LinkSet",
    "LinkTarget",
    "PseudonymArena",
    "NodeArena",
    "ArenaLinkSet",
    "ArenaCache",
    "ArenaSlots",
    "BatchOverlay",
    "get_node_plane",
    "set_node_plane",
    "resolve_node_plane",
    "ShuffleRequest",
    "ShuffleResponse",
    "make_shuffle_set",
    "OverlayNode",
    "NodeCounters",
    "LifetimePolicy",
    "FixedLifetime",
    "AdaptiveLifetime",
    "Overlay",
    "OverlayStats",
]
