"""Round-based batch overlay engine for million-node studies.

The event-driven :class:`~repro.core.protocol.Overlay` simulates every
message with per-node method calls — exact, but bounded to ~10⁴ nodes.
:class:`BatchOverlay` runs the same protocol round-synchronously over
the columnar node plane (:mod:`repro.core.arena`): one shuffle period
per step, with churn transitions, pseudonym expiry, minting, partner
selection, shuffle-set construction, and set absorption each evaluated
for the *whole population* in a handful of numpy passes over the
arena's id arrays.  The per-entry semantics — sampler replacement,
cache replacement, link derivation — are the arena batch kernels,
which the ``node_plane`` benchmark pins differentially against the
legacy per-node classes.

Model discretizations (this engine is a scaling companion, not a
byte-identical replica of the event-driven simulator):

* Time advances in whole shuffle periods; churn follows
  :class:`~repro.churn.batch.BatchChurnModel` (the same exponential
  model, discretized per round).
* Each participant builds one shuffle set per round and answers every
  exchange with it.  A node receiving several sets absorbs them in
  deterministic *waves* — the j-th received set of every destination
  is folded in one batch op.
* Cache eviction drops the oldest entries (the CYCLON rule without the
  just-sent preference).
* Offline nodes keep their state; expired material is dropped eagerly
  rather than lazily on rejoin (the post-rejoin state is identical).

Everything is deterministic in ``config.seed``: the trust graph, the
churn, the minted values, and every sampling draw come from named
:class:`~repro.rng.RandomStreams` substreams.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

import numpy as np

from ..config import SystemConfig
from ..churn.batch import BatchChurnModel
from ..errors import GraphError, ProtocolError
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis
from ..rng import PSEUDONYM_BITS, RandomStreams
from .arena import NodeArena, PseudonymArena

__all__ = ["BatchOverlay", "ring_lattice_csr"]


def ring_lattice_csr(
    num_nodes: int, extra_edges_per_node: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """A connected synthetic trust graph as a CSR adjacency.

    A ring (guaranteeing connectivity) plus ``extra_edges_per_node``
    random chords per node on average — degree-concentrated like the
    paper's social graphs are *not*, but structurally adequate for
    scale studies, and generated vectorized so a 10⁶-node graph takes
    milliseconds, not the minutes a networkx generator would.

    Returns ``(indptr, indices)`` with ascending neighbor lists.
    """
    if num_nodes < 3:
        raise GraphError(f"ring_lattice_csr needs >= 3 nodes, got {num_nodes}")
    if extra_edges_per_node < 0:
        raise GraphError("extra_edges_per_node must be non-negative")
    ring_u = np.arange(num_nodes, dtype=np.int64)
    ring_v = (ring_u + 1) % num_nodes
    chords = (num_nodes * extra_edges_per_node) // 2
    chord_u = rng.integers(0, num_nodes, size=chords, dtype=np.int64)
    chord_v = rng.integers(0, num_nodes, size=chords, dtype=np.int64)
    keep = chord_u != chord_v
    u = np.concatenate((ring_u, chord_u[keep]))
    v = np.concatenate((ring_v, chord_v[keep]))
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = np.unique(lo * num_nodes + hi)
    lo = key // num_nodes
    hi = key % num_nodes
    degree = np.bincount(lo, minlength=num_nodes) + np.bincount(
        hi, minlength=num_nodes
    )
    indptr = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(degree, dtype=np.int64))
    )
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    order = np.lexsort((dst, src))
    return indptr, dst[order]


class BatchOverlay:
    """A whole overlay system advanced one shuffle round at a time.

    Parameters
    ----------
    config:
        Protocol parameters; ``num_nodes`` may be millions.  The
        sampler size is uniform:
        ``S = max(min_pseudonym_links, target_degree - mean_degree)``.
    trusted_indptr, trusted_indices:
        The trust graph as a symmetric CSR adjacency
        (:func:`ring_lattice_csr`, or any CSR over ``0..n-1``).
    start_all_online:
        Seat every node online instead of the stationary draw.
    """

    __slots__ = (
        "config",
        "arena",
        "churn",
        "round",
        "slot_count",
        "own_ids",
        "counters",
        "_trusted_deg",
        "_trust_lo",
        "_trust_hi",
        "_mint_rng",
        "_protocol_rng",
    )

    def __init__(
        self,
        config: SystemConfig,
        trusted_indptr: np.ndarray,
        trusted_indices: np.ndarray,
        start_all_online: bool = False,
    ) -> None:
        num_nodes = config.num_nodes
        if len(trusted_indptr) != num_nodes + 1:
            raise GraphError(
                f"trusted_indptr covers {len(trusted_indptr) - 1} nodes, "
                f"config.num_nodes is {num_nodes}"
            )
        self.config = config
        streams = RandomStreams(config.seed)
        self._mint_rng = streams.substream("batch", "mint")
        self._protocol_rng = streams.substream("batch", "protocol")
        self.churn = BatchChurnModel(
            num_nodes,
            config.availability,
            config.mean_offline_time,
            streams.substream("batch", "churn"),
            start_all_online=start_all_online,
        )
        mean_degree = int(len(trusted_indices) / num_nodes)
        self.slot_count = max(
            config.min_pseudonym_links, config.target_degree - mean_degree
        )
        self.arena = NodeArena(
            PseudonymArena(chunk=max(4096, num_nodes)),
            node_chunk=num_nodes,
            track_insert_times=False,
        )
        self.arena.register_batch(num_nodes, self.slot_count, config.cache_size)
        # Immutable per-slot reference values (paper Section III-D2) —
        # drawn once, whole plane at a time.  Without them every slot
        # would share reference 0 and collapse onto one pseudonym.
        if self.slot_count:
            self.arena.slot_refs[:num_nodes, : self.slot_count] = streams.substream(
                "batch", "slot-refs"
            ).integers(
                0,
                1 << PSEUDONYM_BITS,
                size=(num_nodes, self.slot_count),
                dtype=np.int64,
            )
        self.arena.set_trusted_csr(trusted_indptr, trusted_indices)
        self._trusted_deg = np.diff(self.arena.trusted_indptr)
        # Undirected trusted edge list (lo < hi) for snapshot assembly.
        src = np.repeat(
            np.arange(num_nodes, dtype=np.int64), self._trusted_deg
        )
        forward = self.arena.trusted_indices > src
        self._trust_lo = src[forward]
        self._trust_hi = self.arena.trusted_indices[forward]
        self.own_ids = np.full(num_nodes, -1, dtype=np.int64)
        self.round = 0
        self.counters: Dict[str, int] = {
            "messages_sent": 0,
            "exchanges": 0,
            "sets_absorbed": 0,
            "pseudonyms_created": 0,
            "link_additions": 0,
            "link_removals": 0,
        }

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        extra_edges_per_node: int = 4,
        start_all_online: bool = False,
    ) -> "BatchOverlay":
        """Construct over a synthetic ring-lattice trust graph."""
        streams = RandomStreams(config.seed)
        indptr, indices = ring_lattice_csr(
            config.num_nodes,
            extra_edges_per_node,
            streams.substream("batch", "trust-graph"),
        )
        return cls(config, indptr, indices, start_all_online=start_all_online)

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def _mint_due(self, now: float, online: np.ndarray) -> None:
        """Mint fresh own pseudonyms for online nodes whose own expired."""
        table = self.arena.pseudonyms
        own = self.own_ids
        safe = np.where(own >= 0, own, 0)
        live = (own >= 0) & (table.expires_at[safe] > now)
        due = np.flatnonzero(online & ~live)
        if len(due) == 0:
            return
        stale = own[due]
        table.release_batch(stale[stale >= 0])
        values = self._mint_rng.integers(
            0, 1 << PSEUDONYM_BITS, size=len(due), dtype=np.int64
        )
        expires = np.full(len(due), now + self.config.pseudonym_lifetime)
        own[due] = table.mint_batch(values, expires, due)
        self.counters["pseudonyms_created"] += len(due)

    def _refresh_links(self, rows: np.ndarray) -> None:
        if len(rows) == 0:
            return
        added, removed = self.arena.batch_links_from_slots(rows)
        self.counters["link_additions"] += int(added.sum())
        self.counters["link_removals"] += int(removed.sum())

    def _pick_partners(self, online: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """One uniform link choice per online node; returns (rows, partners).

        Each online node picks uniformly over trusted + pseudonym links
        (the paper's partner selection); pseudonym links resolve to
        their owner through the arena's owner column.  Exchanges whose
        partner is offline are dropped requests (still counted as sent).
        """
        arena = self.arena
        num_nodes = arena.num_nodes
        trusted_deg = self._trusted_deg
        link_len = arena.link_len[:num_nodes].astype(np.int64)
        total = trusted_deg + link_len
        active = online & (total > 0) & (self.own_ids >= 0)
        draws = self._protocol_rng.random(num_nodes)
        safe_total = np.maximum(total, 1)
        index = np.minimum(
            (draws * safe_total).astype(np.int64), safe_total - 1
        )
        partner = np.full(num_nodes, -1, dtype=np.int64)
        from_trusted = active & (index < trusted_deg)
        rows = np.flatnonzero(from_trusted)
        if len(rows):
            partner[rows] = arena.trusted_indices[
                arena.trusted_indptr[rows] + index[rows]
            ]
        from_links = active & ~from_trusted
        rows = np.flatnonzero(from_links)
        if len(rows):
            cols = index[rows] - trusted_deg[rows]
            pids = arena.link_ids[rows, cols]
            partner[rows] = arena.pseudonyms.owners[pids]
        sent = int(active.sum())
        self.counters["messages_sent"] += sent
        reachable = (
            active
            & (partner >= 0)
            & online[np.maximum(partner, 0)]
            & (partner != np.arange(num_nodes))
        )
        initiators = np.flatnonzero(reachable)
        return initiators, partner[initiators]

    def _build_sets(
        self, participants: np.ndarray, now: float
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shuffle set per participant: own + l-1 distinct cache picks.

        Returns ``(set_matrix, position)`` where ``position[node]``
        indexes the node's row in ``set_matrix`` (-1 for bystanders).
        The sets hold a refcount on every entry for the duration of the
        round, so an entry evicted mid-wave stays readable — in the
        real protocol the pseudonym travels inside the message,
        independent of the sender's later cache state.
        """
        arena = self.arena
        length = self.config.shuffle_length
        keys = self._protocol_rng.random((len(participants), arena.cache_cols))
        picks = arena.sample_cache(participants, length - 1, keys)
        sets = np.concatenate(
            (self.own_ids[participants][:, None].astype(np.int32), picks),
            axis=1,
        )
        held = sets[sets >= 0]
        counts = np.bincount(held, minlength=arena.pseudonyms.capacity)
        touched = np.flatnonzero(counts)
        arena.pseudonyms.refcounts[touched] += counts[touched]
        position = np.full(arena.num_nodes, -1, dtype=np.int64)
        position[participants] = np.arange(len(participants), dtype=np.int64)
        return sets, position

    def _absorb_waves(
        self,
        dst: np.ndarray,
        src: np.ndarray,
        sets: np.ndarray,
        position: np.ndarray,
        now: float,
    ) -> np.ndarray:
        """Fold every (dst ← src's set) delivery; returns dirty rows.

        Deliveries are grouped into waves — the j-th received set of
        every destination — so each wave is one cache-merge plus one
        slot-offer batch op.  Expired entries and the destination's own
        pseudonym are masked out first (the legacy ``_absorb`` filter).
        """
        arena = self.arena
        table = arena.pseudonyms
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        sorted_src = src[order]
        count = len(sorted_dst)
        changed_rows = np.zeros(arena.num_nodes, dtype=bool)
        if count == 0:
            return changed_rows
        new_group = np.empty(count, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_dst[1:] != sorted_dst[:-1]
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(count), 0)
        )
        wave_index = np.arange(count) - group_start
        self.counters["sets_absorbed"] += count
        for wave in range(int(wave_index.max()) + 1):
            sel = wave_index == wave
            rows = sorted_dst[sel]
            cands = sets[position[sorted_src[sel]]].copy()
            valid = cands >= 0
            safe = np.where(valid, cands, 0)
            usable = (
                valid
                & (table.expires_at[safe] > now)
                & (cands != self.own_ids[rows][:, None])
            )
            cands = np.where(usable, cands, -1)
            arena.batch_cache_merge(rows, cands, now)
            changed = arena.batch_offer(rows, cands)
            changed_rows[rows[changed > 0]] = True
        return changed_rows

    def step(self) -> None:
        """Advance one shuffle round."""
        self.round += 1
        now = float(self.round)
        arena = self.arena
        self.churn.step()
        online = self.churn.online
        # Expiry purge: slots and caches globally, then links for every
        # row whose slots changed (the legacy _expire_state ordering —
        # link refresh happens before partner selection).
        slot_dirty, _ = arena.batch_expire(now)
        self._refresh_links(slot_dirty)
        self._mint_due(now, online)
        initiators, partners = self._pick_partners(online)
        self.counters["exchanges"] += len(initiators)
        # Responses are messages too (one per reachable request).
        self.counters["messages_sent"] += len(initiators)
        participants = np.unique(np.concatenate((initiators, partners)))
        if len(participants) == 0:
            return
        sets, position = self._build_sets(participants, now)
        # Symmetric exchange: the partner absorbs the initiator's set,
        # the initiator absorbs the partner's response.
        dst = np.concatenate((partners, initiators))
        src = np.concatenate((initiators, partners))
        changed_rows = self._absorb_waves(dst, src, sets, position, now)
        self._refresh_links(np.flatnonzero(changed_rows))
        # Drop the transient refcounts the shuffle sets held.
        arena.pseudonyms.release_batch(sets[sets >= 0])

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` shuffle rounds."""
        for _ in range(rounds):
            self.step()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def snapshot(self, online_only: bool = True) -> FlatSnapshot:
        """The current overlay as a :class:`FlatSnapshot`.

        Trusted edges with both ends included plus unexpired pseudonym
        links resolved through the arena's owner column — the batch
        analogue of :meth:`Overlay.snapshot_fast`.
        """
        arena = self.arena
        num_nodes = arena.num_nodes
        now = float(self.round)
        if online_only:
            ids = self.churn.online_rows()
        else:
            ids = np.arange(num_nodes, dtype=np.int64)
        pos = np.full(num_nodes, -1, dtype=np.int64)
        pos[ids] = np.arange(len(ids), dtype=np.int64)
        trust_a = pos[self._trust_lo]
        trust_b = pos[self._trust_hi]
        trust_keep = (trust_a >= 0) & (trust_b >= 0)
        link_ids = arena.link_ids[:num_nodes]
        live = (
            np.arange(arena.link_cols)[None, :]
            < arena.link_len[:num_nodes][:, None]
        )
        holder = np.broadcast_to(
            np.arange(num_nodes, dtype=np.int64)[:, None], link_ids.shape
        )[live]
        pids = link_ids[live]
        table = arena.pseudonyms
        owner = table.owners[pids]
        alive = table.expires_at[pids] > now
        a = pos[holder]
        b = pos[np.maximum(owner, 0)]
        keep = alive & (owner >= 0) & (owner != holder) & (a >= 0) & (b >= 0)
        return FlatSnapshot.from_edge_positions(
            ids,
            np.concatenate((trust_a[trust_keep], a[keep])),
            np.concatenate((trust_b[trust_keep], b[keep])),
        )

    def analysis(self, online_only: bool = True) -> SnapshotAnalysis:
        """Metric kernels over the current snapshot."""
        return SnapshotAnalysis(self.snapshot(online_only=online_only))

    def mean_out_degree(self) -> float:
        """Mean overlay degree over online nodes (trusted + live links)."""
        online = self.churn.online
        if not online.any():
            return 0.0
        arena = self.arena
        degrees = self._trusted_deg + arena.link_len[: arena.num_nodes]
        return float(degrees[online].mean())

    def memory_bytes(self) -> int:
        """Deterministic storage accounting for the whole engine."""
        total = self.arena.memory_bytes()
        total += self.own_ids.nbytes
        total += self._trust_lo.nbytes + self._trust_hi.nbytes
        total += self._trusted_deg.nbytes + self.churn.online.nbytes
        return total

    def state_digest(self) -> str:
        """SHA-256 over the protocol state (determinism evidence).

        Hashes the online mask, every node's own pseudonym value, and
        the per-row cache/link/slot occupancy and stored values — two
        runs with the same config produce the same digest.
        """
        arena = self.arena
        num_nodes = arena.num_nodes
        table = arena.pseudonyms
        own = self.own_ids
        own_values = np.where(
            own >= 0, table.values[np.maximum(own, 0)], -1
        )
        digest = hashlib.sha256()
        digest.update(np.int64(self.round).tobytes())
        digest.update(np.packbits(self.churn.online).tobytes())
        digest.update(own_values.tobytes())
        for ids, lens in (
            (arena.cache_ids[:num_nodes], arena.cache_len[:num_nodes]),
            (arena.link_ids[:num_nodes], arena.link_len[:num_nodes]),
        ):
            live = np.arange(ids.shape[1])[None, :] < lens[:, None]
            digest.update(lens.tobytes())
            digest.update(table.values[ids[live]].tobytes())
        slot_ids = arena.slot_ids[:num_nodes]
        occupied = slot_ids >= 0
        digest.update(np.packbits(occupied).tobytes())
        digest.update(table.values[slot_ids[occupied]].tobytes())
        return digest.hexdigest()

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current online count."""
        merged = dict(self.counters)
        merged["online_nodes"] = self.churn.online_count()
        merged["round"] = self.round
        return merged
