"""Round-based batch overlay engine for million-node studies.

The event-driven :class:`~repro.core.protocol.Overlay` simulates every
message with per-node method calls — exact, but bounded to ~10⁴ nodes.
:class:`BatchOverlay` runs the same protocol round-synchronously over
the columnar node plane (:mod:`repro.core.arena`): one shuffle period
per step, with churn transitions, pseudonym expiry, minting, partner
selection, shuffle-set construction, and set absorption each evaluated
for the *whole population* in a handful of numpy passes over the
arena's id arrays.  The per-entry semantics — sampler replacement,
cache replacement, link derivation — are the arena batch kernels,
which the ``node_plane`` benchmark pins differentially against the
legacy per-node classes.

Model discretizations (this engine is a scaling companion, not a
byte-identical replica of the event-driven simulator):

* Time advances in whole shuffle periods; churn follows
  :class:`~repro.churn.batch.BatchChurnModel` (the same exponential
  model, discretized per round).
* Each participant builds one shuffle set per round and answers every
  exchange with it.  A node receiving several sets absorbs them in
  deterministic *waves* — the j-th received set of every destination
  is folded in one batch op.
* Cache eviction drops the oldest entries (the CYCLON rule without the
  just-sent preference).
* Offline nodes keep their state; expired material is dropped eagerly
  rather than lazily on rejoin (the post-rejoin state is identical).

Sharding
--------

The population can be partitioned into ``num_shards`` contiguous node
ranges, each advanced by its own :class:`ShardEngine` (private arena,
private RNG streams spawned per shard).  A round is then three phases
in lockstep — a conservative synchronization window of exactly one
shuffle period, the minimum cross-shard message latency:

1. ``begin_round``: churn, expiry, minting, partner selection; emits
   per-destination-shard :class:`PairBatch` notifications.
2. ``build_sets``: every participant (initiator or partner) builds its
   shuffle set; emits :class:`SetBatch` payloads carrying the set
   *columns* (values / expiries / owners) toward remote exchange peers.
3. ``absorb``: deliveries are assembled in a canonical order
   (requests sorted by initiator id, then responses sorted by
   initiator id — exactly the serial engine's delivery order), remote
   pseudonyms are interned into the local table by value, and the wave
   fold runs unchanged.

The shard grid is *semantic*: digests are a function of
``(config, num_shards)`` and nothing else, so the same grid run
serially in one process or spread over N worker processes
(:class:`~repro.parallel.shard.ShardedOverlay`) is byte-identical.
``num_shards=1`` reproduces the historical single-shard draw sequence
exactly.

Everything is deterministic in ``config.seed``: the trust graph, the
churn, the minted values, and every sampling draw come from named
:class:`~repro.rng.RandomStreams` substreams.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

import numpy as np

from ..config import SystemConfig
from ..churn.batch import ShardedChurn
from ..errors import GraphError, ProtocolError
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis
from ..rng import PSEUDONYM_BITS, RandomStreams
from .arena import NodeArena, PseudonymArena

__all__ = [
    "BatchOverlay",
    "PairBatch",
    "SetBatch",
    "ShardEngine",
    "combine_shard_digests",
    "ring_lattice_csr",
    "shard_ranges",
]


def ring_lattice_csr(
    num_nodes: int, extra_edges_per_node: int, rng: np.random.Generator
) -> Tuple[np.ndarray, np.ndarray]:
    """A connected synthetic trust graph as a CSR adjacency.

    A ring (guaranteeing connectivity) plus ``extra_edges_per_node``
    random chords per node on average — degree-concentrated like the
    paper's social graphs are *not*, but structurally adequate for
    scale studies, and generated vectorized so a 10⁶-node graph takes
    milliseconds, not the minutes a networkx generator would.

    Returns ``(indptr, indices)`` with ascending neighbor lists.
    """
    if num_nodes < 3:
        raise GraphError(f"ring_lattice_csr needs >= 3 nodes, got {num_nodes}")
    if extra_edges_per_node < 0:
        raise GraphError("extra_edges_per_node must be non-negative")
    ring_u = np.arange(num_nodes, dtype=np.int64)
    ring_v = (ring_u + 1) % num_nodes
    chords = (num_nodes * extra_edges_per_node) // 2
    chord_u = rng.integers(0, num_nodes, size=chords, dtype=np.int64)
    chord_v = rng.integers(0, num_nodes, size=chords, dtype=np.int64)
    keep = chord_u != chord_v
    u = np.concatenate((ring_u, chord_u[keep]))
    v = np.concatenate((ring_v, chord_v[keep]))
    lo = np.minimum(u, v)
    hi = np.maximum(u, v)
    key = np.unique(lo * num_nodes + hi)
    lo = key // num_nodes
    hi = key % num_nodes
    degree = np.bincount(lo, minlength=num_nodes) + np.bincount(
        hi, minlength=num_nodes
    )
    indptr = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(degree, dtype=np.int64))
    )
    src = np.concatenate((lo, hi))
    dst = np.concatenate((hi, lo))
    order = np.lexsort((dst, src))
    return indptr, dst[order]


def shard_ranges(total: int, num_shards: int) -> np.ndarray:
    """Balanced contiguous partition boundaries for ``total`` items.

    Returns an int64 array of length ``num_shards + 1`` with
    ``bounds[0] == 0`` and ``bounds[-1] == total``; shard ``s`` owns
    ``[bounds[s], bounds[s+1])``.  The first ``total % num_shards``
    shards get one extra item; when ``num_shards > total`` the tail
    shards are empty.
    """
    if num_shards < 1:
        raise ProtocolError(f"num_shards must be >= 1, got {num_shards}")
    if total < 0:
        raise ProtocolError(f"total must be non-negative, got {total}")
    counts = np.full(num_shards, total // num_shards, dtype=np.int64)
    counts[: total % num_shards] += 1
    return np.concatenate((np.zeros(1, dtype=np.int64), np.cumsum(counts)))


def shard_of(bounds: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Shard index of every global node id under ``bounds``."""
    return np.searchsorted(bounds, nodes, side="right") - 1


def shard_stream(
    seed: int, shard_id: int, num_shards: int, name: str
) -> np.random.Generator:
    """The named private stream of one shard.

    With ``num_shards == 1`` this is the historical ``("batch", name)``
    substream, keeping the single-shard engine byte-identical to the
    pre-shard one; otherwise each shard spawns its own independent
    stream family via ``RandomStreams.spawn(("batch-shard", shard_id))``
    so the draw sequence depends only on the shard grid, never on which
    process hosts the shard.
    """
    streams = RandomStreams(seed)
    if num_shards == 1:
        return streams.substream("batch", name)
    return streams.spawn("batch-shard", shard_id).substream(name)


def slot_count_for(config: SystemConfig, trusted_indices: np.ndarray) -> int:
    """Uniform sampler size — from the *global* mean trusted degree."""
    mean_degree = int(len(trusted_indices) / config.num_nodes)
    return max(config.min_pseudonym_links, config.target_degree - mean_degree)


def combine_shard_digests(round_no: int, shard_digests: Sequence[bytes]) -> str:
    """Whole-system digest from per-shard digests in shard-id order."""
    digest = hashlib.sha256()
    digest.update(np.int64(round_no).tobytes())
    for part in shard_digests:
        digest.update(part)
    return digest.hexdigest()


class PairBatch(NamedTuple):
    """Hop-1 exchange notifications from one shard toward one shard.

    ``initiators`` and ``partners`` are parallel global-id arrays,
    ascending in initiator id; every partner lives in the receiving
    shard.
    """

    src_shard: int
    initiators: np.ndarray
    partners: np.ndarray


class SetBatch(NamedTuple):
    """Hop-2 shuffle-set payloads from one shard toward one shard.

    One row per exchange; ``kind`` is ``"request"`` (initiators' sets,
    delivered to the partners' shard) or ``"response"`` (partners'
    sets, delivered back to the initiators' shard).  The set travels as
    columns — ``values`` (int64, -1 padding), ``expires`` (float64,
    -inf padding), ``owners`` (int64, -1 padding) — because pseudonym
    *ids* are arena-local; the receiver re-interns by value.
    """

    src_shard: int
    kind: str
    initiators: np.ndarray
    partners: np.ndarray
    values: np.ndarray
    expires: np.ndarray
    owners: np.ndarray


class ShardEngine:
    """One contiguous node range of a (possibly sharded) overlay run.

    Owns a private :class:`~repro.core.arena.NodeArena` over its local
    rows, the shard's slice of the trust CSR (local ``indptr``, global
    neighbor ids), and the shard's private RNG streams.  The round is
    split into the three lockstep phases (:meth:`begin_round`,
    :meth:`build_sets`, :meth:`absorb`) so the same engine code runs
    under the serial in-process driver (:class:`BatchOverlay`) and the
    multiprocess one (:class:`~repro.parallel.shard.ShardedOverlay`) —
    equality between the two is structural, not tested-into-existence.

    ``global_online`` is the *whole population's* online mask (churn is
    replicated per process — every shard's model is one uniform draw
    per node per round); the engine keeps a view of its own slice and
    reads the full mask only for partner reachability.
    """

    __slots__ = (
        "config",
        "shard_id",
        "num_shards",
        "bounds",
        "lo",
        "hi",
        "size",
        "slot_count",
        "arena",
        "own_ids",
        "online",
        "counters",
        "trust_lo",
        "trust_hi",
        "trusted_deg",
        "_global_online",
        "_mint_rng",
        "_protocol_rng",
        "_sets",
        "_position",
        "_initiators",
        "_partners",
        "_in_pairs",
        "_lookup_values",
        "_lookup_pids",
        "_interned",
    )

    def __init__(
        self,
        config: SystemConfig,
        shard_id: int,
        bounds: np.ndarray,
        slot_count: int,
        trusted_indptr: np.ndarray,
        trusted_indices: np.ndarray,
        global_online: np.ndarray,
    ) -> None:
        self.config = config
        self.shard_id = shard_id
        self.num_shards = len(bounds) - 1
        self.bounds = bounds
        self.lo = int(bounds[shard_id])
        self.hi = int(bounds[shard_id + 1])
        self.size = self.hi - self.lo
        self.slot_count = slot_count
        self._global_online = global_online
        self.online = global_online[self.lo : self.hi]
        self._mint_rng = shard_stream(
            config.seed, shard_id, self.num_shards, "mint"
        )
        self._protocol_rng = shard_stream(
            config.seed, shard_id, self.num_shards, "protocol"
        )
        self.arena = NodeArena(
            PseudonymArena(chunk=max(4096, self.size)),
            node_chunk=max(1, self.size),
            track_insert_times=False,
        )
        self.arena.register_batch(self.size, slot_count, config.cache_size)
        # Immutable per-slot reference values (paper Section III-D2) —
        # drawn once, whole shard at a time.  Without them every slot
        # would share reference 0 and collapse onto one pseudonym.
        if slot_count and self.size:
            self.arena.slot_refs[: self.size, :slot_count] = shard_stream(
                config.seed, shard_id, self.num_shards, "slot-refs"
            ).integers(
                0,
                1 << PSEUDONYM_BITS,
                size=(self.size, slot_count),
                dtype=np.int64,
            )
        # The shard's CSR slice: local row offsets, GLOBAL neighbor ids.
        row_lo = int(trusted_indptr[self.lo])
        row_hi = int(trusted_indptr[self.hi])
        self.arena.set_trusted_csr(
            trusted_indptr[self.lo : self.hi + 1] - row_lo,
            trusted_indices[row_lo:row_hi],
        )
        self.trusted_deg = np.diff(self.arena.trusted_indptr)
        # Undirected trusted edge list (lo < hi, global) for snapshots.
        src = np.repeat(
            np.arange(self.lo, self.hi, dtype=np.int64), self.trusted_deg
        )
        forward = self.arena.trusted_indices > src
        self.trust_lo = src[forward]
        self.trust_hi = self.arena.trusted_indices[forward]
        self.own_ids = np.full(self.size, -1, dtype=np.int64)
        self.counters: Dict[str, int] = {
            "messages_sent": 0,
            "exchanges": 0,
            "sets_absorbed": 0,
            "pseudonyms_created": 0,
            "link_additions": 0,
            "link_removals": 0,
        }
        self._sets = np.zeros((0, 0), dtype=np.int32)
        self._position = np.zeros(0, dtype=np.int64)
        self._initiators = np.zeros(0, dtype=np.int64)
        self._partners = np.zeros(0, dtype=np.int64)
        self._in_pairs: List[PairBatch] = []
        self._lookup_values: Optional[np.ndarray] = None
        self._lookup_pids: Optional[np.ndarray] = None
        self._interned: List[np.ndarray] = []

    # ------------------------------------------------------------------
    # round phases
    # ------------------------------------------------------------------

    def begin_round(self, now: float) -> Dict[int, PairBatch]:
        """Phase 1: expiry, minting, partner selection.

        Returns exchange notifications keyed by the partner's shard
        (this shard included).  Churn has already been stepped by the
        driver — the global online mask is current.
        """
        self._in_pairs = []
        self._lookup_values = None
        self._lookup_pids = None
        self._interned = []
        if self.size == 0:
            self._initiators = np.zeros(0, dtype=np.int64)
            self._partners = np.zeros(0, dtype=np.int64)
            return {}
        arena = self.arena
        # Expiry purge: slots and caches, then links for every row whose
        # slots changed (the legacy _expire_state ordering — link
        # refresh happens before partner selection).
        slot_dirty, _ = arena.batch_expire(now)
        self._refresh_links(slot_dirty)
        self._mint_due(now)
        initiators, partners = self._pick_partners()
        self.counters["exchanges"] += len(initiators)
        # Responses are messages too (one per reachable request).
        self.counters["messages_sent"] += len(initiators)
        self._initiators = initiators
        self._partners = partners
        out: Dict[int, PairBatch] = {}
        dst_shards = shard_of(self.bounds, partners)
        for dst in np.unique(dst_shards):
            sel = dst_shards == dst
            out[int(dst)] = PairBatch(
                self.shard_id, initiators[sel], partners[sel]
            )
        return out

    def build_sets(
        self, pairs_in: List[PairBatch], now: float
    ) -> Dict[int, List[SetBatch]]:
        """Phase 2: build every participant's shuffle set.

        ``pairs_in`` holds the exchange notifications whose partner is
        local (this shard's own included); arrival order does not
        matter — batches are re-sorted by source shard.  Returns set
        payloads keyed by destination shard for every exchange with a
        remote peer.
        """
        self._in_pairs = sorted(pairs_in, key=lambda batch: batch.src_shard)
        if self.size == 0:
            return {}
        arena = self.arena
        partner_rows = [
            batch.partners - self.lo for batch in self._in_pairs
        ]
        participants = np.unique(
            np.concatenate(
                [self._initiators - self.lo] + partner_rows
            ).astype(np.int64)
        )
        if len(participants) == 0:
            self._sets = np.zeros(
                (0, self.config.shuffle_length), dtype=np.int32
            )
            self._position = np.full(self.size, -1, dtype=np.int64)
            return {}
        # One shuffle set per participant: own + l-1 distinct cache
        # picks.  The sets hold a refcount on every entry for the
        # duration of the round, so an entry evicted mid-wave stays
        # readable — in the real protocol the pseudonym travels inside
        # the message, independent of the sender's later cache state.
        length = self.config.shuffle_length
        keys = self._protocol_rng.random((len(participants), arena.cache_cols))
        picks = arena.sample_cache(participants, length - 1, keys)
        sets = np.concatenate(
            (self.own_ids[participants][:, None].astype(np.int32), picks),
            axis=1,
        )
        held = sets[sets >= 0]
        counts = np.bincount(held, minlength=arena.pseudonyms.capacity)
        touched = np.flatnonzero(counts)
        arena.pseudonyms.refcounts[touched] += counts[touched]
        position = np.full(self.size, -1, dtype=np.int64)
        position[participants] = np.arange(len(participants), dtype=np.int64)
        self._sets = sets
        self._position = position
        out: Dict[int, List[SetBatch]] = {}
        # Responses: local partners' sets travel back to each remote
        # initiator's shard.
        for batch in self._in_pairs:
            if batch.src_shard == self.shard_id:
                continue
            rows = batch.partners - self.lo
            values, expires, owners = self._set_columns(rows)
            out.setdefault(batch.src_shard, []).append(
                SetBatch(
                    self.shard_id,
                    "response",
                    batch.initiators,
                    batch.partners,
                    values,
                    expires,
                    owners,
                )
            )
        # Requests: local initiators' sets travel to each remote
        # partner's shard.
        dst_shards = shard_of(self.bounds, self._partners)
        for dst in np.unique(dst_shards):
            if dst == self.shard_id:
                continue
            sel = dst_shards == dst
            rows = self._initiators[sel] - self.lo
            values, expires, owners = self._set_columns(rows)
            out.setdefault(int(dst), []).append(
                SetBatch(
                    self.shard_id,
                    "request",
                    self._initiators[sel],
                    self._partners[sel],
                    values,
                    expires,
                    owners,
                )
            )
        return out

    def absorb(self, sets_in: List[SetBatch], now: float) -> None:
        """Phase 3: fold every delivery in the canonical serial order.

        Deliveries are assembled requests-first (sorted by initiator
        id) then responses (sorted by initiator id) — exactly the
        serial engine's ``concat((partners, initiators))`` delivery
        order — so the wave fold below is byte-identical regardless of
        how the work was sharded.  Remote payloads are interned into
        the local pseudonym table by value first.
        """
        if self.size == 0:
            return
        sets_in = sorted(sets_in, key=lambda batch: batch.src_shard)
        # Requests: deliveries to local partners.
        req_dst: List[np.ndarray] = []
        req_init: List[np.ndarray] = []
        req_cands: List[np.ndarray] = []
        for batch in self._in_pairs:
            if batch.src_shard != self.shard_id:
                continue
            req_dst.append(batch.partners - self.lo)
            req_init.append(batch.initiators)
            req_cands.append(
                self._sets[self._position[batch.initiators - self.lo]]
            )
        for batch in sets_in:
            if batch.kind != "request":
                continue
            req_dst.append(batch.partners - self.lo)
            req_init.append(batch.initiators)
            req_cands.append(
                self._intern(batch.values, batch.expires, batch.owners)
            )
        # Responses: deliveries back to local initiators.
        resp_init: List[np.ndarray] = []
        resp_cands: List[np.ndarray] = []
        local_partner = shard_of(self.bounds, self._partners) == self.shard_id
        resp_init.append(self._initiators[local_partner])
        resp_cands.append(
            self._sets[self._position[self._partners[local_partner] - self.lo]]
        )
        for batch in sets_in:
            if batch.kind != "response":
                continue
            resp_init.append(batch.initiators)
            resp_cands.append(
                self._intern(batch.values, batch.expires, batch.owners)
            )
        width = self.config.shuffle_length
        empty_rows = np.zeros(0, dtype=np.int64)
        empty_cands = np.zeros((0, width), dtype=np.int32)
        r_dst = np.concatenate(req_dst) if req_dst else empty_rows
        r_init = np.concatenate(req_init) if req_init else empty_rows
        r_cands = np.concatenate(req_cands) if req_cands else empty_cands
        r_order = np.argsort(r_init, kind="stable")
        p_init = np.concatenate(resp_init) if resp_init else empty_rows
        p_cands = np.concatenate(resp_cands) if resp_cands else empty_cands
        p_order = np.argsort(p_init, kind="stable")
        dst = np.concatenate((r_dst[r_order], p_init[p_order] - self.lo))
        cands = np.concatenate((r_cands[r_order], p_cands[p_order]))
        changed_rows = self._absorb_waves(dst, cands, now)
        self._refresh_links(np.flatnonzero(changed_rows))
        # Drop the transient refcounts the shuffle sets held, plus one
        # per interned remote instance.
        table = self.arena.pseudonyms
        if self._sets.size:
            table.release_batch(self._sets[self._sets >= 0])
        for instance in self._interned:
            table.release_batch(instance)
        self._interned = []
        self._sets = np.zeros((0, 0), dtype=np.int32)
        self._in_pairs = []

    # ------------------------------------------------------------------
    # phase internals
    # ------------------------------------------------------------------

    def _mint_due(self, now: float) -> None:
        """Mint fresh own pseudonyms for online nodes whose own expired."""
        table = self.arena.pseudonyms
        own = self.own_ids
        safe = np.where(own >= 0, own, 0)
        live = (own >= 0) & (table.expires_at[safe] > now)
        due = np.flatnonzero(self.online & ~live)
        if len(due) == 0:
            return
        stale = own[due]
        table.release_batch(stale[stale >= 0])
        values = self._mint_rng.integers(
            0, 1 << PSEUDONYM_BITS, size=len(due), dtype=np.int64
        )
        expires = np.full(len(due), now + self.config.pseudonym_lifetime)
        own[due] = table.mint_batch(values, expires, self.lo + due)
        self.counters["pseudonyms_created"] += len(due)

    def _refresh_links(self, rows: np.ndarray) -> None:
        if len(rows) == 0:
            return
        added, removed = self.arena.batch_links_from_slots(rows)
        self.counters["link_additions"] += int(added.sum())
        self.counters["link_removals"] += int(removed.sum())

    def _pick_partners(self) -> Tuple[np.ndarray, np.ndarray]:
        """One uniform link choice per online local node.

        Returns ``(initiators, partners)`` as *global* ids.  Each
        online node picks uniformly over trusted + pseudonym links (the
        paper's partner selection); pseudonym links resolve to their
        owner — a global id — through the arena's owner column.
        Exchanges whose partner is offline anywhere in the population
        are dropped requests (still counted as sent).
        """
        arena = self.arena
        size = self.size
        trusted_deg = self.trusted_deg
        link_len = arena.link_len[:size].astype(np.int64)
        total = trusted_deg + link_len
        active = self.online & (total > 0) & (self.own_ids >= 0)
        draws = self._protocol_rng.random(size)
        safe_total = np.maximum(total, 1)
        index = np.minimum(
            (draws * safe_total).astype(np.int64), safe_total - 1
        )
        partner = np.full(size, -1, dtype=np.int64)
        from_trusted = active & (index < trusted_deg)
        rows = np.flatnonzero(from_trusted)
        if len(rows):
            partner[rows] = arena.trusted_indices[
                arena.trusted_indptr[rows] + index[rows]
            ]
        from_links = active & ~from_trusted
        rows = np.flatnonzero(from_links)
        if len(rows):
            cols = index[rows] - trusted_deg[rows]
            pids = arena.link_ids[rows, cols]
            partner[rows] = arena.pseudonyms.owners[pids]
        sent = int(active.sum())
        self.counters["messages_sent"] += sent
        global_ids = np.arange(self.lo, self.hi, dtype=np.int64)
        reachable = (
            active
            & (partner >= 0)
            & self._global_online[np.maximum(partner, 0)]
            & (partner != global_ids)
        )
        rows = np.flatnonzero(reachable)
        return global_ids[rows], partner[rows]

    def _set_columns(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """A row batch of local shuffle sets as value/expiry/owner columns."""
        table = self.arena.pseudonyms
        pids = self._sets[self._position[rows]]
        valid = pids >= 0
        safe = np.where(valid, pids, 0)
        values = np.where(valid, table.values[safe], -1)
        expires = np.where(valid, table.expires_at[safe], -np.inf)
        owners = np.where(valid, table.owners[safe], -1)
        return values, expires, owners

    def _intern(
        self, values: np.ndarray, expires: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        """Canonicalize remote set columns into local pseudonym ids.

        Values already live in the local table (the destination's own
        pseudonym, cached copies) resolve to the existing id — the
        wave fold's dedup and own-filter compare ids, so remote copies
        must alias local ones.  Unknown values are minted once per
        distinct value.  Every instance holds one refcount until
        :meth:`absorb` releases it at end of round.
        """
        table = self.arena.pseudonyms
        flat_values = values.ravel()
        out = np.full(flat_values.shape, -1, dtype=np.int64)
        valid = flat_values >= 0
        if not valid.any():
            return out.reshape(values.shape).astype(np.int32)
        if self._lookup_values is None:
            live = np.flatnonzero(table.refcounts[: table.capacity] > 0)
            live_values = table.values[live]
            order = np.argsort(live_values, kind="stable")
            self._lookup_values = live_values[order]
            self._lookup_pids = live[order].astype(np.int64)
        vv = flat_values[valid]
        uvals, first, inverse = np.unique(
            vv, return_index=True, return_inverse=True
        )
        known = self._lookup_values
        upids = np.full(len(uvals), -1, dtype=np.int64)
        hit = np.zeros(len(uvals), dtype=bool)
        if len(known):
            pos = np.searchsorted(known, uvals)
            in_range = pos < len(known)
            hit[in_range] = known[pos[in_range]] == uvals[in_range]
            upids[hit] = self._lookup_pids[pos[hit]]
        new = ~hit
        if new.any():
            first_new = first[new]
            minted = table.mint_batch(
                uvals[new],
                expires.ravel()[valid][first_new],
                owners.ravel()[valid][first_new],
            )
            # mint_batch seats refcount 1; the instance counts below
            # are the real holders.
            table.refcounts[minted] -= 1
            upids[new] = minted
            merged_values = np.concatenate((known, uvals[new]))
            merged_pids = np.concatenate((self._lookup_pids, minted))
            order = np.argsort(merged_values, kind="stable")
            self._lookup_values = merged_values[order]
            self._lookup_pids = merged_pids[order]
        instance_pids = upids[inverse]
        counts = np.bincount(instance_pids, minlength=table.capacity)
        touched = np.flatnonzero(counts)
        table.refcounts[touched] += counts[touched]
        self._interned.append(instance_pids)
        out[valid] = instance_pids
        return out.reshape(values.shape).astype(np.int32)

    def _absorb_waves(
        self, dst: np.ndarray, cand_matrix: np.ndarray, now: float
    ) -> np.ndarray:
        """Fold every (dst ← set) delivery; returns dirty local rows.

        Deliveries are grouped into waves — the j-th received set of
        every destination — so each wave is one cache-merge plus one
        slot-offer batch op.  Expired entries and the destination's own
        pseudonym are masked out first (the legacy ``_absorb`` filter).
        """
        arena = self.arena
        table = arena.pseudonyms
        order = np.argsort(dst, kind="stable")
        sorted_dst = dst[order]
        count = len(sorted_dst)
        changed_rows = np.zeros(self.size, dtype=bool)
        if count == 0:
            return changed_rows
        new_group = np.empty(count, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_dst[1:] != sorted_dst[:-1]
        group_start = np.maximum.accumulate(
            np.where(new_group, np.arange(count), 0)
        )
        wave_index = np.arange(count) - group_start
        self.counters["sets_absorbed"] += count
        for wave in range(int(wave_index.max()) + 1):
            sel = wave_index == wave
            rows = sorted_dst[sel]
            cands = cand_matrix[order[sel]]
            valid = cands >= 0
            safe = np.where(valid, cands, 0)
            usable = (
                valid
                & (table.expires_at[safe] > now)
                & (cands != self.own_ids[rows][:, None])
            )
            cands = np.where(usable, cands, -1)
            arena.batch_cache_merge(rows, cands, now)
            changed = arena.batch_offer(rows, cands)
            changed_rows[rows[changed > 0]] = True
        return changed_rows

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def digest_bytes(self) -> bytes:
        """SHA-256 over this shard's protocol state (raw bytes).

        Hashes the shard's online slice, every local node's own
        pseudonym *value*, and the per-row cache/link/slot occupancy
        and stored values — id-free, so it is invariant to how arena
        ids were allocated.
        """
        arena = self.arena
        size = self.size
        table = arena.pseudonyms
        own = self.own_ids
        own_values = np.where(own >= 0, table.values[np.maximum(own, 0)], -1)
        digest = hashlib.sha256()
        digest.update(np.packbits(self.online).tobytes())
        digest.update(own_values.tobytes())
        for ids, lens in (
            (arena.cache_ids[:size], arena.cache_len[:size]),
            (arena.link_ids[:size], arena.link_len[:size]),
        ):
            live = np.arange(ids.shape[1])[None, :] < lens[:, None]
            digest.update(lens.tobytes())
            digest.update(table.values[ids[live]].tobytes())
        slot_ids = arena.slot_ids[:size]
        occupied = slot_ids >= 0
        digest.update(np.packbits(occupied).tobytes())
        digest.update(table.values[slot_ids[occupied]].tobytes())
        return digest.digest()

    def link_edges(
        self, now: float
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Live pseudonym-link edges as ``(holder, owner, alive)`` globals."""
        arena = self.arena
        size = self.size
        if size == 0:
            return (
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=np.int64),
                np.zeros(0, dtype=bool),
            )
        link_ids = arena.link_ids[:size]
        live = (
            np.arange(arena.link_cols)[None, :]
            < arena.link_len[:size][:, None]
        )
        holder = np.broadcast_to(
            np.arange(self.lo, self.hi, dtype=np.int64)[:, None],
            link_ids.shape,
        )[live]
        pids = link_ids[live]
        table = arena.pseudonyms
        return holder, table.owners[pids], table.expires_at[pids] > now

    def degree_mass(self) -> Tuple[int, int]:
        """``(sum of online nodes' overlay degrees, online count)``."""
        sel = self.online
        count = int(sel.sum())
        if count == 0:
            return 0, 0
        degrees = self.trusted_deg + self.arena.link_len[: self.size]
        return int(degrees[sel].sum()), count

    def memory_bytes(self) -> int:
        """Deterministic storage accounting for this shard."""
        total = self.arena.memory_bytes()
        total += self.own_ids.nbytes
        total += self.trust_lo.nbytes + self.trust_hi.nbytes
        total += self.trusted_deg.nbytes
        return total


class BatchOverlay:
    """A whole overlay system advanced one shuffle round at a time.

    Parameters
    ----------
    config:
        Protocol parameters; ``num_nodes`` may be millions.  The
        sampler size is uniform:
        ``S = max(min_pseudonym_links, target_degree - mean_degree)``.
    trusted_indptr, trusted_indices:
        The trust graph as a symmetric CSR adjacency
        (:func:`ring_lattice_csr`, or any CSR over ``0..n-1``).
    start_all_online:
        Seat every node online instead of the stationary draw.
    num_shards:
        Logical shard-grid size.  The digest is a function of
        ``(config, num_shards)``; ``1`` (the default) reproduces the
        historical single-shard draw sequence exactly, and any other
        grid is byte-identical to the same grid run across worker
        processes by :class:`~repro.parallel.shard.ShardedOverlay`.
    """

    __slots__ = (
        "config",
        "churn",
        "round",
        "slot_count",
        "num_shards",
        "bounds",
        "engines",
    )

    def __init__(
        self,
        config: SystemConfig,
        trusted_indptr: np.ndarray,
        trusted_indices: np.ndarray,
        start_all_online: bool = False,
        num_shards: int = 1,
    ) -> None:
        num_nodes = config.num_nodes
        if len(trusted_indptr) != num_nodes + 1:
            raise GraphError(
                f"trusted_indptr covers {len(trusted_indptr) - 1} nodes, "
                f"config.num_nodes is {num_nodes}"
            )
        if num_shards < 1:
            raise ProtocolError(f"num_shards must be >= 1, got {num_shards}")
        self.config = config
        self.num_shards = num_shards
        self.bounds = shard_ranges(num_nodes, num_shards)
        self.churn = ShardedChurn(
            self.bounds,
            config.availability,
            config.mean_offline_time,
            [
                shard_stream(config.seed, shard, num_shards, "churn")
                for shard in range(num_shards)
            ],
            start_all_online=start_all_online,
        )
        self.slot_count = slot_count_for(config, trusted_indices)
        indptr = np.ascontiguousarray(trusted_indptr, dtype=np.int64)
        indices = np.ascontiguousarray(trusted_indices, dtype=np.int64)
        self.engines = [
            ShardEngine(
                config,
                shard,
                self.bounds,
                self.slot_count,
                indptr,
                indices,
                self.churn.online,
            )
            for shard in range(num_shards)
        ]
        self.round = 0

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        extra_edges_per_node: int = 4,
        start_all_online: bool = False,
        num_shards: int = 1,
    ) -> "BatchOverlay":
        """Construct over a synthetic ring-lattice trust graph."""
        streams = RandomStreams(config.seed)
        indptr, indices = ring_lattice_csr(
            config.num_nodes,
            extra_edges_per_node,
            streams.substream("batch", "trust-graph"),
        )
        return cls(
            config,
            indptr,
            indices,
            start_all_online=start_all_online,
            num_shards=num_shards,
        )

    # ------------------------------------------------------------------
    # single-shard compatibility surface
    # ------------------------------------------------------------------

    def _single_engine(self, attribute: str) -> ShardEngine:
        if self.num_shards != 1:
            raise ProtocolError(
                f"BatchOverlay.{attribute} is single-shard only "
                f"(num_shards={self.num_shards}); use overlay.engines[s]"
            )
        return self.engines[0]

    @property
    def arena(self) -> NodeArena:
        """The node arena (single-shard runs; else use ``engines[s]``)."""
        return self._single_engine("arena").arena

    @property
    def own_ids(self) -> np.ndarray:
        """Own-pseudonym ids (single-shard runs; else ``engines[s]``)."""
        return self._single_engine("own_ids").own_ids

    @property
    def counters(self) -> Dict[str, int]:
        """Cumulative protocol counters summed over all shards."""
        merged: Dict[str, int] = dict(self.engines[0].counters)
        for engine in self.engines[1:]:
            for key, value in engine.counters.items():
                merged[key] += value
        return merged

    # ------------------------------------------------------------------
    # the round loop
    # ------------------------------------------------------------------

    def step(self) -> None:
        """Advance one shuffle round (all shards, in lockstep)."""
        self.round += 1
        now = float(self.round)
        self.churn.step()
        pairs_for: Dict[int, List[PairBatch]] = {
            shard: [] for shard in range(self.num_shards)
        }
        for engine in self.engines:
            for dst, batch in engine.begin_round(now).items():
                pairs_for[dst].append(batch)
        sets_for: Dict[int, List[SetBatch]] = {
            shard: [] for shard in range(self.num_shards)
        }
        for engine in self.engines:
            out = engine.build_sets(pairs_for[engine.shard_id], now)
            for dst, batches in out.items():
                sets_for[dst].extend(batches)
        for engine in self.engines:
            engine.absorb(sets_for[engine.shard_id], now)

    def run(self, rounds: int) -> None:
        """Advance ``rounds`` shuffle rounds."""
        for _ in range(rounds):
            self.step()

    # ------------------------------------------------------------------
    # observation
    # ------------------------------------------------------------------

    def snapshot(self, online_only: bool = True) -> FlatSnapshot:
        """The current overlay as a :class:`FlatSnapshot`.

        Trusted edges with both ends included plus unexpired pseudonym
        links resolved through the arenas' owner columns — the batch
        analogue of :meth:`Overlay.snapshot_fast`.  Per-shard edge
        lists concatenate in shard order, which is global row order.
        """
        num_nodes = self.config.num_nodes
        now = float(self.round)
        if online_only:
            ids = self.churn.online_rows()
        else:
            ids = np.arange(num_nodes, dtype=np.int64)
        pos = np.full(num_nodes, -1, dtype=np.int64)
        pos[ids] = np.arange(len(ids), dtype=np.int64)
        trust_a = pos[np.concatenate([e.trust_lo for e in self.engines])]
        trust_b = pos[np.concatenate([e.trust_hi for e in self.engines])]
        trust_keep = (trust_a >= 0) & (trust_b >= 0)
        edges = [engine.link_edges(now) for engine in self.engines]
        holder = np.concatenate([edge[0] for edge in edges])
        owner = np.concatenate([edge[1] for edge in edges])
        alive = np.concatenate([edge[2] for edge in edges])
        a = pos[holder]
        b = pos[np.maximum(owner, 0)]
        keep = alive & (owner >= 0) & (owner != holder) & (a >= 0) & (b >= 0)
        return FlatSnapshot.from_edge_positions(
            ids,
            np.concatenate((trust_a[trust_keep], a[keep])),
            np.concatenate((trust_b[trust_keep], b[keep])),
        )

    def channel_edges(
        self,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Dissemination-plane channel export hook.

        Returns ``(trusted_indptr, trusted_indices, holder, owner)``:
        the global trusted CSR plus every live pseudonym link as a
        resolved ``(holder, owner)`` pair — the arena-plane analogue of
        the object plane's channel semantics, where each live link
        yields an "out" channel holder→owner and a "reverse" channel
        owner→holder (see
        :meth:`repro.dissemination.batch.ChannelSnapshot.from_batch_overlay`).
        Self-links and links whose owner is unresolved are dropped,
        matching :func:`repro.dissemination.base.build_channel_lists`.
        """
        now = float(self.round)
        degrees = np.concatenate(
            [np.diff(engine.arena.trusted_indptr) for engine in self.engines]
        )
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(degrees, dtype=np.int64))
        )
        indices = np.concatenate(
            [engine.arena.trusted_indices for engine in self.engines]
        )
        edges = [engine.link_edges(now) for engine in self.engines]
        holder = np.concatenate([edge[0] for edge in edges])
        owner = np.concatenate([edge[1] for edge in edges])
        alive = np.concatenate([edge[2] for edge in edges])
        keep = alive & (owner >= 0) & (owner != holder)
        return indptr, indices, holder[keep], owner[keep]

    def analysis(self, online_only: bool = True) -> SnapshotAnalysis:
        """Metric kernels over the current snapshot."""
        return SnapshotAnalysis(self.snapshot(online_only=online_only))

    def mean_out_degree(self) -> float:
        """Mean overlay degree over online nodes (trusted + live links)."""
        total = 0
        count = 0
        for engine in self.engines:
            mass, online = engine.degree_mass()
            total += mass
            count += online
        if count == 0:
            return 0.0
        return total / count

    def memory_bytes(self) -> int:
        """Deterministic storage accounting for the whole engine."""
        total = sum(engine.memory_bytes() for engine in self.engines)
        total += self.churn.online.nbytes
        return total

    def state_digest(self) -> str:
        """SHA-256 over the protocol state (determinism evidence).

        Per-shard digests (online mask, own pseudonym values, per-row
        cache/link/slot occupancy and stored values) combined in
        shard-id order — a function of ``(config, num_shards)`` only,
        identical however many processes hosted the shards.
        """
        return combine_shard_digests(
            self.round, [engine.digest_bytes() for engine in self.engines]
        )

    def stats(self) -> Dict[str, int]:
        """Cumulative counters plus the current online count."""
        merged = self.counters
        merged["online_nodes"] = self.churn.online_count()
        merged["round"] = self.round
        return merged
