"""Struct-of-arrays node plane: columnar per-node protocol state.

Per-node Python objects (:class:`~repro.core.links.LinkSet`,
:class:`~repro.core.cache.PseudonymCache`,
:class:`~repro.core.slots.SamplerSlots`) cap practical overlay runs at
~10⁴ nodes: every pseudonym is a boxed dataclass, every cache a dict of
entry objects, every link table a dict keyed by value.  This module is
the same move PR 5 made for the traffic log — intern the heavy values
once, keep the hot state in preallocated id-indexed numpy arrays, and
hand consumers *lazy object views* so nothing above the storage layer
changes:

* :class:`PseudonymArena` — the interning table.  Each distinct
  pseudonym is assigned a dense ``uint32``-sized id; its value, expiry,
  and (for batch-minted pseudonyms) owner live in parallel columns.
  Ids are reference-counted by their holders (cache rows, sampler
  slots, link rows) and returned to a free list when the last holder
  drops them, so long churned runs reuse ids instead of growing the
  table without bound.  Storage grows in fixed chunks.
* :class:`NodeArena` — per-node rows over interned ids: link sets,
  cache entries (insertion-ordered), and sampler-slot state
  (references, distances, expiries, occupants) as 2-D arrays with one
  row per node.  It also carries the vectorized **batch kernels**
  (:meth:`~NodeArena.batch_offer`, :meth:`~NodeArena.batch_cache_merge`,
  :meth:`~NodeArena.batch_links_from_slots`,
  :meth:`~NodeArena.batch_expire`) that fold whole populations of
  shuffle exchanges, slot updates, and churn transitions in a handful
  of numpy passes — the engine behind
  :class:`repro.core.batch.BatchOverlay` and the ``million_node_churn``
  benchmark.
* :class:`ArenaLinkSet` / :class:`ArenaCache` / :class:`ArenaSlots` —
  drop-in views with the exact public API (and the exact semantics,
  rng draw order included) of the legacy per-node classes, storing
  their state in arena rows.  :class:`~repro.core.node.OverlayNode`
  uses them whenever an arena is supplied; the event-driven protocol,
  metrics, attacks, and privlink layers run unmodified and
  byte-identical (pinned by the golden-hash and differential tests).

Backend selection mirrors ``repro.graphs.fastgraph``: the process-wide
override (:func:`set_node_plane`), else the ``REPRO_NODE_PLANE``
environment variable, else ``"arena"``.  The per-object classes remain
the executable reference implementation (``"objects"``).

See ``docs/node_plane.md`` for the layout, the interning rules, and the
lazy-view compatibility contract.
"""

from __future__ import annotations

import math
import os
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ProtocolError
from ..privlink import Address
from ..rng import PSEUDONYM_BITS, random_bits
from .links import LinkTarget
from .pseudonym import Pseudonym

__all__ = [
    "NODE_PLANES",
    "get_node_plane",
    "set_node_plane",
    "resolve_node_plane",
    "PseudonymArena",
    "NodeArena",
    "ArenaLinkSet",
    "ArenaCache",
    "ArenaSlots",
]

#: Valid node-plane names: the columnar arena and the per-object reference.
NODE_PLANES = ("arena", "objects")

_PLANE_ENV = "REPRO_NODE_PLANE"
_plane_override: Optional[str] = None

#: Sentinel distance of an empty sampler slot (mirrors repro.core.slots).
_EMPTY_DISTANCE = np.iinfo(np.int64).max

#: Soft cap on elements per temporary in the batch kernels; row batches
#: are chunked so the (rows x candidates x slots) scratch stays bounded.
_KERNEL_CHUNK_ELEMS = 8_000_000


def _validate_plane(name: str) -> str:
    if name not in NODE_PLANES:
        raise ProtocolError(
            f"unknown node plane {name!r}; expected one of {NODE_PLANES}"
        )
    return name


def get_node_plane() -> str:
    """The active node-state backend: ``"arena"`` or ``"objects"``.

    Resolution order: :func:`set_node_plane` override, then the
    ``REPRO_NODE_PLANE`` environment variable, then ``"arena"``.  Both
    planes produce byte-identical protocol runs; the knob exists for
    differential testing and as an escape hatch.
    """
    if _plane_override is not None:
        return _plane_override
    return _validate_plane(os.environ.get(_PLANE_ENV, "arena"))


def set_node_plane(name: Optional[str]) -> None:
    """Override the node plane process-wide (``None`` restores defaults)."""
    global _plane_override
    _plane_override = None if name is None else _validate_plane(name)


def resolve_node_plane(override: Optional[str] = None) -> str:
    """A call-site plane choice: explicit ``override`` or the default."""
    if override is not None:
        return _validate_plane(override)
    return get_node_plane()


def _grown(array: np.ndarray, rows: int, cols: int, fill) -> np.ndarray:
    """Copy ``array`` into a fresh ``(rows, cols)`` array padded with fill."""
    grown = np.full((rows, cols), fill, dtype=array.dtype)
    if array.size:
        grown[: array.shape[0], : array.shape[1]] = array
    return grown


class PseudonymArena:
    """The interning table: one dense id per distinct pseudonym.

    Columns are preallocated in ``chunk``-sized blocks.  Every id is
    reference-counted by its holders (one count per cache row, sampler
    slot, link row, or batch-engine ``own`` slot that stores it); when
    the count drops to zero the id is pushed onto the free list and
    reused by a later :meth:`intern` or :meth:`mint_batch`, which is
    what keeps long churned runs from growing the table without bound.

    Interned *objects* (the view plane) keep their :class:`Pseudonym`
    in :attr:`objects` so views can hand the exact instance back.
    Batch-minted ids (:meth:`mint_batch`) never materialize objects;
    :meth:`view` builds one lazily if somebody asks.
    """

    __slots__ = (
        "chunk",
        "values",
        "expires_at",
        "owners",
        "refcounts",
        "objects",
        "grows",
        "total_interned",
        "_ids",
        "_free",
    )

    def __init__(self, chunk: int = 4096) -> None:
        if chunk < 1:
            raise ProtocolError(f"chunk must be >= 1, got {chunk}")
        self.chunk = chunk
        self.values = np.zeros(chunk, dtype=np.int64)
        self.expires_at = np.full(chunk, -math.inf, dtype=np.float64)
        #: Owner node id of batch-minted pseudonyms (-1 for view-interned
        #: ones; the view plane resolves owners through the overlay's
        #: omniscient registry instead).
        self.owners = np.full(chunk, -1, dtype=np.int64)
        self.refcounts = np.zeros(chunk, dtype=np.int64)
        self.objects: List[Optional[Pseudonym]] = [None] * chunk
        #: Number of chunk growths (introspection for tests).
        self.grows = 0
        #: Total ids ever handed out (reuse makes this exceed capacity).
        self.total_interned = 0
        self._ids: Dict[Pseudonym, int] = {}
        # Free ids, popped from the tail: keep the list descending so
        # fresh tables allocate 0, 1, 2, ...
        self._free: List[int] = list(range(chunk - 1, -1, -1))

    @property
    def capacity(self) -> int:
        """Allocated id slots (grows by :attr:`chunk`)."""
        return len(self.values)

    @property
    def live(self) -> int:
        """Ids currently held by at least one holder."""
        return len(self.values) - len(self._free)

    def _grow(self) -> None:
        old = self.capacity
        new = old + self.chunk
        for name in ("values", "refcounts", "owners"):
            grown = np.zeros(new, dtype=getattr(self, name).dtype)
            grown[:old] = getattr(self, name)
            if name == "owners":
                grown[old:] = -1
            setattr(self, name, grown)
        expires = np.full(new, -math.inf, dtype=np.float64)
        expires[:old] = self.expires_at
        self.expires_at = expires
        self.objects.extend([None] * self.chunk)
        self._free.extend(range(new - 1, old - 1, -1))
        self.grows += 1

    def _allocate(self) -> int:
        if not self._free:
            self._grow()
        self.total_interned += 1
        return self._free.pop()

    def intern(self, pseudonym: Pseudonym) -> int:
        """Intern one pseudonym object; the caller holds one reference.

        Equal pseudonyms share an id (so id equality is object
        equality); every additional holder bumps the refcount.
        """
        pid = self._ids.get(pseudonym)
        if pid is not None:
            self.refcounts[pid] += 1
            return pid
        pid = self._allocate()
        self.values[pid] = pseudonym.value
        self.expires_at[pid] = pseudonym.expires_at
        self.owners[pid] = -1
        self.refcounts[pid] = 1
        self.objects[pid] = pseudonym
        self._ids[pseudonym] = pid
        return pid

    def acquire(self, pid: int) -> int:
        """Add one holder to an already-interned id."""
        self.refcounts[pid] += 1
        return pid

    def release(self, pid: int) -> None:
        """Drop one holder; frees the id when the last holder leaves."""
        count = int(self.refcounts[pid]) - 1
        self.refcounts[pid] = count
        if count > 0:
            return
        obj = self.objects[pid]
        if obj is not None:
            del self._ids[obj]
            self.objects[pid] = None
        self.expires_at[pid] = -math.inf
        self.owners[pid] = -1
        self._free.append(pid)

    def release_batch(self, pids: np.ndarray) -> None:
        """Vectorized :meth:`release` for a flat id array (repeats ok)."""
        if len(pids) == 0:
            return
        counts = np.bincount(pids, minlength=self.capacity)
        touched = np.flatnonzero(counts)
        self.refcounts[touched] -= counts[touched]
        freed = touched[self.refcounts[touched] <= 0]
        if len(freed) == 0:
            return
        for pid in freed.tolist():
            obj = self.objects[pid]
            if obj is not None:
                del self._ids[obj]
                self.objects[pid] = None
        self.expires_at[freed] = -math.inf
        self.owners[freed] = -1
        self._free.extend(freed.tolist())

    def mint_batch(
        self, values: np.ndarray, expires: np.ndarray, owners: np.ndarray
    ) -> np.ndarray:
        """Allocate ids for a batch of freshly minted pseudonyms.

        No objects are materialized; each id starts with one holder
        (the minting node's ``own`` slot).  Returns an int64 id array.
        """
        count = len(values)
        while len(self._free) < count:
            self._grow()
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        pids = np.array(
            [self._free.pop() for _ in range(count)], dtype=np.int64
        )
        self.total_interned += count
        self.values[pids] = values
        self.expires_at[pids] = expires
        self.owners[pids] = owners
        self.refcounts[pids] = 1
        return pids

    def matches(self, pid: int, pseudonym: Pseudonym) -> bool:
        """Whether id ``pid`` denotes a pseudonym equal to ``pseudonym``."""
        obj = self.objects[pid]
        if obj is not None:
            return obj == pseudonym
        return (
            int(self.values[pid]) == pseudonym.value
            and float(self.expires_at[pid]) == pseudonym.expires_at
        )

    def view(self, pid: int) -> Pseudonym:
        """The pseudonym behind ``pid`` as an object (lazily built).

        Batch-minted pseudonyms synthesize an ``arena``-kind address
        from their id; view-interned ones return the original instance.
        """
        obj = self.objects[pid]
        if obj is None:
            obj = Pseudonym(
                value=int(self.values[pid]),
                address=Address(token=int(pid), kind="arena"),
                expires_at=float(self.expires_at[pid]),
            )
            self.objects[pid] = obj
            self._ids[obj] = pid
        return obj


class NodeArena:
    """Columnar per-node protocol state plus the vectorized batch kernels.

    One row per node; rows are preallocated in ``node_chunk`` blocks
    and columns widen on demand.  The row layout:

    * sampler slots — ``slot_refs`` (immutable reference values),
      ``slot_dist`` (current |value - R|), ``slot_exp`` (occupant
      expiry), ``slot_ids`` (interned occupant, -1 empty), per-row
      ``slot_n`` and ``slot_soonest`` (expiry lower bound);
    * pseudonym cache — ``cache_ids`` insertion-ordered (oldest first),
      optional ``cache_ins`` insertion times (view plane only), per-row
      ``cache_len`` / ``cache_cap`` / ``cache_min_exp``;
    * pseudonym links — ``link_ids`` in link-table order, ``link_len``;
    * trusted links — an optional static CSR
      (:meth:`set_trusted_csr`, batch plane; the view plane keeps the
      mutable trusted sets object-side).

    The batch kernels replicate the per-node classes' semantics exactly
    over whole row batches — ``node_plane`` in the bench suite pins
    them differentially against the legacy objects.
    """

    __slots__ = (
        "pseudonyms",
        "node_chunk",
        "num_nodes",
        "track_insert_times",
        "slot_refs",
        "slot_dist",
        "slot_exp",
        "slot_ids",
        "slot_n",
        "slot_soonest",
        "cache_ids",
        "cache_ins",
        "cache_len",
        "cache_cap",
        "cache_min_exp",
        "link_ids",
        "link_len",
        "trusted_indptr",
        "trusted_indices",
    )

    def __init__(
        self,
        pseudonyms: Optional[PseudonymArena] = None,
        node_chunk: int = 1024,
        track_insert_times: bool = True,
    ) -> None:
        if node_chunk < 1:
            raise ProtocolError(f"node_chunk must be >= 1, got {node_chunk}")
        self.pseudonyms = pseudonyms if pseudonyms is not None else PseudonymArena()
        self.node_chunk = node_chunk
        self.num_nodes = 0
        self.track_insert_times = track_insert_times
        self.slot_refs = np.zeros((0, 0), dtype=np.int64)
        self.slot_dist = np.zeros((0, 0), dtype=np.int64)
        self.slot_exp = np.zeros((0, 0), dtype=np.float64)
        self.slot_ids = np.zeros((0, 0), dtype=np.int32)
        self.slot_n = np.zeros(0, dtype=np.int32)
        self.slot_soonest = np.zeros(0, dtype=np.float64)
        self.cache_ids = np.zeros((0, 0), dtype=np.int32)
        self.cache_ins: Optional[np.ndarray] = (
            np.zeros((0, 0), dtype=np.float64) if track_insert_times else None
        )
        self.cache_len = np.zeros(0, dtype=np.int32)
        self.cache_cap = np.zeros(0, dtype=np.int32)
        self.cache_min_exp = np.zeros(0, dtype=np.float64)
        self.link_ids = np.zeros((0, 0), dtype=np.int32)
        self.link_len = np.zeros(0, dtype=np.int32)
        self.trusted_indptr: Optional[np.ndarray] = None
        self.trusted_indices: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    # row/column management
    # ------------------------------------------------------------------

    @property
    def row_capacity(self) -> int:
        """Allocated rows (>= registered nodes)."""
        return len(self.slot_n)

    @property
    def slot_cols(self) -> int:
        """Current sampler-slot column width."""
        return self.slot_refs.shape[1]

    @property
    def cache_cols(self) -> int:
        """Current cache column width."""
        return self.cache_ids.shape[1]

    @property
    def link_cols(self) -> int:
        """Current link column width."""
        return self.link_ids.shape[1]

    def _ensure_rows(self, rows: int) -> None:
        have = self.row_capacity
        if rows <= have:
            return
        target = have
        while target < rows:
            target += self.node_chunk
        self.slot_refs = _grown(self.slot_refs, target, self.slot_cols, 0)
        self.slot_dist = _grown(
            self.slot_dist, target, self.slot_cols, _EMPTY_DISTANCE
        )
        self.slot_exp = _grown(self.slot_exp, target, self.slot_cols, -math.inf)
        self.slot_ids = _grown(self.slot_ids, target, self.slot_cols, -1)
        self.cache_ids = _grown(self.cache_ids, target, self.cache_cols, -1)
        if self.cache_ins is not None:
            self.cache_ins = _grown(self.cache_ins, target, self.cache_cols, 0.0)
        self.link_ids = _grown(self.link_ids, target, self.link_cols, -1)
        for name, fill in (
            ("slot_n", 0),
            ("slot_soonest", math.inf),
            ("cache_len", 0),
            ("cache_cap", 0),
            ("cache_min_exp", math.inf),
            ("link_len", 0),
        ):
            old = getattr(self, name)
            grown = np.full(target, fill, dtype=old.dtype)
            grown[: len(old)] = old
            setattr(self, name, grown)

    def _ensure_slot_cols(self, cols: int) -> None:
        if cols <= self.slot_cols:
            return
        rows = self.row_capacity
        self.slot_refs = _grown(self.slot_refs, rows, cols, 0)
        self.slot_dist = _grown(self.slot_dist, rows, cols, _EMPTY_DISTANCE)
        self.slot_exp = _grown(self.slot_exp, rows, cols, -math.inf)
        self.slot_ids = _grown(self.slot_ids, rows, cols, -1)
        self._ensure_link_cols(cols)

    def _ensure_cache_cols(self, cols: int) -> None:
        if cols <= self.cache_cols:
            return
        rows = self.row_capacity
        self.cache_ids = _grown(self.cache_ids, rows, cols, -1)
        if self.cache_ins is not None:
            self.cache_ins = _grown(self.cache_ins, rows, cols, 0.0)

    def _ensure_link_cols(self, cols: int) -> None:
        if cols <= self.link_cols:
            return
        self.link_ids = _grown(self.link_ids, self.row_capacity, cols, -1)

    def register_node(
        self, node_id: int, slot_count: int, cache_capacity: int
    ) -> None:
        """Claim row ``node_id`` (rows are node ids; register in order)."""
        if node_id != self.num_nodes:
            raise ProtocolError(
                f"nodes must register sequentially: expected {self.num_nodes}, "
                f"got {node_id}"
            )
        self._ensure_rows(node_id + 1)
        self._ensure_slot_cols(slot_count)
        self._ensure_cache_cols(cache_capacity)
        self.slot_n[node_id] = slot_count
        self.slot_soonest[node_id] = math.inf
        self.cache_cap[node_id] = cache_capacity
        self.cache_min_exp[node_id] = math.inf
        self.num_nodes = node_id + 1

    def register_batch(
        self, num_nodes: int, slot_count: int, cache_capacity: int
    ) -> None:
        """Claim rows ``0..num_nodes-1`` at once (fresh arenas only)."""
        if self.num_nodes != 0:
            raise ProtocolError("register_batch requires a fresh arena")
        self._ensure_rows(num_nodes)
        self._ensure_slot_cols(slot_count)
        self._ensure_cache_cols(cache_capacity)
        self.slot_n[:num_nodes] = slot_count
        self.slot_soonest[:num_nodes] = math.inf
        self.cache_cap[:num_nodes] = cache_capacity
        self.cache_min_exp[:num_nodes] = math.inf
        self.num_nodes = num_nodes

    def set_trusted_csr(self, indptr: np.ndarray, indices: np.ndarray) -> None:
        """Install the static trusted adjacency (batch plane)."""
        if len(indptr) != self.num_nodes + 1:
            raise ProtocolError(
                f"indptr covers {len(indptr) - 1} nodes, arena has "
                f"{self.num_nodes}"
            )
        self.trusted_indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self.trusted_indices = np.ascontiguousarray(indices, dtype=np.int64)

    def trusted_degrees(self) -> np.ndarray:
        """Per-node trusted degree from the CSR (zeros when unset)."""
        if self.trusted_indptr is None:
            return np.zeros(self.num_nodes, dtype=np.int64)
        return np.diff(self.trusted_indptr)

    def memory_bytes(self) -> int:
        """Deterministic storage accounting of every arena column."""
        total = 0
        for name in (
            "slot_refs",
            "slot_dist",
            "slot_exp",
            "slot_ids",
            "slot_n",
            "slot_soonest",
            "cache_ids",
            "cache_len",
            "cache_cap",
            "cache_min_exp",
            "link_ids",
            "link_len",
        ):
            total += getattr(self, name).nbytes
        if self.cache_ins is not None:
            total += self.cache_ins.nbytes
        if self.trusted_indptr is not None:
            total += self.trusted_indptr.nbytes + self.trusted_indices.nbytes
        ps = self.pseudonyms
        total += ps.values.nbytes + ps.expires_at.nbytes
        total += ps.owners.nbytes + ps.refcounts.nbytes
        return total

    # ------------------------------------------------------------------
    # batch kernels (semantics identical to the per-node classes; the
    # node_plane benchmark pins them differentially)
    # ------------------------------------------------------------------

    def _row_chunks(self, rows: np.ndarray, per_row: int) -> Iterable[np.ndarray]:
        """Split a row batch so scratch arrays stay under the soft cap."""
        if len(rows) == 0:
            return
        step = max(1, _KERNEL_CHUNK_ELEMS // max(1, per_row))
        for start in range(0, len(rows), step):
            yield rows[start : start + step]

    def batch_offer(self, rows: np.ndarray, cand_ids: np.ndarray) -> np.ndarray:
        """Fold per-row candidate batches into the rows' sampler slots.

        ``cand_ids[i]`` holds interned candidate ids for ``rows[i]``,
        padded with -1.  Exactly
        :meth:`repro.core.slots.SamplerSlots.offer_batch` per row: each
        slot takes the candidate minimizing |value - R| (ties to the
        latest expiry, then to the earliest batch position), replacing
        the occupant when closer, or equally close but later-expiring.
        Returns the per-row changed-slot counts.
        """
        changed_counts = np.zeros(len(rows), dtype=np.int64)
        if self.slot_cols == 0 or cand_ids.shape[1] == 0:
            return changed_counts
        ps = self.pseudonyms
        width = cand_ids.shape[1] * self.slot_cols
        offset = 0
        for chunk in self._row_chunks(rows, width):
            n = len(chunk)
            cands = cand_ids[offset : offset + n]
            valid = cands >= 0
            safe = np.where(valid, cands, 0)
            values = ps.values[safe]
            expiries = np.where(valid, ps.expires_at[safe], -math.inf)
            refs = self.slot_refs[chunk]
            dist = self.slot_dist[chunk]
            sexp = self.slot_exp[chunk]
            sids = self.slot_ids[chunk]
            slot_live = (
                np.arange(self.slot_cols)[None, :] < self.slot_n[chunk][:, None]
            )
            matrix = np.abs(values[:, :, None] - refs[:, None, :])
            matrix = np.where(valid[:, :, None], matrix, _EMPTY_DISTANCE)
            min_d = matrix.min(axis=1)
            is_minimal = (matrix == min_d[:, None, :]) & valid[:, :, None]
            masked_exp = np.where(is_minimal, expiries[:, :, None], -math.inf)
            best_rows = masked_exp.argmax(axis=1)
            best_exp = np.take_along_axis(
                masked_exp, best_rows[:, None, :], axis=1
            )[:, 0, :]
            closer = min_d < dist
            tie_later = (min_d == dist) & (best_exp > sexp)
            replace = (closer | tie_later) & slot_live & (min_d < _EMPTY_DISTANCE)
            new_ids = np.take_along_axis(safe, best_rows, axis=1).astype(np.int32)
            changed = replace & (new_ids != sids)
            if changed.any():
                self.pseudonyms.release_batch(sids[changed & (sids >= 0)])
                counts = np.bincount(
                    new_ids[changed], minlength=ps.capacity
                )
                touched = np.flatnonzero(counts)
                ps.refcounts[touched] += counts[touched]
                out_ids = np.where(changed, new_ids, sids)
                out_dist = np.where(changed, min_d, dist)
                out_exp = np.where(changed, best_exp, sexp)
                self.slot_ids[chunk] = out_ids
                self.slot_dist[chunk] = out_dist
                self.slot_exp[chunk] = out_exp
                row_changed = changed.any(axis=1)
                new_soonest = np.where(
                    changed, out_exp, math.inf
                ).min(axis=1)
                self.slot_soonest[chunk] = np.where(
                    row_changed,
                    np.minimum(self.slot_soonest[chunk], new_soonest),
                    self.slot_soonest[chunk],
                )
                changed_counts[offset : offset + n] = changed.sum(axis=1)
            offset += n
        return changed_counts

    def batch_cache_merge(
        self,
        rows: np.ndarray,
        cand_ids: np.ndarray,
        now: float,
        own_ids: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Merge per-row received batches into the rows' caches.

        Exactly :meth:`repro.core.cache.PseudonymCache.merge` with
        ``just_sent=None`` per row, assuming honestly minted (unique
        value) pseudonyms: expired, own, duplicate, and already-cached
        candidates are skipped; the rest append in batch order,
        evicting from the oldest end when the row is full.  Returns the
        per-row inserted counts.  Call :meth:`batch_expire` first to
        mirror the legacy merge's leading ``remove_expired``.
        """
        inserted = np.zeros(len(rows), dtype=np.int64)
        if cand_ids.shape[1] == 0 or len(rows) == 0:
            return inserted
        ps = self.pseudonyms
        k = cand_ids.shape[1]
        cols = self.cache_cols
        width = k * (cols + k)
        offset = 0
        for chunk in self._row_chunks(rows, width):
            n = len(chunk)
            cands = cand_ids[offset : offset + n]
            valid = cands >= 0
            safe = np.where(valid, cands, 0)
            valid &= ps.expires_at[safe] > now
            if own_ids is not None:
                valid &= cands != own_ids[offset : offset + n][:, None]
            # Dedup within the batch, keeping the first occurrence.
            for j in range(1, k):
                dup = (cands[:, j : j + 1] == cands[:, :j]) & valid[:, :j]
                valid[:, j] &= ~dup.any(axis=1)
            # Skip candidates already cached (equal id = equal pseudonym).
            old = self.cache_ids[chunk]
            old_live = np.arange(cols)[None, :] < self.cache_len[chunk][:, None]
            present = (cands[:, :, None] == old[:, None, :]) & old_live[:, None, :]
            valid &= ~present.any(axis=2)
            counts = valid.sum(axis=1)
            if counts.any():
                # Append survivors, dropping overflow from the oldest end:
                # sequential insert-with-oldest-eviction reduces to "keep
                # the newest cap entries of old + new".
                scratch = np.concatenate(
                    (old, np.where(valid, cands, -1)), axis=1
                )
                keep = np.concatenate((old_live, valid), axis=1)
                pos = np.cumsum(keep, axis=1)
                total = pos[:, -1]
                cap = self.cache_cap[chunk]
                drop = np.maximum(0, total - cap)
                evict = keep & (pos <= drop[:, None])
                keep &= ~evict
                if evict.any():
                    ps.release_batch(scratch[evict])
                order = np.argsort(~keep, axis=1, kind="stable")
                packed = np.take_along_axis(
                    np.where(keep, scratch, -1), order, axis=1
                )[:, :cols]
                self.cache_ids[chunk] = packed
                if self.cache_ins is not None:
                    old_ins = self.cache_ins[chunk]
                    ins = np.concatenate(
                        (old_ins, np.full((n, k), now)), axis=1
                    )
                    self.cache_ins[chunk] = np.take_along_axis(
                        ins, order, axis=1
                    )[:, :cols]
                self.cache_len[chunk] = np.minimum(total, cap)
                appended = safe[valid]
                acq = np.bincount(appended, minlength=ps.capacity)
                touched = np.flatnonzero(acq)
                ps.refcounts[touched] += acq[touched]
                new_min = np.where(valid, ps.expires_at[safe], math.inf).min(axis=1)
                self.cache_min_exp[chunk] = np.minimum(
                    self.cache_min_exp[chunk], new_min
                )
                inserted[offset : offset + n] = counts
            offset += n
        return inserted

    def batch_links_from_slots(
        self, rows: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Re-derive each row's pseudonym links from its sampler slots.

        Exactly ``links.update_from_sample(slots.sample())`` per row:
        the link row becomes the distinct slot occupants in slot order,
        retained entries keep their link-table position, new entries
        append in sample order.  Returns per-row (added, removed)
        counts — the paper's link-replacement overhead metric.
        """
        added = np.zeros(len(rows), dtype=np.int64)
        removed = np.zeros(len(rows), dtype=np.int64)
        if len(rows) == 0:
            return added, removed
        ps = self.pseudonyms
        scols = self.slot_cols
        lcols = self.link_cols
        width = (scols + lcols) * max(scols, lcols)
        offset = 0
        for chunk in self._row_chunks(rows, width):
            n = len(chunk)
            slots = self.slot_ids[chunk]
            occupied = slots >= 0
            # Distinct occupants, first slot occurrence wins.
            sample = np.where(occupied, slots, -1)
            for j in range(1, scols):
                dup = (sample[:, j : j + 1] == sample[:, :j]) & occupied[:, :j]
                sample[:, j] = np.where(dup.any(axis=1), -1, sample[:, j])
            sample_live = sample >= 0
            old = self.link_ids[chunk]
            old_live = np.arange(lcols)[None, :] < self.link_len[chunk][:, None]
            in_new = (
                (old[:, :, None] == sample[:, None, :]) & sample_live[:, None, :]
            ).any(axis=2) & old_live
            in_old = (
                (sample[:, :, None] == old[:, None, :]) & old_live[:, None, :]
            ).any(axis=2) & sample_live
            dropped = old_live & ~in_new
            fresh = sample_live & ~in_old
            row_removed = dropped.sum(axis=1)
            row_added = fresh.sum(axis=1)
            dirty = (row_removed > 0) | (row_added > 0)
            if dirty.any():
                ps.release_batch(old[dropped])
                appended = sample[fresh]
                acq = np.bincount(appended, minlength=ps.capacity)
                touched = np.flatnonzero(acq)
                ps.refcounts[touched] += acq[touched]
                # Retained links keep their order, fresh ones append.
                scratch = np.concatenate(
                    (np.where(in_new, old, -1), np.where(fresh, sample, -1)),
                    axis=1,
                )
                keep = scratch >= 0
                order = np.argsort(~keep, axis=1, kind="stable")
                packed = np.take_along_axis(scratch, order, axis=1)[:, :lcols]
                self.link_ids[chunk] = packed
                self.link_len[chunk] = keep.sum(axis=1)
            added[offset : offset + n] = row_added
            removed[offset : offset + n] = row_removed
            offset += n
        return added, removed

    def batch_expire(self, now: float) -> Tuple[np.ndarray, np.ndarray]:
        """Purge expired occupants from every slot and cache row.

        The batched churn/maintenance transition: empties every sampler
        slot holding an expired pseudonym and compacts every cache row,
        releasing the dropped ids (freed ids return to the pseudonym
        arena's free list for reuse).  Returns
        ``(slot_dirty_rows, cache_dirty_rows)`` so the caller can
        refresh links / stats for exactly the rows that changed.
        """
        ps = self.pseudonyms
        count = self.num_nodes
        slot_rows = np.flatnonzero(self.slot_soonest[:count] <= now)
        if len(slot_rows):
            sids = self.slot_ids[slot_rows]
            safe = np.where(sids >= 0, sids, 0)
            dead = (sids >= 0) & (ps.expires_at[safe] <= now)
            dirty = dead.any(axis=1)
            slot_rows = slot_rows[dirty]
            if len(slot_rows):
                sids = self.slot_ids[slot_rows]
                safe = np.where(sids >= 0, sids, 0)
                dead = (sids >= 0) & (ps.expires_at[safe] <= now)
                ps.release_batch(sids[dead])
                self.slot_ids[slot_rows] = np.where(dead, -1, sids)
                self.slot_dist[slot_rows] = np.where(
                    dead, _EMPTY_DISTANCE, self.slot_dist[slot_rows]
                )
                self.slot_exp[slot_rows] = np.where(
                    dead, -math.inf, self.slot_exp[slot_rows]
                )
            # Recompute the expiry lower bound for every row we scanned.
            scanned = np.flatnonzero(self.slot_soonest[:count] <= now)
            if len(scanned):
                sids = self.slot_ids[scanned]
                occ = sids >= 0
                exp = np.where(
                    occ, ps.expires_at[np.where(occ, sids, 0)], math.inf
                )
                self.slot_soonest[scanned] = exp.min(axis=1)
        cache_rows = np.flatnonzero(self.cache_min_exp[:count] <= now)
        if len(cache_rows):
            cols = self.cache_cols
            ids = self.cache_ids[cache_rows]
            live = np.arange(cols)[None, :] < self.cache_len[cache_rows][:, None]
            safe = np.where(ids >= 0, ids, 0)
            dead = live & (ps.expires_at[safe] <= now)
            dirty = dead.any(axis=1)
            ps.release_batch(ids[dead])
            keep = live & ~dead
            order = np.argsort(~keep, axis=1, kind="stable")
            packed = np.take_along_axis(np.where(keep, ids, -1), order, axis=1)
            self.cache_ids[cache_rows] = packed
            if self.cache_ins is not None:
                self.cache_ins[cache_rows] = np.take_along_axis(
                    self.cache_ins[cache_rows], order, axis=1
                )
            self.cache_len[cache_rows] = keep.sum(axis=1)
            exp = np.where(
                keep, ps.expires_at[np.where(keep, ids, 0)], math.inf
            )
            self.cache_min_exp[cache_rows] = exp.min(axis=1)
            cache_rows = cache_rows[dirty]
        return slot_rows, cache_rows

    def sample_cache(
        self, rows: np.ndarray, count: int, keys: np.ndarray
    ) -> np.ndarray:
        """Uniform distinct cache samples: up to ``count`` ids per row.

        ``keys`` is a ``(len(rows), cache_cols)`` array of random floats
        supplied by the caller (the arena draws no randomness itself);
        each row returns the entries holding its ``count`` smallest
        keys — a uniform without-replacement sample.  Padded with -1.
        """
        if count <= 0 or self.cache_cols == 0:
            return np.full((len(rows), max(count, 0)), -1, dtype=np.int32)
        ids = self.cache_ids[rows]
        live = np.arange(self.cache_cols)[None, :] < self.cache_len[rows][:, None]
        ranked = np.where(live, keys, math.inf)
        order = np.argsort(ranked, axis=1, kind="stable")[:, :count]
        picked = np.take_along_axis(np.where(live, ids, -1), order, axis=1)
        return picked.astype(np.int32)


class ArenaCache:
    """Arena-backed :class:`~repro.core.cache.PseudonymCache` view.

    Same public API and replacement policy, same rng draw order; the
    entry table is the node's insertion-ordered arena cache row instead
    of a dict of boxed entries.
    """

    __slots__ = ("_arena", "_row")

    def __init__(self, arena: NodeArena, node_id: int, capacity: int) -> None:
        if capacity < 1:
            raise ProtocolError(f"cache capacity must be >= 1, got {capacity}")
        if arena.cache_ins is None:
            raise ProtocolError(
                "cache views need an arena with track_insert_times=True"
            )
        self._arena = arena
        self._row = node_id
        arena._ensure_cache_cols(capacity)
        arena.cache_cap[node_id] = capacity
        arena.cache_min_exp[node_id] = math.inf

    @property
    def capacity(self) -> int:
        """Maximum number of stored pseudonyms."""
        return int(self._arena.cache_cap[self._row])

    def __len__(self) -> int:
        return int(self._arena.cache_len[self._row])

    def _ids(self) -> np.ndarray:
        arena = self._arena
        return arena.cache_ids[self._row, : int(arena.cache_len[self._row])]

    def _find_value(self, value: int) -> Optional[int]:
        arena = self._arena
        ids = self._ids()
        hits = np.flatnonzero(arena.pseudonyms.values[ids] == value)
        return int(hits[0]) if len(hits) else None

    def __contains__(self, pseudonym: Pseudonym) -> bool:
        position = self._find_value(pseudonym.value)
        if position is None:
            return False
        return self._arena.pseudonyms.matches(
            int(self._ids()[position]), pseudonym
        )

    def pseudonyms(self) -> List[Pseudonym]:
        """All cached pseudonyms (unordered snapshot)."""
        view = self._arena.pseudonyms.view
        return [view(int(pid)) for pid in self._ids()]

    def _remove_at(self, position: int) -> None:
        arena = self._arena
        row = self._row
        length = int(arena.cache_len[row])
        ids = arena.cache_ids[row]
        arena.pseudonyms.release(int(ids[position]))
        ids[position : length - 1] = ids[position + 1 : length]
        ids[length - 1] = -1
        ins = arena.cache_ins[row]
        ins[position : length - 1] = ins[position + 1 : length]
        arena.cache_len[row] = length - 1

    def remove_expired(self, now: float) -> int:
        """Drop expired entries; returns how many were removed."""
        arena = self._arena
        row = self._row
        if now < arena.cache_min_exp[row]:
            return 0
        length = int(arena.cache_len[row])
        ids = arena.cache_ids[row, :length]
        expires = arena.pseudonyms.expires_at[ids]
        keep = expires > now
        removed = int(length - keep.sum())
        if removed:
            kept = ids[keep].copy()
            for pid in ids[~keep].tolist():
                arena.pseudonyms.release(int(pid))
            arena.cache_ids[row, : len(kept)] = kept
            arena.cache_ids[row, len(kept) : length] = -1
            kept_ins = arena.cache_ins[row, :length][keep].copy()
            arena.cache_ins[row, : len(kept)] = kept_ins
            arena.cache_len[row] = len(kept)
        arena.cache_min_exp[row] = (
            float(expires[keep].min()) if keep.any() else math.inf
        )
        return removed

    def remove(self, pseudonym: Pseudonym) -> bool:
        """Remove a specific pseudonym; returns whether it was present."""
        position = self._find_value(pseudonym.value)
        if position is None:
            return False
        if not self._arena.pseudonyms.matches(
            int(self._ids()[position]), pseudonym
        ):
            return False
        self._remove_at(position)
        return True

    def newest(self, count: int, now: float) -> List[Pseudonym]:
        """The ``count`` most recently inserted unexpired pseudonyms."""
        self.remove_expired(now)
        arena = self._arena
        length = int(arena.cache_len[self._row])
        inserted = arena.cache_ins[self._row, :length]
        order = sorted(
            range(length), key=lambda index: inserted[index], reverse=True
        )
        ids = arena.cache_ids[self._row]
        view = arena.pseudonyms.view
        return [view(int(ids[index])) for index in order[:count]]

    def select_for_shuffle(
        self, rng: np.random.Generator, count: int, now: float
    ) -> List[Pseudonym]:
        """Uniformly sample up to ``count`` unexpired cached pseudonyms."""
        self.remove_expired(now)
        ids = self._ids()
        view = self._arena.pseudonyms.view
        if count >= len(ids):
            return [view(int(pid)) for pid in ids]
        indices = rng.choice(len(ids), size=count, replace=False)
        return [view(int(ids[int(index)])) for index in indices]

    def merge(
        self,
        received: Iterable[Pseudonym],
        now: float,
        just_sent: Optional[Iterable[Pseudonym]] = None,
        own_value: Optional[int] = None,
    ) -> int:
        """Merge a received batch, applying the replacement policy."""
        self.remove_expired(now)
        sent_values = (
            {pseudonym.value for pseudonym in just_sent} if just_sent else set()
        )
        arena = self._arena
        row = self._row
        table = arena.pseudonyms
        inserted = 0
        for pseudonym in received:
            if pseudonym.is_expired(now):
                continue
            if own_value is not None and pseudonym.value == own_value:
                continue
            position = self._find_value(pseudonym.value)
            if position is not None:
                existing = int(arena.cache_ids[row, position])
                if pseudonym.expires_at > float(table.expires_at[existing]):
                    arena.cache_ids[row, position] = table.intern(pseudonym)
                    table.release(existing)
                    inserted += 1
                continue
            if int(arena.cache_len[row]) >= int(arena.cache_cap[row]):
                victim = self._pick_victim(sent_values)
                if victim is None:
                    break
                self._remove_at(victim)
            length = int(arena.cache_len[row])
            arena.cache_ids[row, length] = table.intern(pseudonym)
            arena.cache_ins[row, length] = now
            arena.cache_len[row] = length + 1
            if pseudonym.expires_at < arena.cache_min_exp[row]:
                arena.cache_min_exp[row] = pseudonym.expires_at
            inserted += 1
        return inserted

    def _pick_victim(self, sent_values) -> Optional[int]:
        """Choose an eviction victim: just-sent entries first, then oldest."""
        if sent_values:
            for value in sent_values:
                position = self._find_value(value)
                if position is not None:
                    sent_values.discard(value)
                    return position
        # Rows are insertion-ordered with a non-decreasing ``now``, so
        # position 0 is the oldest entry (exactly the dict-order rule).
        return 0 if len(self) else None


class ArenaSlots:
    """Arena-backed :class:`~repro.core.slots.SamplerSlots` view.

    Reference values are drawn from ``rng`` with the identical call
    sequence, and :meth:`offer_batch` runs the identical vectorized
    fold — on arena rows instead of per-object arrays.
    """

    __slots__ = ("_arena", "_row", "_size", "_sample_cache")

    def __init__(
        self, arena: NodeArena, node_id: int, size: int, rng: np.random.Generator
    ) -> None:
        if size < 0:
            raise ProtocolError(f"slot count must be non-negative, got {size}")
        self._arena = arena
        self._row = node_id
        self._size = size
        arena._ensure_slot_cols(size)
        arena.slot_n[node_id] = size
        arena.slot_soonest[node_id] = math.inf
        arena.slot_refs[node_id, :size] = [
            random_bits(rng, PSEUDONYM_BITS) for _ in range(size)
        ]
        self._sample_cache: Optional[List[Pseudonym]] = None

    @property
    def size(self) -> int:
        """Number of slots S."""
        return self._size

    @property
    def references(self) -> np.ndarray:
        """The immutable reference values (read-only view)."""
        view = self._arena.slot_refs[self._row, : self._size].view()
        view.flags.writeable = False
        return view

    def _ids(self) -> np.ndarray:
        return self._arena.slot_ids[self._row, : self._size]

    def filled(self) -> int:
        """Number of non-empty slots."""
        return int((self._ids() >= 0).sum())

    def entry(self, index: int) -> Optional[Pseudonym]:
        """The pseudonym in slot ``index`` (None when empty)."""
        pid = int(self._ids()[index])
        return self._arena.pseudonyms.view(pid) if pid >= 0 else None

    def sample(self) -> List[Pseudonym]:
        """Distinct pseudonyms currently held across all slots."""
        cached = self._sample_cache
        if cached is None:
            view = self._arena.pseudonyms.view
            seen = set()
            cached = []
            for pid in self._ids().tolist():
                if pid >= 0 and pid not in seen:
                    seen.add(pid)
                    cached.append(view(pid))
            self._sample_cache = cached
        return cached

    def expire(self, now: float) -> int:
        """Empty every slot holding an expired pseudonym; returns count."""
        arena = self._arena
        row = self._row
        if now < arena.slot_soonest[row]:
            return 0
        table = arena.pseudonyms
        removed = 0
        soonest = math.inf
        ids = arena.slot_ids[row]
        for index in range(self._size):
            pid = int(ids[index])
            if pid < 0:
                continue
            expires = float(table.expires_at[pid])
            if expires <= now:
                self._clear_slot(index)
                removed += 1
            elif expires < soonest:
                soonest = expires
        arena.slot_soonest[row] = soonest
        if removed:
            self._sample_cache = None
        return removed

    def evict(self, pseudonym: Pseudonym) -> int:
        """Remove a specific pseudonym from all slots; returns count."""
        removed = 0
        table = self._arena.pseudonyms
        ids = self._arena.slot_ids[self._row]
        for index in range(self._size):
            pid = int(ids[index])
            if pid >= 0 and table.matches(pid, pseudonym):
                self._clear_slot(index)
                removed += 1
        if removed:
            self._sample_cache = None
        return removed

    def _clear_slot(self, index: int) -> None:
        arena = self._arena
        row = self._row
        pid = int(arena.slot_ids[row, index])
        if pid >= 0:
            arena.pseudonyms.release(pid)
        arena.slot_ids[row, index] = -1
        arena.slot_dist[row, index] = _EMPTY_DISTANCE
        arena.slot_exp[row, index] = -math.inf

    def offer(self, pseudonym: Pseudonym) -> int:
        """Offer one pseudonym to every slot; returns slots replaced."""
        return self.offer_batch([pseudonym])

    def offer_batch(self, pseudonyms: Sequence[Pseudonym]) -> int:
        """Fold a received batch into the slots (legacy-identical)."""
        if self._size == 0 or not pseudonyms:
            return 0
        arena = self._arena
        row = self._row
        size = self._size
        values = np.fromiter(
            (pseudonym.value for pseudonym in pseudonyms),
            dtype=np.int64,
            count=len(pseudonyms),
        )
        expiries = np.fromiter(
            (
                np.inf if math.isinf(pseudonym.expires_at) else pseudonym.expires_at
                for pseudonym in pseudonyms
            ),
            dtype=np.float64,
            count=len(pseudonyms),
        )
        references = arena.slot_refs[row, :size]
        distances = arena.slot_dist[row, :size]
        slot_expiries = arena.slot_exp[row, :size]
        distance_matrix = np.abs(values[:, None] - references[None, :])
        min_distances = distance_matrix.min(axis=0)
        is_minimal = distance_matrix == min_distances[None, :]
        masked_expiries = np.where(is_minimal, expiries[:, None], -np.inf)
        best_rows = masked_expiries.argmax(axis=0)
        best_expiries = masked_expiries[best_rows, np.arange(size)]

        closer = min_distances < distances
        tie_later = (min_distances == distances) & (best_expiries > slot_expiries)
        replace = closer | tie_later

        table = arena.pseudonyms
        changed = 0
        soonest = float(arena.slot_soonest[row])
        ids = arena.slot_ids[row]
        for index in np.flatnonzero(replace):
            index = int(index)
            candidate = pseudonyms[int(best_rows[index])]
            current = int(ids[index])
            if current >= 0 and table.matches(current, candidate):
                continue
            ids[index] = table.intern(candidate)
            if current >= 0:
                table.release(current)
            arena.slot_dist[row, index] = int(min_distances[index])
            expiry = float(best_expiries[index])
            arena.slot_exp[row, index] = expiry
            if expiry < soonest:
                soonest = expiry
            changed += 1
        if changed:
            arena.slot_soonest[row] = soonest
            self._sample_cache = None
        return changed

    def refresh_distances(self) -> None:
        """Recompute cached distances from entries (defensive resync)."""
        arena = self._arena
        row = self._row
        table = arena.pseudonyms
        soonest = math.inf
        ids = arena.slot_ids[row]
        for index in range(self._size):
            pid = int(ids[index])
            if pid < 0:
                arena.slot_dist[row, index] = _EMPTY_DISTANCE
                arena.slot_exp[row, index] = -math.inf
            else:
                value = int(table.values[pid])
                expires = float(table.expires_at[pid])
                arena.slot_dist[row, index] = abs(
                    value - int(arena.slot_refs[row, index])
                )
                arena.slot_exp[row, index] = expires
                if expires < soonest:
                    soonest = expires
        arena.slot_soonest[row] = soonest
        self._sample_cache = None

    def holds(self, pseudonyms: Iterable[Pseudonym]) -> bool:
        """Whether every given pseudonym occupies at least one slot."""
        table = self._arena.pseudonyms
        ids = self._ids()
        held = {int(table.values[pid]) for pid in ids if pid >= 0}
        return all(pseudonym.value in held for pseudonym in pseudonyms)


class ArenaLinkSet:
    """Arena-backed :class:`~repro.core.links.LinkSet` view.

    Pseudonym links live in the node's arena link row (insertion
    order = link-table order); the small mutable trusted set stays
    object-side, exactly mirroring the legacy class's behavior and
    counters.
    """

    __slots__ = (
        "_arena",
        "_row",
        "_trusted",
        "_trusted_list",
        "_trusted_frozen",
        "_pseudonym_list",
        "replacements_total",
        "additions_total",
        "version",
        "trusted_version",
    )

    def __init__(
        self, arena: NodeArena, node_id: int, trusted_neighbors: Iterable[int]
    ) -> None:
        self._arena = arena
        self._row = node_id
        self._trusted = set(trusted_neighbors)
        self._trusted_list: List[int] = sorted(self._trusted)
        self._trusted_frozen: FrozenSet[int] = frozenset(self._trusted)
        self._pseudonym_list: Optional[List[Pseudonym]] = None
        self.replacements_total = 0
        self.additions_total = 0
        self.version = 0
        self.trusted_version = 0

    @property
    def trusted(self) -> FrozenSet[int]:
        """Trust-graph neighbor ids."""
        return self._trusted_frozen

    def add_trusted(self, neighbor: int) -> bool:
        """Add a trusted link (new friend); returns False if present."""
        if neighbor in self._trusted:
            return False
        self._trusted.add(neighbor)
        self._trusted_list = sorted(self._trusted)
        self._trusted_frozen = frozenset(self._trusted)
        self.trusted_version += 1
        return True

    @property
    def trusted_degree(self) -> int:
        """Number of trusted links."""
        return len(self._trusted)

    def _ids(self) -> np.ndarray:
        arena = self._arena
        return arena.link_ids[self._row, : int(arena.link_len[self._row])]

    def link_rows(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(values, expiries)`` columns of the current pseudonym links.

        The snapshot store's columnar fast path: resolves owners and
        filters expiry without materializing pseudonym objects.
        """
        ids = self._ids()
        table = self._arena.pseudonyms
        return table.values[ids], table.expires_at[ids]

    def pseudonym_links(self) -> List[Pseudonym]:
        """Current pseudonym-link targets (cached snapshot list)."""
        snapshot = self._pseudonym_list
        if snapshot is None:
            view = self._arena.pseudonyms.view
            snapshot = [view(int(pid)) for pid in self._ids()]
            self._pseudonym_list = snapshot
        return snapshot

    def pseudonym_degree(self) -> int:
        """Number of current pseudonym links."""
        return int(self._arena.link_len[self._row])

    def out_degree(self) -> int:
        """Total links this node maintains (trusted + pseudonym)."""
        return len(self._trusted) + self.pseudonym_degree()

    def has_pseudonym_link(self, pseudonym: Pseudonym) -> bool:
        """Whether a link to this exact pseudonym exists."""
        table = self._arena.pseudonyms
        ids = self._ids()
        hits = np.flatnonzero(table.values[ids] == pseudonym.value)
        return any(
            table.matches(int(ids[int(index)]), pseudonym) for index in hits
        )

    def update_from_sample(self, sample: Iterable[Pseudonym]) -> Tuple[int, int]:
        """Make the pseudonym links exactly match the sampler output."""
        arena = self._arena
        table = arena.pseudonyms
        new_links = {pseudonym.value: pseudonym for pseudonym in sample}
        ids = self._ids().tolist()
        current: Dict[int, int] = {
            int(table.values[pid]): pid for pid in ids
        }
        removed = 0
        added = 0
        if len(new_links) != len(current) or new_links.keys() != current.keys():
            for value in [v for v in current if v not in new_links]:
                table.release(current.pop(value))
                removed += 1
        for value, pseudonym in new_links.items():
            existing = current.get(value)
            if existing is None:
                current[value] = table.intern(pseudonym)
                added += 1
            elif not table.matches(existing, pseudonym):
                current[value] = table.intern(pseudonym)
                table.release(existing)
                removed += 1
                added += 1
        if added or removed:
            row = self._row
            arena._ensure_link_cols(len(current))
            new_ids = list(current.values())
            arena.link_ids[row, : len(new_ids)] = new_ids
            arena.link_ids[row, len(new_ids) : arena.link_cols] = -1
            arena.link_len[row] = len(new_ids)
            self._pseudonym_list = None
            self.version += 1
        self.replacements_total += removed
        self.additions_total += added
        return added, removed

    def all_targets(self) -> List[LinkTarget]:
        """Every overlay link as a :class:`LinkTarget` list."""
        targets = [LinkTarget(node_id=neighbor) for neighbor in self._trusted_list]
        targets.extend(
            LinkTarget(pseudonym=pseudonym)
            for pseudonym in self.pseudonym_links()
        )
        return targets

    def pick_random_target(
        self, rng: np.random.Generator
    ) -> Optional[LinkTarget]:
        """Select a link uniformly at random (the shuffle partner choice)."""
        trusted_list = self._trusted_list
        snapshot = self.pseudonym_links()
        total = len(trusted_list) + len(snapshot)
        if total == 0:
            return None
        index = int(rng.integers(0, total))
        if index < len(trusted_list):
            return LinkTarget(node_id=trusted_list[index])
        return LinkTarget(pseudonym=snapshot[index - len(trusted_list)])
