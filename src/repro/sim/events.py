"""Event primitives for the discrete-event simulator.

An :class:`Event` is a callback scheduled at a simulated time.  Events
are ordered by ``(time, sequence_number)`` so simultaneous events fire
in scheduling order, which keeps runs deterministic.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

__all__ = ["Event", "EventHandle"]


class Event:
    """A scheduled callback.

    Events are created by :meth:`repro.sim.simulator.Simulator.schedule`;
    user code normally interacts with the returned :class:`EventHandle`.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.label = label

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if not self.cancelled:
            self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or getattr(self.callback, "__name__", "callback")
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.4f}, seq={self.seq}, {name}{state})"


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self._event.cancelled = True
