"""Event primitives for the discrete-event simulator.

The simulator's heap stores bare list entries ``[time, seq, callback,
args]``.  Plain lists compare element-wise in C — first by ``time``,
then by the unique ``seq`` — so heap sifts never call back into Python,
which is what makes the event loop fast.  Cancelling an event sets its
callback slot to ``None`` (a *tombstone*); the simulator counts
tombstones and compacts the heap in place once they outnumber live
events, so long churn runs cannot accumulate dead entries.

:class:`EventHandle` is the public cancellable reference returned by
:meth:`~repro.sim.simulator.Simulator.schedule`.  :class:`Event` is a
read-only record view of one entry, kept for introspection, tracing,
and debugging; the hot path never allocates one.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

__all__ = ["Event", "EventHandle", "ENTRY_TIME", "ENTRY_SEQ", "ENTRY_CALLBACK", "ENTRY_ARGS"]

#: Indices into a heap entry ``[time, seq, callback, args]``.
ENTRY_TIME = 0
ENTRY_SEQ = 1
ENTRY_CALLBACK = 2
ENTRY_ARGS = 3


class Event:
    """A read-only record view of one scheduled event.

    Built on demand from a heap entry (see :meth:`from_entry`); the
    simulator itself only stores bare list entries.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "label")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Optional[Callable[..., Any]],
        args: tuple,
        label: Optional[str] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = callback is None
        self.label = label

    @classmethod
    def from_entry(cls, entry: List[Any], label: Optional[str] = None) -> "Event":
        """Snapshot a heap entry into a readable record."""
        return cls(entry[ENTRY_TIME], entry[ENTRY_SEQ], entry[ENTRY_CALLBACK],
                   entry[ENTRY_ARGS], label=label)

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def fire(self) -> None:
        """Invoke the callback unless the event was cancelled."""
        if self.callback is not None and not self.cancelled:
            self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.label or getattr(self.callback, "__name__", "callback")
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time:.4f}, seq={self.seq}, {name}{state})"


class EventHandle:
    """A cancellable reference to a scheduled event."""

    __slots__ = ("_entry", "_sim", "_cancelled", "label")

    def __init__(
        self,
        entry: List[Any],
        sim: Optional[Any] = None,
        label: Optional[str] = None,
    ) -> None:
        self._entry = entry
        self._sim = sim
        self._cancelled = False
        self.label = label

    @property
    def time(self) -> float:
        """Simulated time at which the event fires."""
        return self._entry[ENTRY_TIME]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent.

        Cancelling leaves a tombstone in the simulator's heap; the
        simulator reclaims tombstones in bulk once they outnumber live
        events (see ``Simulator.queue_size`` vs ``Simulator.pending``).
        """
        if self._cancelled:
            return
        self._cancelled = True
        entry = self._entry
        if entry[ENTRY_CALLBACK] is not None:
            entry[ENTRY_CALLBACK] = None
            entry[ENTRY_ARGS] = ()
            if self._sim is not None:
                self._sim._note_cancelled()

    def as_event(self) -> Event:
        """Snapshot the underlying entry as a readable :class:`Event`."""
        event = Event.from_entry(self._entry, label=self.label)
        event.cancelled = self._cancelled
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self._cancelled else ""
        return f"EventHandle(t={self.time:.4f}{state})"
