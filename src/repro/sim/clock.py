"""The shared clock contract behind simulated and wall time.

The overlay protocol is written against a *clock*, not against the
simulator: every protocol object (:class:`~repro.core.node.OverlayNode`,
:class:`~repro.sim.process.PeriodicProcess`, the metrics collector)
only ever reads ``clock.now`` and schedules callbacks at absolute times
or after delays.  :class:`Clock` names that contract so the same
protocol code runs unmodified on

* :class:`~repro.sim.simulator.Simulator` — discrete-event simulated
  time (the evaluation path; ``Simulator`` subclasses :class:`Clock`);
* :class:`SimClock` — an explicit adapter over a ``Simulator``, the
  deterministic half of the ``SimClock``/``WallClock`` parity pair;
* :class:`repro.net.clock.WallClock` — real wall time over an asyncio
  event loop (the deployable path; see ``docs/networking.md``).

Time is always measured in **shuffling periods** (the paper's unit),
whatever the backing clock: a wall clock maps periods to seconds with a
configurable scale, so protocol parameters (pseudonym lifetimes,
heartbeat intervals) keep their meaning in live deployments.

Contract notes
--------------
* ``schedule``/``post`` take *absolute* times on the clock's own axis;
  ``schedule_after``/``post_after`` take non-negative delays.
* ``schedule``/``schedule_after`` return a cancellable handle exposing
  ``cancel()`` and ``cancelled`` (the :class:`~repro.sim.events
  .EventHandle` surface); ``post``/``post_after`` are the
  fire-and-forget fast path and return nothing.
* Simulated clocks *reject* scheduling in the past
  (:class:`~repro.errors.SchedulerError`); wall clocks cannot refuse
  the past and clamp it to "run as soon as possible".  Code portable
  across both must not rely on the rejection.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Optional

from .events import EventHandle

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .simulator import Simulator

__all__ = ["Clock", "SimClock"]


class Clock(abc.ABC):
    """Scheduling surface shared by simulated and wall clocks."""

    __slots__ = ()

    @property
    @abc.abstractmethod
    def now(self) -> float:
        """Current time in shuffling periods on this clock's axis."""

    @abc.abstractmethod
    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Any:
        """Run ``callback(*args)`` at absolute ``time``; cancellable."""

    @abc.abstractmethod
    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Any:
        """Run ``callback(*args)`` after ``delay``; cancellable."""

    @abc.abstractmethod
    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule` (no handle allocated)."""

    @abc.abstractmethod
    def post_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule_after` (no handle allocated)."""


class SimClock(Clock):
    """A :class:`Clock` view of a discrete-event :class:`Simulator`.

    ``Simulator`` already *is* a clock (it subclasses :class:`Clock`);
    this adapter exists for call sites that want the clock role spelled
    out — the network harness accepts either a ``SimClock`` or a
    ``WallClock`` and treats them identically.  All scheduling
    delegates to the wrapped simulator, so events interleave with the
    rest of the simulation in deterministic ``(time, seq)`` order.
    """

    __slots__ = ("_sim",)

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        """The backing simulator (for ``run_until`` and inspection)."""
        return self._sim

    @property
    def now(self) -> float:
        return self._sim.now

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        return self._sim.schedule(time, callback, *args, label=label)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        return self._sim.schedule_after(delay, callback, *args, label=label)

    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        self._sim.post(time, callback, *args)

    def post_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        self._sim.post_after(delay, callback, *args)

    def run_until(self, horizon: float) -> None:
        """Advance the backing simulator to ``horizon``."""
        self._sim.run_until(horizon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock({self._sim!r})"
