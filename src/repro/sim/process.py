"""Periodic processes on top of the event simulator.

Protocol behaviours such as "each node shuffles once per shuffling
period" or "sample metrics every k periods" are periodic.
:class:`PeriodicProcess` encapsulates scheduling, optional random phase
and jitter (so that nodes do not act in lockstep), and clean start/stop
semantics — a node going offline stops its shuffle timer; rejoining
restarts it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from ..errors import SimulationError
from .clock import Clock

__all__ = ["PeriodicProcess"]


class PeriodicProcess:
    """Repeatedly invoke a callback with a fixed period.

    Scheduling goes through the :class:`~repro.sim.clock.Clock`
    contract only, so the same process drives protocol ticks under the
    discrete-event simulator and under a wall clock (``repro.net``).

    Parameters
    ----------
    sim:
        The clock driving the process (a :class:`Simulator`, or any
        other :class:`Clock`).
    period:
        Interval between invocations, in simulated time units.
    callback:
        Zero-argument callable invoked on each tick.
    rng:
        Optional generator used for the initial phase and per-tick
        jitter.  Without it the process ticks at exact multiples of the
        period from its start time.
    jitter:
        Half-width of the uniform per-tick jitter as a fraction of the
        period.  A tick scheduled nominally at ``t`` fires within
        ``[t - jitter * period, t + jitter * period]`` (never before the
        current time).
    """

    def __init__(
        self,
        sim: Clock,
        period: float,
        callback: Callable[[], Any],
        rng: Optional[np.random.Generator] = None,
        jitter: float = 0.0,
    ) -> None:
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")
        if not 0.0 <= jitter < 1.0:
            raise SimulationError(f"jitter must be in [0, 1), got {jitter}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._rng = rng
        self._jitter = jitter
        self._handle: Optional[Any] = None
        self._ticks = 0

    @property
    def running(self) -> bool:
        """Whether the process currently has a pending tick."""
        return self._handle is not None and not self._handle.cancelled

    @property
    def ticks(self) -> int:
        """Number of times the callback has fired."""
        return self._ticks

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin ticking.

        Parameters
        ----------
        initial_delay:
            Delay before the first tick.  Defaults to a random phase in
            ``[0, period)`` when an RNG was supplied, else one full
            period.
        """
        if self.running:
            raise SimulationError("process is already running")
        if initial_delay is None:
            if self._rng is not None:
                initial_delay = float(self._rng.uniform(0.0, self._period))
            else:
                initial_delay = self._period
        if initial_delay < 0:
            raise SimulationError("initial_delay must be non-negative")
        self._handle = self._sim.schedule_after(initial_delay, self._tick)

    def stop(self) -> None:
        """Cancel the pending tick.  Idempotent."""
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _next_delay(self) -> float:
        if self._rng is not None and self._jitter > 0.0:
            spread = self._jitter * self._period
            return max(1e-9, self._period + float(self._rng.uniform(-spread, spread)))
        return self._period

    def _tick(self) -> None:
        self._handle = self._sim.schedule_after(self._next_delay(), self._tick)
        self._ticks += 1
        self._callback()
