"""The discrete-event simulation core.

The paper evaluates its protocols "in a custom event-based simulation
environment" where events "can occur at any time within the duration of
a single shuffling period".  :class:`Simulator` provides exactly that: a
monotonic simulated clock, an event queue ordered by time, and helpers
to run until a horizon or until the queue drains.

Time is a float measured in shuffling periods (the paper's time unit).

Hot-path design (the sweeps in the paper's Section IV are pure
functions of this loop):

* Heap entries are bare lists ``[time, seq, callback, args]`` so the
  ``heapq`` sifts compare floats/ints in C and never call back into
  Python.
* :meth:`post` / :meth:`post_after` schedule fire-and-forget events
  with no :class:`~repro.sim.events.EventHandle` allocation — the right
  choice for message delivery, churn transitions, and metric sampling,
  which are never cancelled.
* Cancelled events become counted tombstones; the heap is compacted in
  place as soon as tombstones outnumber live events, so long churn runs
  with heavy cancel/reschedule traffic keep the heap (and every
  ``O(log n)`` sift) small.
* :meth:`run_until` drains same-timestamp batches without re-checking
  the horizon between simultaneous events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SchedulerError
from .clock import Clock
from .events import EventHandle

__all__ = ["Simulator"]


class Simulator(Clock):
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "hello")
    >>> sim.run_until(10.0)
    >>> fired
    ['hello']
    >>> sim.now
    10.0
    """

    __slots__ = (
        "_now",
        "_queue",
        "_seq",
        "_running",
        "_events_processed",
        "_tombstones",
    )

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[List[Any]] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0
        self._tombstones = 0

    @property
    def now(self) -> float:
        """Current simulated time, in shuffling periods."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of *live* events still queued (cancelled ones excluded)."""
        return len(self._queue) - self._tombstones

    @property
    def queue_size(self) -> int:
        """Raw heap size, including cancelled tombstones awaiting compaction."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Returns a cancellable :class:`EventHandle`.  Call sites that
        never cancel should prefer :meth:`post`, which skips the handle
        allocation entirely.

        Raises
        ------
        SchedulerError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        entry = [time, self._seq, callback, args]
        self._seq += 1
        heapq.heappush(self._queue, entry)
        return EventHandle(entry, self, label)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after a relative ``delay``."""
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args, label=label)

    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast-path schedule with no cancellation handle.

        Identical semantics to :meth:`schedule` except that the event
        cannot be cancelled and nothing is allocated beyond the heap
        entry itself.  Use for fire-and-forget events (message delivery,
        churn transitions, periodic measurement) — they dominate event
        volume in every workload.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        heapq.heappush(self._queue, [time, self._seq, callback, args])
        self._seq += 1

    def post_after(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast-path :meth:`schedule_after` (see :meth:`post`)."""
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        self.post(self._now + delay, callback, *args)

    # ------------------------------------------------------------------
    # tombstone accounting
    # ------------------------------------------------------------------

    def _note_cancelled(self) -> None:
        """Record one cancellation; compact once tombstones dominate."""
        self._tombstones += 1
        if self._tombstones * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Drop all tombstones and re-heapify, preserving list identity.

        In-place (slice assignment) so that :meth:`run_until`'s local
        alias of the queue — and any external observer — stays valid
        when a callback's cancellations trigger compaction mid-run.
        """
        queue = self._queue
        queue[:] = [entry for entry in queue if entry[2] is not None]
        heapq.heapify(queue)
        self._tombstones = 0

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` if the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            callback = entry[2]
            if callback is None:
                self._tombstones -= 1
                continue
            entry[2] = None  # mark fired: late cancel() must not count a tombstone
            self._now = entry[0]
            self._events_processed += 1
            callback(*entry[3])
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events up to and including ``horizon``, then set the clock there.

        Events scheduled exactly at ``horizon`` fire; the clock ends at
        ``horizon`` even if the queue drains earlier.
        """
        if horizon < self._now:
            raise SchedulerError(
                f"horizon t={horizon} is before current time t={self._now}"
            )
        if self._running:
            raise SchedulerError("simulator is already running (re-entrant run)")
        self._running = True
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                entry = queue[0]
                etime = entry[0]
                if etime > horizon:
                    break
                pop(queue)
                callback = entry[2]
                if callback is None:
                    self._tombstones -= 1
                    continue
                entry[2] = None
                self._now = etime
                self._events_processed += 1
                callback(*entry[3])
                # Drain the whole same-timestamp batch without touching
                # the horizon check again; (time, seq) heap order makes
                # this byte-identical to the one-at-a-time loop.
                while queue and queue[0][0] == etime:
                    entry = pop(queue)
                    callback = entry[2]
                    if callback is None:
                        self._tombstones -= 1
                        continue
                    entry[2] = None
                    self._events_processed += 1
                    callback(*entry[3])
            self._now = horizon
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        if self._running:
            raise SchedulerError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.4f}, pending={self.pending})"
