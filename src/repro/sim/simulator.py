"""The discrete-event simulation core.

The paper evaluates its protocols "in a custom event-based simulation
environment" where events "can occur at any time within the duration of
a single shuffling period".  :class:`Simulator` provides exactly that: a
monotonic simulated clock, an event queue ordered by time, and helpers
to run until a horizon or until the queue drains.

Time is a float measured in shuffling periods (the paper's time unit).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SchedulerError
from .events import Event, EventHandle

__all__ = ["Simulator"]


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.5, fired.append, "hello")
    >>> sim.run_until(10.0)
    >>> fired
    ['hello']
    >>> sim.now
    10.0
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Event] = []
        self._seq = 0
        self._running = False
        self._events_processed = 0

    @property
    def now(self) -> float:
        """Current simulated time, in shuffling periods."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._queue)

    @property
    def events_processed(self) -> int:
        """Total number of events fired so far."""
        return self._events_processed

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``.

        Raises
        ------
        SchedulerError
            If ``time`` lies in the past.
        """
        if time < self._now:
            raise SchedulerError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(time, self._seq, callback, args, label=label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> EventHandle:
        """Schedule ``callback(*args)`` after a relative ``delay``."""
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        return self.schedule(self._now + delay, callback, *args, label=label)

    def step(self) -> bool:
        """Fire the next event.  Returns ``False`` if the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.fire()
            return True
        return False

    def run_until(self, horizon: float) -> None:
        """Run events up to and including ``horizon``, then set the clock there.

        Events scheduled exactly at ``horizon`` fire; the clock ends at
        ``horizon`` even if the queue drains earlier.
        """
        if horizon < self._now:
            raise SchedulerError(
                f"horizon t={horizon} is before current time t={self._now}"
            )
        if self._running:
            raise SchedulerError("simulator is already running (re-entrant run)")
        self._running = True
        try:
            while self._queue:
                event = self._queue[0]
                if event.time > horizon:
                    break
                heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                self._events_processed += 1
                event.fire()
            self._now = horizon
        finally:
            self._running = False

    def run(self, max_events: Optional[int] = None) -> None:
        """Run until the event queue drains (or ``max_events`` fire)."""
        if self._running:
            raise SchedulerError("simulator is already running (re-entrant run)")
        self._running = True
        fired = 0
        try:
            while self.step():
                fired += 1
                if max_events is not None and fired >= max_events:
                    break
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Simulator(now={self._now:.4f}, pending={self.pending})"
