"""Lightweight event tracing.

A :class:`Tracer` records structured trace records emitted by protocol
components.  Tracing is opt-in and cheap when disabled; experiments use
it to audit protocol behaviour, and the attack analyses use a dedicated
traffic log (:mod:`repro.privlink.traffic`) built on the same idea.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer", "NullTracer"]


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamp, a category, and free-form details."""

    time: float
    category: str
    details: Dict[str, Any]

    def __str__(self) -> str:
        parts = ", ".join(f"{key}={value}" for key, value in self.details.items())
        return f"[t={self.time:.3f}] {self.category}: {parts}"


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally capped in size."""

    def __init__(self, max_records: Optional[int] = None) -> None:
        self._records: List[TraceRecord] = []
        self._max_records = max_records
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether :meth:`record` stores entries (always true here)."""
        return True

    @property
    def dropped(self) -> int:
        """Number of records discarded due to the size cap."""
        return self._dropped

    def record(self, time: float, category: str, **details: Any) -> None:
        """Store one trace record."""
        if self._max_records is not None and len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time, category, details))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def by_category(self, category: str) -> List[TraceRecord]:
        """All records with the given category, in emission order."""
        return [record for record in self._records if record.category == category]

    def counts(self) -> Counter:
        """Number of records per category."""
        return Counter(record.category for record in self._records)

    def clear(self) -> None:
        """Drop all stored records."""
        self._records.clear()
        self._dropped = 0


class NullTracer(Tracer):
    """A tracer that discards everything; the default in hot paths."""

    def __init__(self) -> None:
        super().__init__(max_records=0)

    @property
    def enabled(self) -> bool:
        return False

    def record(self, time: float, category: str, **details: Any) -> None:
        return None
