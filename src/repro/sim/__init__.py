"""Discrete-event simulation engine.

The paper's protocols are evaluated in a custom event-based simulator
whose time unit is the shuffling period.  This package provides that
engine: :class:`~repro.sim.simulator.Simulator` (clock + event queue),
:class:`~repro.sim.process.PeriodicProcess` (repeating timers with
phase/jitter), and :class:`~repro.sim.trace.Tracer` (structured
tracing).
"""

from .clock import Clock, SimClock
from .events import Event, EventHandle
from .process import PeriodicProcess
from .simulator import Simulator
from .trace import NullTracer, Tracer, TraceRecord

__all__ = [
    "Clock",
    "Event",
    "EventHandle",
    "PeriodicProcess",
    "SimClock",
    "Simulator",
    "Tracer",
    "NullTracer",
    "TraceRecord",
]
