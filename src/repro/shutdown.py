"""Graceful SIGINT/SIGTERM handling for long-running CLIs.

Long commands (``repro node``, ``repro sweep``, ``repro bench``) must
not lose partial results when the operator or a supervisor stops them.
The contract, shared by every entry point:

* SIGINT already raises :class:`KeyboardInterrupt`; we convert SIGTERM
  to the same exception so both paths drain through one ``except``.
* The command flushes whatever it has (JSONL ledger rows, partial
  benchmark results, node logs), prints a one-line notice, and exits
  with :data:`EXIT_INTERRUPTED` — 130, the shell convention for
  "terminated by signal" (128 + SIGINT).

Use :func:`graceful_shutdown` around the command body::

    with graceful_shutdown():
        try:
            run()
        except KeyboardInterrupt:
            flush_partial()
            return EXIT_INTERRUPTED

Asyncio commands use :func:`install_async_shutdown` instead, which
registers loop-level handlers setting an :class:`asyncio.Event`.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
from typing import Iterator

__all__ = ["EXIT_INTERRUPTED", "graceful_shutdown", "install_async_shutdown"]

#: Shell convention for "killed by SIGINT" (128 + 2).
EXIT_INTERRUPTED = 130


def _raise_keyboard_interrupt(signum, frame) -> None:
    raise KeyboardInterrupt


@contextlib.contextmanager
def graceful_shutdown() -> Iterator[None]:
    """Route SIGTERM into :class:`KeyboardInterrupt` for this block.

    The previous handler is restored on exit.  In environments where
    signal handlers cannot be installed (non-main thread, restricted
    interpreter) this degrades to a no-op — SIGINT still works.
    """
    try:
        previous = signal.signal(signal.SIGTERM, _raise_keyboard_interrupt)
    except (ValueError, OSError):  # non-main thread / unsupported platform
        previous = None
        installed = False
    else:
        installed = True
    try:
        yield
    finally:
        if installed:
            signal.signal(signal.SIGTERM, previous)


def install_async_shutdown(loop: asyncio.AbstractEventLoop) -> asyncio.Event:
    """Register SIGINT/SIGTERM on an asyncio loop; returns the stop event.

    The returned event is set when either signal arrives; the command's
    main coroutine waits on it and then drains.  Platforms without
    ``add_signal_handler`` (Windows, nested loops) fall back to the
    default behaviour — SIGINT still cancels ``asyncio.run`` with
    :class:`KeyboardInterrupt`.
    """
    stop = asyncio.Event()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, ValueError, OSError):
            continue
    return stop
