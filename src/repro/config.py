"""System configuration.

:class:`SystemConfig` gathers every tunable of the overlay-maintenance
protocol and the simulation around it.  Defaults follow Table I of the
paper:

=============================================  =========
Parameter                                      Default
=============================================  =========
Number of nodes in trust graph                 1000
Trust-graph sampling parameter (f)             0.5
Mean offline time in shuffling periods (Toff)  30
Pseudonym lifetime                             3 x Toff
Size of pseudonym cache                        400
Pseudonyms exchanged during a shuffle (l)      40
Target number of overlay links per node        50
=============================================  =========

Time is measured in *shuffling periods* throughout, as in the paper.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

from .errors import ConfigError

__all__ = ["SystemConfig", "INFINITE_LIFETIME", "DEFAULT_SEED"]

#: Sentinel for pseudonyms that never expire (the paper's ``r = Infinite``).
INFINITE_LIFETIME = math.inf

#: Root seed used whenever no explicit seed (or RNG) is supplied.  Every
#: fallback generator in the library derives from this constant instead
#: of OS entropy so that "I forgot to pass rng=" still yields exactly
#: reproducible runs (enforced statically by ``repro.lint`` rule DET001).
DEFAULT_SEED = 1


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """All protocol and simulation parameters.

    Attributes
    ----------
    num_nodes:
        Number of nodes in the sampled trust graph.
    sampling_f:
        The paper's ``f`` parameter: fraction of each visited node's
        neighbors added during trust-graph sampling (0 = depth-first
        chain of invitations, 1 = full breadth-first).
    mean_offline_time:
        ``Toff``, mean time a node spends offline before rejoining, in
        shuffling periods.
    lifetime_ratio:
        ``r``, the ratio of pseudonym lifetime to ``Toff``.  May be
        :data:`INFINITE_LIFETIME` for non-expiring pseudonyms.
    cache_size:
        Capacity of each node's pseudonym cache.
    shuffle_length:
        ``l``: maximum number of pseudonyms exchanged per shuffle
        message (own pseudonym plus up to ``l - 1`` cache entries).
    target_degree:
        Target number of overlay links per node.  Each node's sampler
        size ``S`` is ``max(min_pseudonym_links, target_degree -
        trusted_degree)`` so total degree is roughly uniform.
    min_pseudonym_links:
        Lower bound on the per-node sampler size ``S``; keeps hubs from
        dropping pseudonym links entirely (0 reproduces the paper's
        "hubs do not need the extra random links").
    availability:
        Node availability ``alpha = Ton / (Ton + Toff)``; together with
        ``mean_offline_time`` it determines the mean online time.
    message_latency:
        Upper bound on simulated one-way link latency, as a fraction of
        a shuffling period.  The paper assumes ideal low-latency links.
    seed:
        Root seed for all random streams.
    sampler_mode:
        ``"slots"`` for the paper's Brahms-style sampler; ``"cache"``
        for the naive newest-cache-entries ablation.
    adaptive_lifetime:
        When true, each node sizes its pseudonym lifetimes from an EWMA
        of its own observed offline stints instead of the global
        ``lifetime_ratio x mean_offline_time`` (the paper's suggested
        per-node adaptation, Section III-C).
    adaptive_smoothing:
        EWMA weight for the adaptive policy.
    """

    num_nodes: int = 1000
    sampling_f: float = 0.5
    mean_offline_time: float = 30.0
    lifetime_ratio: float = 3.0
    cache_size: int = 400
    shuffle_length: int = 40
    target_degree: int = 50
    min_pseudonym_links: int = 0
    availability: float = 0.5
    message_latency: float = 0.05
    seed: int = DEFAULT_SEED
    sampler_mode: str = "slots"
    adaptive_lifetime: bool = False
    adaptive_smoothing: float = 0.3

    def __post_init__(self) -> None:
        if self.num_nodes < 2:
            raise ConfigError("num_nodes must be at least 2")
        if not 0.0 <= self.sampling_f <= 1.0:
            raise ConfigError("sampling_f must be in [0, 1]")
        if self.mean_offline_time <= 0:
            raise ConfigError("mean_offline_time must be positive")
        if self.lifetime_ratio <= 0:
            raise ConfigError("lifetime_ratio must be positive")
        if self.cache_size < 1:
            raise ConfigError("cache_size must be at least 1")
        if self.shuffle_length < 1:
            raise ConfigError("shuffle_length must be at least 1")
        if self.target_degree < 1:
            raise ConfigError("target_degree must be at least 1")
        if self.min_pseudonym_links < 0:
            raise ConfigError("min_pseudonym_links must be non-negative")
        if not 0.0 < self.availability < 1.0:
            raise ConfigError("availability must be strictly between 0 and 1")
        if self.message_latency < 0:
            raise ConfigError("message_latency must be non-negative")
        if self.sampler_mode not in ("slots", "cache"):
            raise ConfigError(
                "sampler_mode must be 'slots' (the paper's Brahms-style "
                "sampler) or 'cache' (the naive ablation)"
            )
        if self.adaptive_lifetime and math.isinf(self.lifetime_ratio):
            raise ConfigError(
                "adaptive_lifetime requires a finite lifetime_ratio"
            )
        if not 0.0 < self.adaptive_smoothing <= 1.0:
            raise ConfigError("adaptive_smoothing must be in (0, 1]")

    @property
    def pseudonym_lifetime(self) -> float:
        """Pseudonym lifetime in shuffling periods (``r * Toff``)."""
        if math.isinf(self.lifetime_ratio):
            return INFINITE_LIFETIME
        return self.lifetime_ratio * self.mean_offline_time

    @property
    def mean_online_time(self) -> float:
        """``Ton`` derived from availability and ``Toff``.

        From ``alpha = Ton / (Ton + Toff)`` we get
        ``Ton = alpha * Toff / (1 - alpha)``.
        """
        return self.availability * self.mean_offline_time / (1.0 - self.availability)

    def replace(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given fields changed."""
        return dataclasses.replace(self, **changes)

    @staticmethod
    def paper_defaults(availability: Optional[float] = None) -> "SystemConfig":
        """The Table I default configuration.

        Parameters
        ----------
        availability:
            Optional availability override (the paper has no default
            churn setting; most figures sweep it).
        """
        config = SystemConfig()
        if availability is not None:
            config = config.replace(availability=availability)
        return config
