"""Deterministic random-number management.

Simulation experiments must be exactly reproducible from a single seed,
yet independent subsystems (graph generation, churn, each node's gossip
decisions) must not perturb each other's random streams when one of them
changes how many numbers it draws.  This module provides named,
independently seeded substreams derived from a root seed via
``numpy.random.SeedSequence`` spawning.

Example
-------
>>> streams = RandomStreams(seed=42)
>>> churn_rng = streams.substream("churn")
>>> node_rng = streams.substream("node", 17)
>>> churn_rng.random() == RandomStreams(seed=42).substream("churn").random()
True
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

from .config import DEFAULT_SEED

__all__ = ["RandomStreams", "PSEUDONYM_BITS", "random_bits", "fallback_rng"]

#: Number of bits in a pseudonym / slot-reference value.  The paper calls
#: pseudonyms "random p-bit sequences"; we use 63 bits so values fit in a
#: signed 64-bit integer (safe for numpy vectorized distance math).
PSEUDONYM_BITS = 63

_Key = Tuple[Union[str, int], ...]


def _key_to_entropy(key: _Key) -> int:
    """Hash a substream key to a stable 128-bit integer."""
    text = "\x1f".join(str(part) for part in key)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class RandomStreams:
    """A factory of named, independent random generators.

    Parameters
    ----------
    seed:
        Root seed.  Two :class:`RandomStreams` built from the same seed
        produce identical substreams for identical keys.
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self._seed = seed

    @property
    def seed(self) -> int:
        """The root seed this stream factory was built from."""
        return self._seed

    def substream(self, *key: Union[str, int]) -> np.random.Generator:
        """Return an independent generator for the given key.

        The same ``(seed, key)`` pair always yields a generator that
        produces the same sequence, regardless of how many other
        substreams were created or used.
        """
        if not key:
            raise ValueError("substream key must not be empty")
        entropy = _key_to_entropy(key)
        seq = np.random.SeedSequence(entropy=[self._seed, entropy])
        return np.random.default_rng(seq)

    def spawn(self, *key: Union[str, int]) -> "RandomStreams":
        """Derive a child factory whose streams are independent of ours."""
        return RandomStreams(_key_to_entropy((self._seed,) + key) & ((1 << 63) - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self._seed})"


def fallback_rng(*key: Union[str, int]) -> np.random.Generator:
    """A deterministic generator for call sites given no explicit RNG.

    Library functions accepting an optional ``rng`` parameter must not
    fall back to OS entropy (``np.random.default_rng()``) — that would
    make "forgot to pass rng=" runs unreproducible, which ``repro.lint``
    rule DET001 rejects.  Instead they call this helper with a key
    naming the call site::

        if rng is None:
            rng = fallback_rng("graphs.sampling")

    The generator derives from :data:`repro.config.DEFAULT_SEED`, so two
    processes hitting the same fallback produce identical draws.  Each
    call returns a *fresh* generator: repeated rng-less invocations of
    the same function yield identical results by design (determinism
    beats variety — pass an explicit rng for independent draws).
    """
    return RandomStreams(DEFAULT_SEED).substream("fallback", *(key or ("default",)))


def random_bits(rng: np.random.Generator, bits: int = PSEUDONYM_BITS) -> int:
    """Draw a uniform random ``bits``-bit integer from ``rng``."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    value = 0
    remaining = bits
    while remaining > 0:
        chunk = min(remaining, 32)
        value = (value << chunk) | int(rng.integers(0, 1 << chunk))
        remaining -= chunk
    return value
