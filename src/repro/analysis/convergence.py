"""Convergence analysis across seeds.

Section V reports convergence speed from a single run; this module
quantifies it properly: repeated runs with independent seeds, the
distribution of times-to-connectivity, and a summary suitable for
tables (mean, standard deviation, worst case, failure count).
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

import networkx as nx
import numpy as np

from ..config import SystemConfig
from ..core import Overlay
from ..errors import ExperimentError
from ..metrics import MetricsCollector

__all__ = ["ConvergenceSummary", "measure_convergence"]


@dataclasses.dataclass(frozen=True)
class ConvergenceSummary:
    """Distribution of convergence times over repeated runs."""

    threshold: float
    horizon: float
    times: tuple
    failures: int

    @property
    def runs(self) -> int:
        """Total runs measured."""
        return len(self.times) + self.failures

    @property
    def mean(self) -> Optional[float]:
        """Mean convergence time of the successful runs."""
        if not self.times:
            return None
        return float(np.mean(self.times))

    @property
    def std(self) -> Optional[float]:
        """Standard deviation of the successful runs."""
        if not self.times:
            return None
        return float(np.std(self.times))

    @property
    def worst(self) -> Optional[float]:
        """Slowest successful convergence."""
        if not self.times:
            return None
        return float(max(self.times))

    def __str__(self) -> str:
        if not self.times:
            return (
                f"never converged below {self.threshold:g} within "
                f"{self.horizon:g} sp ({self.failures} runs)"
            )
        return (
            f"converged below {self.threshold:g} in "
            f"{self.mean:.1f} ± {self.std:.1f} sp "
            f"(worst {self.worst:.1f}, {self.failures}/{self.runs} failures)"
        )


def measure_convergence(
    trust_graph: nx.Graph,
    config: SystemConfig,
    seeds: Sequence[int],
    threshold: float = 0.05,
    horizon: float = 300.0,
    collector_interval: float = 1.0,
) -> ConvergenceSummary:
    """Time for the overlay to first dip below ``threshold`` disconnected.

    Each seed gets an independent full system (protocol randomness and
    churn).  Runs that never dip below the threshold within ``horizon``
    count as failures.
    """
    if not seeds:
        raise ExperimentError("need at least one seed")
    if not 0.0 < threshold < 1.0:
        raise ExperimentError("threshold must be in (0, 1)")
    times: List[float] = []
    failures = 0
    for seed in seeds:
        overlay = Overlay.build(trust_graph, config.replace(seed=seed))
        collector = MetricsCollector(overlay, interval=collector_interval)
        overlay.start()
        collector.start()
        overlay.run_until(horizon)
        converged_at = collector.convergence_time(threshold=threshold)
        if converged_at is None:
            failures += 1
        else:
            times.append(converged_at)
    return ConvergenceSummary(
        threshold=threshold,
        horizon=horizon,
        times=tuple(times),
        failures=failures,
    )
