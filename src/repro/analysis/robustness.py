"""Structural robustness analysis beyond the paper's churn metrics.

The paper's related-work section highlights the "celebrity attack":
compromising (or losing) a hub of the social graph devastates a
trust-graph overlay, and MCONs introduce degree caps specifically to
resist it.  The rewired overlay resists it by construction — its degree
distribution is near-uniform — and this module quantifies that:

* :func:`targeted_failure_curve` — connectivity as the highest-degree
  (or random) nodes are removed;
* :func:`articulation_ratio` — fraction of nodes whose removal
  disconnects the graph (single points of failure);
* :func:`k_core_profile` — how much of the graph survives at each
  core order (deeper cores = more redundant connectivity);
* :func:`edge_connectivity_sample` — sampled pairwise edge
  connectivity (min-cut widths between random pairs).

All functions are pure graph analyses; feed them any snapshot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..errors import GraphError
from ..graphs import fraction_disconnected
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis, resolve_graph_backend
from ..rng import fallback_rng

__all__ = [
    "FailurePoint",
    "targeted_failure_curve",
    "articulation_ratio",
    "k_core_profile",
    "edge_connectivity_sample",
]


@dataclasses.dataclass(frozen=True)
class FailurePoint:
    """Connectivity after removing a fraction of nodes."""

    removed_fraction: float
    removed_count: int
    disconnected: float
    largest_component_fraction: float


def targeted_failure_curve(
    graph: nx.Graph,
    fractions: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.3),
    strategy: str = "degree",
    rng: Optional[np.random.Generator] = None,
    removal_order: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> List[FailurePoint]:
    """Connectivity of ``graph`` as nodes are progressively removed.

    Parameters
    ----------
    graph:
        The graph under attack (not modified).
    fractions:
        Cumulative node fractions to remove, in increasing order.
    strategy:
        ``"degree"`` removes the highest-degree nodes first (the
        celebrity attack); ``"random"`` removes uniformly (plain
        failures); ``"custom"`` follows ``removal_order``.
    rng:
        Randomness for the random strategy.
    removal_order:
        Explicit removal sequence for ``strategy="custom"`` — e.g. the
        *trust graph's* hub order applied to the overlay, modeling the
        compromise of the same celebrity users in both topologies.
    backend:
        Metric backend override; the default ``"fast"`` path converts
        the graph to a flat snapshot once and re-induces survivors with
        a mask per fraction instead of copying and mutating an
        ``nx.Graph``.  Values are identical either way.

    Returns
    -------
    list of FailurePoint
        One entry per requested fraction.  ``disconnected`` follows the
        paper's metric (fraction of surviving nodes outside the largest
        component).
    """
    if strategy not in ("degree", "random", "custom"):
        raise GraphError(f"unknown strategy {strategy!r}")
    if any(earlier > later for earlier, later in zip(fractions, fractions[1:])):
        raise GraphError("fractions must be non-decreasing")
    if fractions and (fractions[0] < 0.0 or fractions[-1] >= 1.0):
        raise GraphError("fractions must lie in [0, 1)")
    total = graph.number_of_nodes()
    if total == 0:
        raise GraphError("graph is empty")

    if strategy == "degree":
        order = [
            node
            for node, _ in sorted(
                graph.degree(), key=lambda pair: (-pair[1], pair[0])
            )
        ]
    elif strategy == "custom":
        if removal_order is None:
            raise GraphError("strategy='custom' requires removal_order")
        order = [node for node in removal_order if node in graph]
        if len(order) < int(max(fractions, default=0.0) * total):
            raise GraphError("removal_order too short for requested fractions")
    else:
        if rng is None:
            rng = fallback_rng("analysis.robustness.failure")
        order = list(graph.nodes())
        rng.shuffle(order)

    # The flat-snapshot path needs non-negative integer labels to index
    # the survivor mask; anything else falls back to the reference path.
    use_fast = resolve_graph_backend(backend) == "fast" and all(
        isinstance(node, (int, np.integer)) and node >= 0
        for node in graph.nodes()
    )
    points: List[FailurePoint] = []
    removed_so_far = 0
    if use_fast:
        base = FlatSnapshot.from_networkx(graph)
        keep = np.ones(int(base.node_ids[-1]) + 1, dtype=bool)
        for fraction in fractions:
            target_removed = int(fraction * total)
            while removed_so_far < target_removed:
                keep[order[removed_so_far]] = False
                removed_so_far += 1
            survivors = total - removed_so_far
            if survivors == 0:
                points.append(FailurePoint(fraction, removed_so_far, 1.0, 0.0))
                continue
            analysis = SnapshotAnalysis(base.induced_by_labels(keep))
            disconnected = analysis.fraction_disconnected()
            largest = (1.0 - disconnected) * survivors / total
            points.append(
                FailurePoint(
                    removed_fraction=fraction,
                    removed_count=removed_so_far,
                    disconnected=disconnected,
                    largest_component_fraction=largest,
                )
            )
        return points
    working = graph.copy()
    for fraction in fractions:
        target_removed = int(fraction * total)
        while removed_so_far < target_removed:
            working.remove_node(order[removed_so_far])
            removed_so_far += 1
        survivors = working.number_of_nodes()
        if survivors == 0:
            points.append(FailurePoint(fraction, removed_so_far, 1.0, 0.0))
            continue
        disconnected = fraction_disconnected(working)
        largest = (1.0 - disconnected) * survivors / total
        points.append(
            FailurePoint(
                removed_fraction=fraction,
                removed_count=removed_so_far,
                disconnected=disconnected,
                largest_component_fraction=largest,
            )
        )
    return points


def articulation_ratio(graph: nx.Graph) -> float:
    """Fraction of nodes that are articulation points (cut vertices).

    High ratios mean many single points of failure — typical of trust
    graphs, rare in the rewired overlay.
    """
    total = graph.number_of_nodes()
    if total == 0:
        raise GraphError("graph is empty")
    if total == 1:
        return 0.0
    # Articulation points are defined per connected component.
    count = 0
    for component in nx.connected_components(graph):
        subgraph = graph.subgraph(component)
        count += sum(1 for _ in nx.articulation_points(subgraph))
    return count / total


def k_core_profile(graph: nx.Graph, max_k: int = 10) -> Dict[int, float]:
    """Fraction of nodes surviving in each k-core, for k = 1..max_k.

    The k-core is the maximal subgraph of minimum degree k; deep cores
    indicate redundant connectivity that survives many failures.
    """
    if max_k < 1:
        raise GraphError("max_k must be at least 1")
    total = graph.number_of_nodes()
    if total == 0:
        raise GraphError("graph is empty")
    simple = nx.Graph(graph)
    simple.remove_edges_from(nx.selfloop_edges(simple))
    core_numbers = nx.core_number(simple)
    profile: Dict[int, float] = {}
    for k in range(1, max_k + 1):
        profile[k] = sum(1 for core in core_numbers.values() if core >= k) / total
    return profile


def edge_connectivity_sample(
    graph: nx.Graph,
    pairs: int = 20,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[float, int]:
    """Mean and minimum edge connectivity over random node pairs.

    Edge connectivity between two nodes is the number of edge-disjoint
    paths joining them — the width of the min cut an adversary (or
    churn) must sever to separate them.
    """
    if pairs < 1:
        raise GraphError("pairs must be at least 1")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise GraphError("need at least two nodes")
    if rng is None:
        rng = fallback_rng("analysis.robustness.edge-connectivity")
    values = []
    for _ in range(pairs):
        u, v = rng.choice(len(nodes), size=2, replace=False)
        u, v = nodes[int(u)], nodes[int(v)]
        values.append(nx.edge_connectivity(graph, u, v))
    return float(np.mean(values)), int(min(values))
