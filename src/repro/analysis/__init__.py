"""Post-hoc analyses: structural robustness (targeted failures,
articulation points, k-cores, min-cut widths) and seed-replicated
convergence measurement.
"""

from .convergence import ConvergenceSummary, measure_convergence
from .robustness import (
    FailurePoint,
    articulation_ratio,
    edge_connectivity_sample,
    k_core_profile,
    targeted_failure_curve,
)

__all__ = [
    "FailurePoint",
    "targeted_failure_curve",
    "articulation_ratio",
    "k_core_profile",
    "edge_connectivity_sample",
    "ConvergenceSummary",
    "measure_convergence",
]
