"""Random-graph baselines.

The paper compares its overlay against Erdős–Rényi graphs "of similar
size" (same node count and comparable edge count / average fan-out).
We provide G(n, m) — the fixed-edge-count variant, which makes the
comparison exact — plus a helper that matches an existing graph's node
and edge counts, and a regular-random baseline used by ablations.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..errors import GraphError
from ..rng import fallback_rng

__all__ = ["erdos_renyi_gnm", "matching_random_graph", "random_regular"]


def erdos_renyi_gnm(
    num_nodes: int,
    num_edges: int,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """Sample a uniform random graph with exactly ``num_edges`` edges.

    Edges are drawn without replacement from all node pairs, using
    rejection sampling (fast in the sparse regime this library uses).
    """
    if rng is None:
        rng = fallback_rng("graphs.random_graphs.gnm")
    if num_nodes < 1:
        raise GraphError("num_nodes must be at least 1")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise GraphError(
            f"num_edges {num_edges} exceeds maximum {max_edges} for "
            f"{num_nodes} nodes"
        )

    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    if num_edges == 0:
        return graph

    if num_edges > max_edges // 2:
        # Dense regime: enumerate and choose (rare in our experiments).
        pairs = [(u, v) for u in range(num_nodes) for v in range(u + 1, num_nodes)]
        indices = rng.choice(len(pairs), size=num_edges, replace=False)
        graph.add_edges_from(pairs[int(index)] for index in indices)
        return graph

    added = 0
    while added < num_edges:
        u = int(rng.integers(0, num_nodes))
        v = int(rng.integers(0, num_nodes))
        if u == v or graph.has_edge(u, v):
            continue
        graph.add_edge(u, v)
        added += 1
    return graph


def matching_random_graph(
    reference: nx.Graph,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """An Erdős–Rényi graph with the same node and edge counts as ``reference``.

    This is the paper's "random graph with the same number of nodes and
    edges" baseline; node labels are ``0..n-1`` regardless of the
    reference's labels.
    """
    return erdos_renyi_gnm(
        reference.number_of_nodes(), reference.number_of_edges(), rng=rng
    )


def random_regular(
    num_nodes: int,
    degree: int,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """A random ``degree``-regular graph (configuration-model style).

    Used by ablations to compare the overlay against the ideal
    fixed-fanout topology.  Retries the pairing until it is simple;
    falls back to edge swaps if stubs cannot be matched.
    """
    if rng is None:
        rng = fallback_rng("graphs.random_graphs.regular")
    if degree >= num_nodes:
        raise GraphError("degree must be smaller than num_nodes")
    if (num_nodes * degree) % 2 != 0:
        raise GraphError("num_nodes * degree must be even")

    for _ in range(100):
        stubs = np.repeat(np.arange(num_nodes), degree)
        rng.shuffle(stubs)
        graph = nx.Graph()
        graph.add_nodes_from(range(num_nodes))
        ok = True
        for index in range(0, len(stubs), 2):
            u = int(stubs[index])
            v = int(stubs[index + 1])
            if u == v or graph.has_edge(u, v):
                ok = False
                break
            graph.add_edge(u, v)
        if ok:
            return graph
    raise GraphError(
        f"failed to build a simple {degree}-regular graph on {num_nodes} nodes"
    )
