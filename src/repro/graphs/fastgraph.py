"""Flat-array graph kernels for the measurement hot path.

The per-sample metrics (disconnected fraction, normalized path length,
degree histogram — paper Section IV-C) dominated run time once the
event loop and sweeps were optimized: every sample rebuilt an
``nx.Graph``, recomputed the largest component up to three times, and
ran pure-Python BFS per source.  This module replaces that pipeline
with numpy kernels over a CSR snapshot:

* :class:`FlatSnapshot` — an immutable compressed-sparse-row view of an
  undirected simple graph (sorted node ids, sorted neighbor lists).
* :class:`SnapshotAnalysis` — computes the component labeling **once**
  (union-find over the edge arrays) and serves every metric from it;
  path lengths use a batched multi-source BFS whose frontiers expand
  with numpy gathers instead of per-node Python loops.

Exactness contract
------------------
Every value produced here is **bit-identical** to the reference
implementations in :mod:`repro.graphs.metrics` on the same graph:

* components are exact (union-find), and the largest component is the
  same canonical list (ascending nodes; ties broken toward the
  component containing the smallest node) that
  :func:`~repro.graphs.metrics.largest_component` returns;
* BFS distances are integers, accumulated as Python ints, and the
  final averages use the same ``total / pairs`` and
  ``average / size * total_nodes`` float expressions;
* source sampling consumes the RNG identically
  (``rng.choice(size, size=k, replace=False)`` on the same ``size``),
  so a shared stream stays in lockstep across backends.

``tests/test_fastgraph.py`` pins the contract differentially against
networkx on random, social, and churned-overlay graphs.

Snapshot graphs are *simple*: self-loops are skipped on conversion
(overlay snapshots never contain them by construction).

Backend selection
-----------------
:func:`get_graph_backend` resolves the active backend: a programmatic
override (:func:`set_graph_backend`), else the ``REPRO_GRAPH_BACKEND``
environment variable, else ``"fast"``.  The networkx path is kept as
the executable reference implementation.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from ..errors import GraphError
from ..rng import fallback_rng

__all__ = [
    "GRAPH_BACKENDS",
    "get_graph_backend",
    "set_graph_backend",
    "resolve_graph_backend",
    "FlatSnapshot",
    "SnapshotAnalysis",
]

#: Valid backend names: the numpy kernels and the networkx reference.
GRAPH_BACKENDS = ("fast", "networkx")

_BACKEND_ENV = "REPRO_GRAPH_BACKEND"
_backend_override: Optional[str] = None


def _validate_backend(name: str) -> str:
    if name not in GRAPH_BACKENDS:
        raise GraphError(
            f"unknown graph backend {name!r}; expected one of {GRAPH_BACKENDS}"
        )
    return name


def get_graph_backend() -> str:
    """The active metric backend: ``"fast"`` or ``"networkx"``.

    Resolution order: :func:`set_graph_backend` override, then the
    ``REPRO_GRAPH_BACKEND`` environment variable, then ``"fast"``.
    Both backends produce bit-identical metric values; the knob exists
    for differential testing and as an escape hatch.
    """
    if _backend_override is not None:
        return _backend_override
    return _validate_backend(os.environ.get(_BACKEND_ENV, "fast"))


def set_graph_backend(name: Optional[str]) -> None:
    """Override the backend process-wide (``None`` restores defaults)."""
    global _backend_override
    _backend_override = None if name is None else _validate_backend(name)


def resolve_graph_backend(override: Optional[str] = None) -> str:
    """A call-site backend choice: explicit ``override`` or the default."""
    if override is not None:
        return _validate_backend(override)
    return get_graph_backend()


_EMPTY_INT = np.zeros(0, dtype=np.int64)


class FlatSnapshot:
    """CSR view of an undirected simple graph with integer node labels.

    Attributes
    ----------
    node_ids:
        Original node labels, ascending.  Position ``i`` in every other
        array refers to ``node_ids[i]``.
    indptr, indices:
        CSR adjacency over positions; each neighbor list is ascending.
    edge_u, edge_v:
        Deduplicated undirected edge list over positions with
        ``edge_u < edge_v`` — the union-find input, kept so component
        labeling never re-derives edges from the CSR arrays.
    """

    __slots__ = ("node_ids", "indptr", "indices", "edge_u", "edge_v")

    def __init__(
        self,
        node_ids: np.ndarray,
        indptr: np.ndarray,
        indices: np.ndarray,
        edge_u: np.ndarray,
        edge_v: np.ndarray,
    ) -> None:
        self.node_ids = node_ids
        self.indptr = indptr
        self.indices = indices
        self.edge_u = edge_u
        self.edge_v = edge_v

    @property
    def num_nodes(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.node_ids)

    @property
    def num_edges(self) -> int:
        """Number of (undirected, deduplicated) edges."""
        return len(self.edge_u)

    def degrees(self) -> np.ndarray:
        """Degree of every position (int64)."""
        return np.diff(self.indptr)

    @classmethod
    def from_edge_positions(
        cls, node_ids: np.ndarray, a: np.ndarray, b: np.ndarray
    ) -> "FlatSnapshot":
        """Assemble a snapshot from raw endpoint-position arrays.

        ``a``/``b`` are parallel arrays of edge endpoints given as
        positions into ``node_ids``; duplicates and orientation are
        normalized here, self-loops must already be excluded.
        """
        node_ids = np.ascontiguousarray(node_ids, dtype=np.int64)
        k = len(node_ids)
        if len(a):
            lo = np.minimum(a, b).astype(np.int64, copy=False)
            hi = np.maximum(a, b).astype(np.int64, copy=False)
            key = np.unique(lo * k + hi)
            lo = key // k
            hi = key % k
        else:
            lo = _EMPTY_INT
            hi = _EMPTY_INT
        degree = np.bincount(lo, minlength=k) + np.bincount(hi, minlength=k)
        indptr = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(degree, dtype=np.int64))
        )
        src = np.concatenate((lo, hi))
        dst = np.concatenate((hi, lo))
        order = np.lexsort((dst, src))
        return cls(node_ids, indptr, dst[order], lo, hi)

    @classmethod
    def from_networkx(cls, graph: nx.Graph) -> "FlatSnapshot":
        """Convert an integer-labeled :class:`nx.Graph` (reference path).

        Self-loops are skipped: snapshot graphs are simple by
        construction, and the metric kernels assume it.
        """
        nodes = np.array(sorted(graph.nodes()), dtype=np.int64)
        index = {int(label): position for position, label in enumerate(nodes.tolist())}
        endpoint_a: List[int] = []
        endpoint_b: List[int] = []
        for u, v in graph.edges():
            if u == v:
                continue
            endpoint_a.append(index[int(u)])
            endpoint_b.append(index[int(v)])
        return cls.from_edge_positions(
            nodes,
            np.array(endpoint_a, dtype=np.int64),
            np.array(endpoint_b, dtype=np.int64),
        )

    def induced(self, keep: np.ndarray) -> "FlatSnapshot":
        """The subgraph induced by a boolean mask over positions."""
        keep = np.asarray(keep, dtype=bool)
        remap = np.cumsum(keep, dtype=np.int64) - 1
        mask = keep[self.edge_u] & keep[self.edge_v]
        return FlatSnapshot.from_edge_positions(
            self.node_ids[keep],
            remap[self.edge_u[mask]],
            remap[self.edge_v[mask]],
        )

    def induced_by_labels(self, keep_labels: np.ndarray) -> "FlatSnapshot":
        """The subgraph induced by a boolean mask indexed by node label.

        ``keep_labels[label]`` says whether that node survives; labels
        outside the mask's range are dropped.  This is the shape churn
        masks come in (:func:`repro.churn.stationary_online_mask`).
        """
        keep_labels = np.asarray(keep_labels, dtype=bool)
        in_range = self.node_ids < len(keep_labels)
        keep = np.zeros(self.num_nodes, dtype=bool)
        keep[in_range] = keep_labels[self.node_ids[in_range]]
        return self.induced(keep)


def _component_labels(num_nodes: int, edge_u: np.ndarray, edge_v: np.ndarray) -> np.ndarray:
    """Union-find component labels; each label is the component's
    smallest position (which makes the labeling canonical)."""
    parent = list(range(num_nodes))
    for a, b in zip(edge_u.tolist(), edge_v.tolist()):
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        while parent[b] != b:
            parent[b] = parent[parent[b]]
            b = parent[b]
        if a == b:
            continue
        # Union by minimum root: the root of every tree stays the
        # smallest member of its component, so final labels are
        # canonical without a relabeling pass.
        if a < b:
            parent[b] = a
        else:
            parent[a] = b
    for start in range(num_nodes):
        root = start
        while parent[root] != root:
            root = parent[root]
        node = start
        while parent[node] != root:
            parent[node], node = root, parent[node]
    return np.array(parent, dtype=np.int64)


def _popcount_sum(bits: np.ndarray) -> int:
    """Total number of set bits across a uint64 array."""
    if hasattr(np, "bitwise_count"):
        return int(np.bitwise_count(bits).sum())
    return int(np.unpackbits(bits.view(np.uint8)).sum())  # pragma: no cover


def _bfs_distance_totals(
    indptr: np.ndarray, indices: np.ndarray, sources: np.ndarray
) -> Tuple[int, int]:
    """Batched multi-source BFS: (sum of distances, reached pairs).

    Up to 64 sources run simultaneously as bits of one ``uint64`` per
    node (more sources process in chunks of 64).  Each level expands
    every frontier at once: gather the per-node bit masks along the CSR
    ``indices`` array and OR-reduce them per adjacency row
    (``bitwise_or.reduceat``), so a level costs O(edges) regardless of
    the source count.  Distances are exact integers (BFS levels), so
    the totals match the per-source Python BFS bit for bit.
    """
    num_nodes = len(indptr) - 1
    num_sources = len(sources)
    if num_sources == 0 or num_nodes == 0 or len(indices) == 0:
        return 0, 0
    sources = np.asarray(sources, dtype=np.int64)
    # reduceat needs in-range segment starts; rows whose start would
    # fall off the end are degree-0 and get zeroed below anyway.
    row_starts = np.minimum(indptr[:-1], len(indices) - 1)
    empty_rows = np.flatnonzero(np.diff(indptr) == 0)
    total = 0
    reached = 0
    for chunk_start in range(0, num_sources, 64):
        chunk = sources[chunk_start : chunk_start + 64]
        frontier = np.zeros(num_nodes, dtype=np.uint64)
        frontier[chunk] = np.left_shift(
            np.uint64(1), np.arange(len(chunk), dtype=np.uint64)
        )
        visited = frontier.copy()
        level = 0
        while True:
            level += 1
            expanded = np.bitwise_or.reduceat(frontier[indices], row_starts)
            expanded[empty_rows] = 0
            new = expanded & ~visited
            newly = _popcount_sum(new)
            if newly == 0:
                break
            visited |= new
            total += level * newly
            reached += newly
            frontier = new
    return total, reached


class SnapshotAnalysis:
    """One component labeling shared by every metric of one snapshot.

    Construct once per snapshot per sample; the union-find pass runs
    lazily on first use and is reused by the disconnected fraction,
    path length, and component queries (``labelings_run`` counts the
    passes — tests assert it stays at one).
    """

    __slots__ = (
        "snapshot",
        "labelings_run",
        "_labels",
        "_largest_label",
        "_largest_size",
        "_component_count",
    )

    def __init__(self, snapshot: FlatSnapshot) -> None:
        self.snapshot = snapshot
        #: Number of union-find passes executed (expected: at most 1).
        self.labelings_run = 0
        self._labels: Optional[np.ndarray] = None
        self._largest_label = -1
        self._largest_size = 0
        self._component_count = 0

    def _ensure_labels(self) -> np.ndarray:
        labels = self._labels
        if labels is None:
            self.labelings_run += 1
            snap = self.snapshot
            labels = _component_labels(snap.num_nodes, snap.edge_u, snap.edge_v)
            self._labels = labels
            if snap.num_nodes:
                sizes = np.bincount(labels, minlength=snap.num_nodes)
                self._largest_size = int(sizes.max())
                # Labels are minimum members, so the first position with
                # a maximal size is the canonical tie-break (smallest
                # node wins among equally large components).
                self._largest_label = int(
                    np.flatnonzero(sizes == self._largest_size)[0]
                )
                self._component_count = int(np.count_nonzero(sizes))
        return labels

    def component_labels(self) -> np.ndarray:
        """Per-position component label (the component's smallest position)."""
        return self._ensure_labels()

    def component_count(self) -> int:
        """Number of connected components (0 for the empty graph)."""
        self._ensure_labels()
        return self._component_count

    def largest_component_size(self) -> int:
        """Size of the largest component (0 for the empty graph)."""
        self._ensure_labels()
        return self._largest_size

    def largest_component_nodes(self) -> np.ndarray:
        """Node labels of the canonical largest component, ascending.

        Identical (as a list) to
        :func:`repro.graphs.metrics.largest_component` on the same
        graph.
        """
        labels = self._ensure_labels()
        if self.snapshot.num_nodes == 0:
            return _EMPTY_INT
        return self.snapshot.node_ids[labels == self._largest_label]

    def components(self) -> List[np.ndarray]:
        """Every component's node labels, ordered by smallest member."""
        labels = self._ensure_labels()
        if self.snapshot.num_nodes == 0:
            return []
        order = np.argsort(labels, kind="stable")
        sorted_labels = labels[order]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        groups = np.split(self.snapshot.node_ids[order], boundaries)
        return list(groups)

    def fraction_disconnected(self) -> float:
        """Fraction of nodes outside the largest component (empty -> 0)."""
        n = self.snapshot.num_nodes
        if n == 0:
            return 0.0
        self._ensure_labels()
        return 1.0 - self._largest_size / n

    def degree_histogram(self) -> Dict[int, int]:
        """Map of degree -> node count; equal to the networkx dict."""
        degrees = self.snapshot.degrees()
        if degrees.size == 0:
            return {}
        counts = np.bincount(degrees)
        return {
            int(degree): int(count)
            for degree, count in enumerate(counts.tolist())
            if count
        }

    def degree_sequence(self) -> np.ndarray:
        """Sorted (descending) degree sequence."""
        return np.sort(self.snapshot.degrees())[::-1]

    def average_path_length(
        self,
        sample_sources: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """Mean pairwise BFS distance in the largest component.

        Mirrors :func:`repro.graphs.metrics.average_path_length`
        exactly, including its rng-less fallback hazard (see that
        docstring): sources are positions sampled from the canonical
        component list with the same RNG consumption.
        """
        labels = self._ensure_labels()
        size = self._largest_size
        if size < 2:
            return 0.0
        component_positions = np.flatnonzero(labels == self._largest_label)
        if sample_sources is not None and sample_sources < size:
            if rng is None:
                rng = fallback_rng("graphs.metrics.path-sources")
            chosen = rng.choice(size, size=sample_sources, replace=False)
            sources = component_positions[chosen.astype(np.int64)]
        else:
            sources = component_positions
        total, pairs = _bfs_distance_totals(
            self.snapshot.indptr, self.snapshot.indices, sources
        )
        if pairs == 0:
            return 0.0
        return total / pairs

    def normalized_path_length(
        self,
        total_nodes: int,
        sample_sources: Optional[int] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> float:
        """The paper's normalized path length, reusing this labeling."""
        if total_nodes < 1:
            raise GraphError("total_nodes must be at least 1")
        self._ensure_labels()
        if self._largest_size < 2:
            return float(total_nodes)
        average = self.average_path_length(sample_sources=sample_sources, rng=rng)
        return average / self._largest_size * total_nodes
