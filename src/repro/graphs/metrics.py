"""Graph-structure metrics (Section IV-C).

The paper measures robustness through three undirected-graph metrics:

* **Connectivity** — the fraction of (online) nodes outside the largest
  connected component.
* **Normalized average path length** — the average shortest-path length
  within the largest connected component, divided by the component size
  and multiplied by the *total* number of nodes (including offline
  ones).  The normalization prevents heavily partitioned graphs from
  reporting misleadingly short paths.
* **Degree distribution** over online nodes.

All functions here are pure: they take a :class:`networkx.Graph`
snapshot plus optional context (total node count, RNG for sampling) and
return plain numbers/arrays.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..errors import GraphError
from ..rng import fallback_rng

__all__ = [
    "largest_component",
    "fraction_disconnected",
    "average_path_length",
    "normalized_path_length",
    "degree_histogram",
    "degree_sequence",
    "clustering_coefficient",
    "powerlaw_exponent_estimate",
]


def largest_component(graph: nx.Graph) -> List[int]:
    """Nodes of the largest connected component (empty graph -> []).

    The result is canonical: nodes ascending, and among equally large
    components the one containing the smallest node wins.  Path-length
    estimators index into this list with sampled positions, so the
    ordering is part of the reproducibility contract — the fastgraph
    backend produces the identical list from its union-find labels.
    """
    if graph.number_of_nodes() == 0:
        return []
    best = max(
        nx.connected_components(graph),
        key=lambda component: (len(component), -min(component)),
    )
    return sorted(best)


def fraction_disconnected(
    graph: nx.Graph, component: Optional[List[int]] = None
) -> float:
    """Fraction of the graph's nodes outside its largest component.

    With the convention of the paper, the graph passed here is the
    snapshot restricted to online nodes; a connected snapshot yields 0.
    An empty graph yields 0 by convention (nothing is disconnected).
    ``component`` may carry a precomputed :func:`largest_component`
    result so one labeling pass serves several metrics.
    """
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    if component is None:
        component = largest_component(graph)
    return 1.0 - len(component) / n


def _bfs_distance_sum(
    adjacency: Dict[int, List[int]], source: int
) -> Tuple[int, int]:
    """Sum of BFS distances from ``source`` and number of reached nodes."""
    distance = {source: 0}
    queue = deque([source])
    total = 0
    while queue:
        node = queue.popleft()
        base = distance[node]
        for neighbor in adjacency[node]:
            if neighbor not in distance:
                distance[neighbor] = base + 1
                total += base + 1
                queue.append(neighbor)
    return total, len(distance) - 1


def average_path_length(
    graph: nx.Graph,
    sample_sources: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    component: Optional[List[int]] = None,
) -> float:
    """Average shortest-path length in the largest connected component.

    Parameters
    ----------
    graph:
        Snapshot graph (any number of components; only the largest is
        measured).
    sample_sources:
        If given, estimate the average from BFS trees rooted at this
        many uniformly sampled sources instead of all nodes.  The
        estimate is unbiased; experiments use it to keep large sweeps
        affordable.
    rng:
        Randomness for source sampling; defaults to a seeded fallback
        generator so estimates stay reproducible without it.

        .. warning::
           The fallback is re-seeded identically on **every call**: two
           rng-less calls sample the *same* BFS sources.  That keeps a
           single estimate reproducible, but a time series built from
           repeated rng-less calls is correlated — every sample reuses
           one source set, so source-sampling noise never averages out
           across the series.  Callers that sample repeatedly must own
           a persistent stream and pass it in each time
           (:class:`~repro.metrics.MetricsCollector` does exactly
           this with ``overlay.substream("collector")``).
    component:
        Precomputed :func:`largest_component` result (must come from
        that function — the canonical ordering maps sampled indices to
        sources).

    Returns
    -------
    float
        Mean pairwise distance, or 0.0 for components of fewer than two
        nodes.
    """
    if component is None:
        component = largest_component(graph)
    size = len(component)
    if size < 2:
        return 0.0

    adjacency = {node: list(graph.neighbors(node)) for node in component}
    if sample_sources is not None and sample_sources < size:
        if rng is None:
            rng = fallback_rng("graphs.metrics.path-sources")
        indices = rng.choice(size, size=sample_sources, replace=False)
        sources = [component[int(index)] for index in indices]
    else:
        sources = component

    total = 0
    pairs = 0
    for source in sources:
        source_total, reached = _bfs_distance_sum(adjacency, source)
        total += source_total
        pairs += reached
    if pairs == 0:
        return 0.0
    return total / pairs


def normalized_path_length(
    graph: nx.Graph,
    total_nodes: int,
    sample_sources: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
    component: Optional[List[int]] = None,
) -> float:
    """The paper's normalized average path length.

    ``avg_path_length(largest component) / |component| * total_nodes``
    where ``total_nodes`` counts every node in the system, online or
    offline.  A heavily partitioned snapshot (small largest component)
    is thus penalized rather than rewarded for its short internal paths.

    See :func:`average_path_length` for the rng-less sampling hazard;
    ``component`` reuses a precomputed :func:`largest_component` list.
    """
    if total_nodes < 1:
        raise GraphError("total_nodes must be at least 1")
    if component is None:
        component = largest_component(graph)
    component_size = len(component)
    if component_size < 2:
        # Degenerate snapshot: no measurable paths; report the worst case
        # proportional to the graph scale so plots remain monotone.
        return float(total_nodes)
    average = average_path_length(
        graph, sample_sources=sample_sources, rng=rng, component=component
    )
    return average / component_size * total_nodes


def degree_sequence(graph: nx.Graph) -> np.ndarray:
    """Sorted (descending) degree sequence as an integer array."""
    return np.array(sorted((degree for _, degree in graph.degree()), reverse=True))


def degree_histogram(graph: nx.Graph) -> Dict[int, int]:
    """Map of degree -> number of nodes with that degree."""
    histogram: Dict[int, int] = {}
    for _, degree in graph.degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def clustering_coefficient(graph: nx.Graph) -> float:
    """Average local clustering coefficient (0 for empty graphs)."""
    if graph.number_of_nodes() == 0:
        return 0.0
    return nx.average_clustering(graph)


def powerlaw_exponent_estimate(degrees: Sequence[int]) -> float:
    """Crude maximum-likelihood power-law exponent of a degree sample.

    Uses the continuous Hill estimator
    ``alpha = 1 + n / sum(ln(d_i / d_min))`` over degrees >= d_min
    (d_min fixed at the smallest positive degree).  Good enough to test
    that generated graphs are heavy-tailed; not a substitute for a full
    Clauset–Shalizi–Newman fit.
    """
    positive = np.array([degree for degree in degrees if degree > 0], dtype=float)
    if positive.size < 2:
        raise GraphError("need at least two positive degrees")
    d_min = positive.min()
    logs = np.log(positive / d_min)
    total = logs.sum()
    if total <= 0:
        raise GraphError("degenerate degree sequence (all degrees equal)")
    return 1.0 + positive.size / total
