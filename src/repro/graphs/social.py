"""Synthetic social-graph generation.

The paper draws trust graphs from the Wilson et al. Facebook crawl
(~3M nodes, 28M edges, power-law degree distribution).  That dataset is
not redistributable, so we substitute a synthetic generator that
reproduces the three structural properties the evaluation depends on:

1. **Power-law degree distribution** — produced by preferential
   attachment.
2. **High clustering** — produced by triad closure: with probability
   ``triad_probability`` a new edge closes a triangle with a neighbor
   of the previously chosen target (the Holme–Kim construction).
3. **Longer path lengths / weaker connectivity than G(n,m)** — a direct
   consequence of (1) and (2): edges concentrate inside local
   neighborhoods instead of spanning the graph.

An optional community overlay (:func:`generate_community_social_graph`)
partitions nodes into groups and biases attachment toward same-group
nodes, mimicking the community structure of real OSN friendship graphs
and further weakening global connectivity — the worst case for a
trust-graph overlay.

All generators return :class:`networkx.Graph` with integer node labels
``0..n-1``.
"""

from __future__ import annotations

from typing import List, Optional

import networkx as nx
import numpy as np

from ..errors import GraphError
from ..rng import fallback_rng

__all__ = [
    "generate_social_graph",
    "generate_community_social_graph",
]


def _preferential_targets(
    rng: np.random.Generator,
    repeated_nodes: List[int],
    count: int,
) -> List[int]:
    """Pick ``count`` distinct attachment targets.

    ``repeated_nodes`` contains each existing node once per incident
    edge endpoint, so uniform selection from it is degree-proportional
    selection — the classic Barabási–Albert trick.
    """
    targets: List[int] = []
    seen = set()
    # Cap the number of draws to avoid pathological loops on tiny graphs.
    attempts = 0
    max_attempts = 50 * count + 100
    while len(targets) < count and attempts < max_attempts:
        attempts += 1
        candidate = repeated_nodes[int(rng.integers(0, len(repeated_nodes)))]
        if candidate not in seen:
            seen.add(candidate)
            targets.append(candidate)
    return targets


def generate_social_graph(
    num_nodes: int,
    edges_per_node: int = 9,
    triad_probability: float = 0.85,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """Generate a Facebook-like social graph.

    A Holme–Kim style process: each new node attaches ``edges_per_node``
    edges; the first by preferential attachment, and each subsequent one
    either closes a triad with a random neighbor of the previous target
    (probability ``triad_probability``) or attaches preferentially.

    Parameters
    ----------
    num_nodes:
        Number of vertices.  Must be greater than ``edges_per_node``.
    edges_per_node:
        Edges added per arriving node.  The default 9 approximates the
        Wilson et al. crawl's average degree (28M edges / 3M nodes ≈ 9.3
        edges per node).
    triad_probability:
        Probability that an edge closes a triangle instead of attaching
        preferentially.  High values yield the strong clustering real
        friendship graphs exhibit.
    rng:
        Source of randomness; a seeded fallback generator (derived from
        :data:`repro.config.DEFAULT_SEED`) when omitted.

    Returns
    -------
    networkx.Graph
        A connected graph with power-law degrees and high clustering.
    """
    if rng is None:
        rng = fallback_rng("graphs.social")
    if num_nodes <= edges_per_node:
        raise GraphError(
            f"num_nodes ({num_nodes}) must exceed edges_per_node ({edges_per_node})"
        )
    if edges_per_node < 1:
        raise GraphError("edges_per_node must be at least 1")
    if not 0.0 <= triad_probability <= 1.0:
        raise GraphError("triad_probability must be in [0, 1]")

    graph = nx.Graph()
    # Seed clique keeps early attachment well-defined and the graph connected.
    seed_size = edges_per_node + 1
    graph.add_nodes_from(range(seed_size))
    repeated_nodes: List[int] = []
    for u in range(seed_size):
        for v in range(u + 1, seed_size):
            graph.add_edge(u, v)
            repeated_nodes.append(u)
            repeated_nodes.append(v)

    for new_node in range(seed_size, num_nodes):
        targets = _preferential_targets(rng, repeated_nodes, 1)
        previous = targets[0]
        chosen = [previous]
        for _ in range(edges_per_node - 1):
            candidate: Optional[int] = None
            if rng.random() < triad_probability:
                neighbors = [
                    neighbor
                    for neighbor in graph.neighbors(previous)
                    if neighbor not in chosen and neighbor != new_node
                ]
                if neighbors:
                    candidate = neighbors[int(rng.integers(0, len(neighbors)))]
            if candidate is None:
                fallback = [
                    node
                    for node in _preferential_targets(rng, repeated_nodes, 3)
                    if node not in chosen
                ]
                if not fallback:
                    continue
                candidate = fallback[0]
            chosen.append(candidate)
            previous = candidate
        for target in chosen:
            graph.add_edge(new_node, target)
            repeated_nodes.append(new_node)
            repeated_nodes.append(target)

    return graph


def generate_community_social_graph(
    num_nodes: int,
    num_communities: int = 10,
    edges_per_node: int = 9,
    triad_probability: float = 0.8,
    intra_probability: float = 0.9,
    rng: Optional[np.random.Generator] = None,
) -> nx.Graph:
    """Generate a social graph with explicit community structure.

    Nodes are assigned round-robin to ``num_communities`` groups; each
    attachment edge stays within the arriving node's group with
    probability ``intra_probability``, otherwise it may reach any node.
    The result has denser intra-community neighborhoods and sparser
    bridges, which stresses the overlay's robustness further than the
    plain generator.

    Returns a connected graph; a spanning pass links any leftover
    components through random inter-community edges.
    """
    if rng is None:
        rng = fallback_rng("graphs.social.community")
    if num_communities < 1:
        raise GraphError("num_communities must be at least 1")
    if num_nodes < num_communities * (edges_per_node + 1):
        raise GraphError(
            "num_nodes too small: need at least "
            f"{num_communities * (edges_per_node + 1)} nodes for "
            f"{num_communities} communities"
        )

    community_of = {node: node % num_communities for node in range(num_nodes)}
    members: List[List[int]] = [[] for _ in range(num_communities)]
    for node, community in community_of.items():
        members[community].append(node)

    # Build each community with the base generator, then relabel.
    graph = nx.Graph()
    for community in range(num_communities):
        nodes = members[community]
        sub = generate_social_graph(
            len(nodes),
            edges_per_node=edges_per_node,
            triad_probability=triad_probability,
            rng=rng,
        )
        mapping = dict(enumerate(nodes))
        graph.add_edges_from(
            (mapping[u], mapping[v]) for u, v in sub.edges()
        )

    # Rewire a fraction of edges across communities.
    inter_fraction = 1.0 - intra_probability
    edges = list(graph.edges())
    num_rewire = int(inter_fraction * len(edges))
    rewire_indices = rng.choice(len(edges), size=num_rewire, replace=False)
    for index in rewire_indices:
        u, v = edges[int(index)]
        w = int(rng.integers(0, num_nodes))
        if w != u and not graph.has_edge(u, w):
            graph.remove_edge(u, v)
            graph.add_edge(u, w)

    # Guarantee connectivity with minimal extra edges.
    components = [list(component) for component in nx.connected_components(graph)]
    for index in range(1, len(components)):
        u = components[0][int(rng.integers(0, len(components[0])))]
        v = components[index][int(rng.integers(0, len(components[index])))]
        graph.add_edge(u, v)

    return graph
