"""Trust-graph sampling (the paper's ``f``-parameterized traversal).

Section IV-A: "Our sampling mechanism starts at a random node and adds
additional nodes by traversing the graph following (some of) the
contacts of each node until reaching a pre-established number of nodes.
[...] when we visit a node n during the traversal, we add to the sample
``max(1, f * |delta(n)|)`` random neighbors of n which have not yet been
visited.  These newly added nodes are in turn visited in a breadth-first
manner."

The sampled trust graph is the subgraph *induced* by the selected nodes
on the source graph ("the edges of the sampled trust graph are all the
edges among the selected nodes").  Because every sampled node is reached
through a sampled inviter, the induced subgraph is connected.

``f = 1`` is a full breadth-first crawl (everyone invites all friends),
``f = 0`` a chain of single invitations, and intermediate values are
partial invitations — the paper's invitation model for privacy-minded
groups.
"""

from __future__ import annotations

from collections import deque
from typing import Optional, Set

import networkx as nx
import numpy as np

from ..errors import SamplingError
from ..rng import fallback_rng

__all__ = ["sample_trust_graph", "TrustGraphSampler"]


class TrustGraphSampler:
    """Reusable sampler over a fixed source social graph.

    Keeping the source graph in the sampler lets experiments draw many
    trust graphs (different seeds or ``f`` values) without re-validating
    the source each time.
    """

    def __init__(self, source: nx.Graph) -> None:
        if source.number_of_nodes() == 0:
            raise SamplingError("source graph is empty")
        self._source = source
        self._nodes = list(source.nodes())

    @property
    def source(self) -> nx.Graph:
        """The graph being sampled from."""
        return self._source

    def sample(
        self,
        target_size: int,
        f: float,
        rng: Optional[np.random.Generator] = None,
        start: Optional[int] = None,
    ) -> nx.Graph:
        """Draw one trust graph of ``target_size`` nodes.

        Parameters
        ----------
        target_size:
            Number of nodes in the sample.  Must not exceed the source
            graph's largest connected component reachable from the
            start node; if the traversal exhausts its frontier early it
            restarts from a random already-sampled node that still has
            unsampled neighbors.
        f:
            Invitation fraction in ``[0, 1]``.
        rng:
            Source of randomness (a seeded fallback generator derived
            from :data:`repro.config.DEFAULT_SEED` when omitted).
        start:
            Optional fixed start node; random when omitted.

        Returns
        -------
        networkx.Graph
            The induced subgraph on the sampled node set, relabeled to
            ``0..target_size-1`` (mapping stored in the ``original``
            node attribute).
        """
        if rng is None:
            rng = fallback_rng("graphs.sampling")
        if not 0.0 <= f <= 1.0:
            raise SamplingError(f"f must be in [0, 1], got {f}")
        if target_size < 1:
            raise SamplingError("target_size must be at least 1")
        if target_size > self._source.number_of_nodes():
            raise SamplingError(
                f"target_size {target_size} exceeds source size "
                f"{self._source.number_of_nodes()}"
            )

        if start is None:
            start = self._nodes[int(rng.integers(0, len(self._nodes)))]
        elif start not in self._source:
            raise SamplingError(f"start node {start!r} not in source graph")

        sampled: Set[int] = {start}
        frontier = deque([start])

        while len(sampled) < target_size:
            if not frontier:
                restart = self._find_expandable(sampled, rng)
                if restart is None:
                    raise SamplingError(
                        "traversal exhausted: the component containing the "
                        f"start node has fewer than {target_size} nodes"
                    )
                frontier.append(restart)
            node = frontier.popleft()
            unvisited = [
                neighbor
                for neighbor in self._source.neighbors(node)
                if neighbor not in sampled
            ]
            if not unvisited:
                continue
            degree = self._source.degree(node)
            invite_count = max(1, int(f * degree))
            invite_count = min(invite_count, len(unvisited), target_size - len(sampled))
            order = rng.permutation(len(unvisited))
            for index in order[:invite_count]:
                invitee = unvisited[int(index)]
                sampled.add(invitee)
                frontier.append(invitee)

        subgraph = self._source.subgraph(sampled)
        ordered = sorted(sampled)
        mapping = {original: new for new, original in enumerate(ordered)}
        relabeled = nx.Graph()
        relabeled.add_nodes_from(range(len(ordered)))
        for new, original in enumerate(ordered):
            relabeled.nodes[new]["original"] = original
        relabeled.add_edges_from(
            (mapping[u], mapping[v]) for u, v in subgraph.edges()
        )
        return relabeled

    def _find_expandable(
        self, sampled: Set[int], rng: np.random.Generator
    ) -> Optional[int]:
        """A sampled node that still has unsampled neighbors, or None."""
        # Iterate in sorted order: set order would couple the restart
        # choice to hash-dependent iteration (lint rule DET004).
        candidates = [
            node
            for node in sorted(sampled)
            if any(neighbor not in sampled for neighbor in self._source.neighbors(node))
        ]
        if not candidates:
            return None
        return candidates[int(rng.integers(0, len(candidates)))]


def sample_trust_graph(
    source: nx.Graph,
    target_size: int,
    f: float,
    rng: Optional[np.random.Generator] = None,
    start: Optional[int] = None,
) -> nx.Graph:
    """Convenience wrapper around :class:`TrustGraphSampler`."""
    return TrustGraphSampler(source).sample(target_size, f, rng=rng, start=start)
