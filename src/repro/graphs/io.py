"""Edge-list persistence for graphs.

Experiments cache sampled trust graphs on disk so that repeated runs
reuse identical inputs.  The format is a plain-text edge list with a
small comment header recording the node count, which keeps isolated
nodes (none are produced by our samplers, but round-trips stay exact).
"""

from __future__ import annotations

import os
from typing import Union

import networkx as nx

from ..errors import GraphError

__all__ = ["save_edge_list", "load_edge_list"]

_HEADER_PREFIX = "# nodes="


def save_edge_list(graph: nx.Graph, path: Union[str, os.PathLike]) -> None:
    """Write ``graph`` as an edge list with a node-count header."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"{_HEADER_PREFIX}{graph.number_of_nodes()}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def load_edge_list(path: Union[str, os.PathLike]) -> nx.Graph:
    """Read a graph written by :func:`save_edge_list`.

    Raises
    ------
    GraphError
        If the file is malformed (bad header, non-integer endpoints).
    """
    graph = nx.Graph()
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().strip()
        if not header.startswith(_HEADER_PREFIX):
            raise GraphError(f"missing node-count header in {path}")
        try:
            num_nodes = int(header[len(_HEADER_PREFIX):])
        except ValueError as exc:
            raise GraphError(f"bad node count in header of {path}") from exc
        graph.add_nodes_from(range(num_nodes))
        for line_number, line in enumerate(handle, start=2):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise GraphError(f"{path}:{line_number}: expected two endpoints")
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_number}: non-integer endpoint"
                ) from exc
            if not (0 <= u < num_nodes and 0 <= v < num_nodes):
                raise GraphError(
                    f"{path}:{line_number}: endpoint outside 0..{num_nodes - 1}"
                )
            graph.add_edge(u, v)
    return graph
