"""Graph substrates: social-graph generation, trust-graph sampling,
random baselines, and structural metrics (paper Sections IV-A and IV-C).
"""

from .fastgraph import (
    GRAPH_BACKENDS,
    FlatSnapshot,
    SnapshotAnalysis,
    get_graph_backend,
    resolve_graph_backend,
    set_graph_backend,
)
from .io import load_edge_list, save_edge_list
from .metrics import (
    average_path_length,
    clustering_coefficient,
    degree_histogram,
    degree_sequence,
    fraction_disconnected,
    largest_component,
    normalized_path_length,
    powerlaw_exponent_estimate,
)
from .random_graphs import erdos_renyi_gnm, matching_random_graph, random_regular
from .sampling import TrustGraphSampler, sample_trust_graph
from .social import generate_community_social_graph, generate_social_graph

__all__ = [
    "generate_social_graph",
    "generate_community_social_graph",
    "sample_trust_graph",
    "TrustGraphSampler",
    "erdos_renyi_gnm",
    "matching_random_graph",
    "random_regular",
    "largest_component",
    "fraction_disconnected",
    "average_path_length",
    "normalized_path_length",
    "degree_histogram",
    "degree_sequence",
    "clustering_coefficient",
    "powerlaw_exponent_estimate",
    "save_edge_list",
    "load_edge_list",
    "GRAPH_BACKENDS",
    "FlatSnapshot",
    "SnapshotAnalysis",
    "get_graph_backend",
    "set_graph_backend",
    "resolve_graph_backend",
]
