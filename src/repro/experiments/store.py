"""Persistent experiment results.

Long sweeps are expensive; :class:`ResultStore` persists their outputs
as JSON documents keyed by experiment name, with enough metadata (scale,
seed, library version, timestamp source left to the caller) to judge
whether a cached result is still valid for reuse or comparison.

The store is deliberately simple — a directory of ``<name>.json`` files
— so results are diffable, greppable, and survive refactors.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Any, Dict, List, Optional, Union

from ..errors import ExperimentError

__all__ = ["ResultStore"]

_SCHEMA_VERSION = 1


class ResultStore:
    """A directory-backed store of named experiment results."""

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self._root = pathlib.Path(root)
        self._root.mkdir(parents=True, exist_ok=True)

    @property
    def root(self) -> pathlib.Path:
        """The backing directory."""
        return self._root

    def _path(self, name: str) -> pathlib.Path:
        if not name or "/" in name or "\\" in name or name.startswith("."):
            raise ExperimentError(f"invalid result name {name!r}")
        return self._root / f"{name}.json"

    def save(
        self,
        name: str,
        data: Any,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Persist ``data`` (JSON-serializable) under ``name``.

        Overwrites any previous result of the same name.  The write is
        atomic: the document lands in a temp file in the store
        directory, is flushed to disk, and replaces the target via
        :func:`os.replace` — so a killed writer (e.g. a sweep worker's
        parent dying mid-save) or a concurrent writer can never leave a
        truncated or interleaved ``<name>.json`` behind.
        """
        document = {
            "schema": _SCHEMA_VERSION,
            "name": name,
            "metadata": dict(metadata or {}),
            "data": data,
        }
        try:
            text = json.dumps(document, indent=2, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise ExperimentError(
                f"result {name!r} is not JSON-serializable: {exc}"
            ) from exc
        path = self._path(name)
        # The ".tmp" suffix keeps in-flight files out of the "*.json"
        # glob that names() uses.
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self._root), prefix=f".{name}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, str(path))
        finally:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)

    def load(self, name: str) -> Any:
        """Load the data saved under ``name``.

        Raises
        ------
        ExperimentError
            If the result does not exist or is malformed.
        """
        return self._document(name)["data"]

    def metadata(self, name: str) -> Dict[str, Any]:
        """Load only the metadata saved with ``name``."""
        return self._document(name)["metadata"]

    def _document(self, name: str) -> Dict[str, Any]:
        path = self._path(name)
        if not path.exists():
            raise ExperimentError(f"no stored result named {name!r}")
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise ExperimentError(f"corrupt result file {path}") from exc
        if (
            not isinstance(document, dict)
            or document.get("schema") != _SCHEMA_VERSION
            or "data" not in document
        ):
            raise ExperimentError(f"unrecognized result schema in {path}")
        return document

    def exists(self, name: str) -> bool:
        """Whether a result named ``name`` is stored."""
        return self._path(name).exists()

    def names(self) -> List[str]:
        """All stored result names, sorted."""
        return sorted(path.stem for path in self._root.glob("*.json"))

    def delete(self, name: str) -> bool:
        """Remove a stored result; returns whether it existed."""
        path = self._path(name)
        if path.exists():
            path.unlink()
            return True
        return False

    def get_or_compute(
        self,
        name: str,
        compute,
        metadata: Optional[Dict[str, Any]] = None,
        match_metadata: bool = True,
    ) -> Any:
        """Return the cached result, or compute, save, and return it.

        With ``match_metadata`` (default), a cached result is reused
        only if its stored metadata equals ``metadata``; a mismatch
        (different seed, scale, version...) triggers recomputation.
        """
        wanted = dict(metadata or {})
        if self.exists(name):
            if not match_metadata or self.metadata(name) == wanted:
                return self.load(name)
        data = compute()
        self.save(name, data, metadata=wanted)
        return data
