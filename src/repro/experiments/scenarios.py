"""Experiment scales and input construction.

The paper's evaluation runs 1000-node trust graphs for hundreds to
thousands of shuffling periods.  A pure-Python simulation can do that,
but not inside a quick benchmark pass, so every experiment is
parameterized by an :class:`ExperimentScale`:

* ``PAPER`` — Table I parameters, paper horizons.
* ``QUICK`` — proportionally reduced (default for benchmarks); the
  qualitative shapes survive, as EXPERIMENTS.md documents.
* ``SMOKE`` — minimal settings for unit/integration tests.

``scale_from_env()`` picks ``PAPER`` when ``REPRO_FULL=1`` is set.

Trust graphs are sampled from a synthetic Facebook-like social graph
(see DESIGN.md for the substitution rationale) with the paper's
``f``-sampler, and memoized per (scale, f, seed) so sweeps share
inputs.
"""

from __future__ import annotations

import dataclasses
import math
import os
from typing import Dict, Optional, Tuple

import networkx as nx

from ..config import SystemConfig
from ..errors import ExperimentError
from ..graphs import generate_social_graph, sample_trust_graph
from ..rng import RandomStreams

__all__ = [
    "ExperimentScale",
    "PAPER",
    "QUICK",
    "SMOKE",
    "scale_from_env",
    "scale_by_name",
    "make_config",
    "make_trust_graph",
    "clear_graph_cache",
    "lifetime_label",
]


@dataclasses.dataclass(frozen=True)
class ExperimentScale:
    """All scale-dependent experiment parameters."""

    name: str
    num_nodes: int
    source_multiplier: int
    mean_offline_time: float
    cache_size: int
    shuffle_length: int
    target_degree: int
    stabilization_horizon: float
    measure_window: float
    alphas: Tuple[float, ...]
    mask_draws: int
    path_sources: Optional[int]
    path_length_every: int
    fig8_horizon: float
    fig9_horizon: float
    collector_interval: float

    @property
    def total_horizon(self) -> float:
        """Stabilization plus measurement window."""
        return self.stabilization_horizon + self.measure_window


PAPER = ExperimentScale(
    name="paper",
    num_nodes=1000,
    source_multiplier=10,
    mean_offline_time=30.0,
    cache_size=400,
    shuffle_length=40,
    target_degree=50,
    stabilization_horizon=300.0,
    measure_window=100.0,
    alphas=(0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875),
    mask_draws=10,
    path_sources=64,
    path_length_every=10,
    fig8_horizon=1000.0,
    fig9_horizon=10000.0,
    collector_interval=1.0,
)

# Note: quick scale keeps the paper's Toff = 30 shuffling periods.  The
# protocol's dynamics (shuffles per session, expiries per offline stint)
# are expressed in shuffling periods, so shrinking Toff would distort
# them; only the population and the horizons shrink.
QUICK = ExperimentScale(
    name="quick",
    num_nodes=250,
    source_multiplier=8,
    mean_offline_time=30.0,
    cache_size=150,
    shuffle_length=24,
    target_degree=30,
    stabilization_horizon=150.0,
    measure_window=50.0,
    alphas=(0.125, 0.25, 0.375, 0.5, 0.7, 0.9),
    mask_draws=5,
    path_sources=24,
    path_length_every=8,
    fig8_horizon=300.0,
    fig9_horizon=900.0,
    collector_interval=1.0,
)

SMOKE = ExperimentScale(
    name="smoke",
    num_nodes=80,
    source_multiplier=6,
    mean_offline_time=8.0,
    cache_size=60,
    shuffle_length=12,
    target_degree=12,
    stabilization_horizon=30.0,
    measure_window=15.0,
    alphas=(0.25, 0.5),
    mask_draws=3,
    path_sources=16,
    path_length_every=5,
    fig8_horizon=60.0,
    fig9_horizon=120.0,
    collector_interval=1.0,
)

_SCALES = {"paper": PAPER, "quick": QUICK, "smoke": SMOKE}


def scale_from_env(default: str = "quick") -> ExperimentScale:
    """Resolve the scale from the environment.

    ``REPRO_FULL=1`` selects the paper scale; otherwise ``REPRO_SCALE``
    may name one of paper/quick/smoke; otherwise ``default`` applies.
    """
    if os.environ.get("REPRO_FULL") == "1":
        return PAPER
    name = os.environ.get("REPRO_SCALE", default).lower()
    return _SCALES.get(name, _SCALES[default])


def scale_by_name(name: str) -> ExperimentScale:
    """Resolve a scale by name (``paper``/``quick``/``smoke``).

    Worker processes receive scales by name (names pickle smaller and
    never drift from the canonical parameter sets).
    """
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment scale {name!r}; expected one of "
            f"{sorted(_SCALES)}"
        ) from None


def make_config(
    scale: ExperimentScale,
    alpha: float,
    f: float = 0.5,
    lifetime_ratio: float = 3.0,
    seed: int = 1,
) -> SystemConfig:
    """A :class:`SystemConfig` for one experiment point."""
    return SystemConfig(
        num_nodes=scale.num_nodes,
        sampling_f=f,
        mean_offline_time=scale.mean_offline_time,
        lifetime_ratio=lifetime_ratio,
        cache_size=scale.cache_size,
        shuffle_length=scale.shuffle_length,
        target_degree=scale.target_degree,
        availability=alpha,
        seed=seed,
    )


_graph_cache: Dict[Tuple[str, float, int], nx.Graph] = {}


def make_trust_graph(scale: ExperimentScale, f: float, seed: int = 1) -> nx.Graph:
    """The trust graph for one (scale, f, seed) triple, memoized.

    The synthetic social source graph is ``source_multiplier`` times the
    trust-graph size, so the sampler has room to behave like a crawl of
    a much larger network.
    """
    key = (scale.name, f, seed)
    cached = _graph_cache.get(key)
    if cached is not None:
        return cached
    streams = RandomStreams(seed)
    source = generate_social_graph(
        scale.num_nodes * scale.source_multiplier,
        rng=streams.substream("social", scale.name),
    )
    trust = sample_trust_graph(
        source,
        scale.num_nodes,
        f=f,
        rng=streams.substream("trust-sample", scale.name, str(f)),
    )
    _graph_cache[key] = trust
    return trust


def clear_graph_cache() -> None:
    """Drop memoized trust graphs (tests use this to bound memory)."""
    _graph_cache.clear()


def lifetime_label(ratio: float) -> str:
    """Human-readable label for a lifetime ratio (``inf`` -> Infinite)."""
    return "Infinite" if math.isinf(ratio) else f"{ratio:g}"
