"""Per-figure experiment harnesses.

One function per figure of the paper's evaluation (Figures 3-9); each
returns a structured result object whose ``format_table()`` prints the
rows/series the corresponding figure plots.  See DESIGN.md §3 for the
experiment index and expected shapes.

Every harness accepts ``workers=``: its independent simulation points
(availability values, lifetime ratios, sampling parameters) are pure
functions of their inputs, so they fan out across the
:mod:`repro.parallel` worker pool and merge back in grid order with
results identical to a serial run.  The per-point bodies live in
module-level ``_*_task`` functions shared by both paths, so serial and
parallel cannot drift apart.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..graphs import degree_histogram
from ..graphs.fastgraph import SnapshotAnalysis, resolve_graph_backend
from ..metrics import NodeOverhead, message_overhead_by_rank
from ..metrics.series import TimeSeries
from ..rng import RandomStreams
from .results import format_table
from .runner import (
    OverlayRunResult,
    random_baseline_graph,
    run_overlay_experiment,
    static_churn_metrics,
)
from .scenarios import ExperimentScale, lifetime_label, make_config, make_trust_graph

def _map_tasks(func, items, workers: int):
    """Ordered map over independent figure points, optionally parallel.

    Each ``func(item)`` must be a pure function of ``item`` (the repro
    determinism contract), so fan-out order cannot change results; the
    parallel path re-orders by input index before returning.
    """
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        return [func(item) for item in items]
    from ..parallel import parallel_map

    return parallel_map(func, items, workers=workers)


__all__ = [
    "AvailabilityPoint",
    "AvailabilitySweep",
    "availability_sweep",
    "figure3",
    "figure4",
    "DegreeDistributions",
    "figure5",
    "MessageOverheadResult",
    "figure6",
    "LifetimeSweep",
    "figure7",
    "ConvergenceResult",
    "figure8",
    "ReplacementResult",
    "figure9",
]


# ----------------------------------------------------------------------
# Figures 3 & 4: connectivity and path length vs availability
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class AvailabilityPoint:
    """All curves of Figures 3/4 at one availability value."""

    alpha: float
    trust_disconnected: float
    overlay_disconnected: float
    random_disconnected: float
    trust_path_length: float
    overlay_path_length: float
    random_path_length: float


@dataclasses.dataclass
class AvailabilitySweep:
    """One full availability sweep for a given sampling parameter f."""

    f: float
    scale_name: str
    points: List[AvailabilityPoint]
    trust_edges: int

    def format_table(self, metric: str = "disconnected") -> str:
        """Rows of Figure 3 (``disconnected``) or Figure 4 (``path``)."""
        if metric == "disconnected":
            headers = ["alpha", "trust_graph", "overlay", "random_graph"]
            rows = [
                (
                    point.alpha,
                    point.trust_disconnected,
                    point.overlay_disconnected,
                    point.random_disconnected,
                )
                for point in self.points
            ]
            title = (
                f"Figure 3 (f={self.f:g}, {self.scale_name} scale): "
                "fraction of disconnected nodes vs availability"
            )
        else:
            headers = ["alpha", "trust_graph", "overlay", "random_graph"]
            rows = [
                (
                    point.alpha,
                    point.trust_path_length,
                    point.overlay_path_length,
                    point.random_path_length,
                )
                for point in self.points
            ]
            title = (
                f"Figure 4 (f={self.f:g}, {self.scale_name} scale): "
                "normalized average path length vs availability"
            )
        return format_table(headers, rows, title=title)


def _availability_point_task(args) -> AvailabilityPoint:
    """One Figure-3/4 point: overlay run plus both static baselines.

    A pure function of ``(scale, f, seed, lifetime_ratio, alpha)``: the
    trust graph derives from (scale, f, seed) and the baseline rng is an
    independent substream keyed by (alpha, f), so points compute the
    same values in any order, on any worker.
    """
    scale, f, seed, lifetime_ratio, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, lifetime_ratio=lifetime_ratio, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.total_horizon,
        measure_window=scale.measure_window,
        collector_interval=scale.collector_interval,
        path_length_every=scale.path_length_every,
        path_sources=scale.path_sources,
    )
    baseline_rng = RandomStreams(seed).substream("baseline", str(alpha), str(f))
    trust_static = static_churn_metrics(
        trust_graph,
        alpha,
        scale.mask_draws,
        baseline_rng,
        path_sources=scale.path_sources,
    )
    random_graph = random_baseline_graph(result, baseline_rng)
    random_static = static_churn_metrics(
        random_graph,
        alpha,
        scale.mask_draws,
        baseline_rng,
        path_sources=scale.path_sources,
    )
    return AvailabilityPoint(
        alpha=alpha,
        trust_disconnected=trust_static.disconnected,
        overlay_disconnected=result.disconnected,
        random_disconnected=random_static.disconnected,
        trust_path_length=trust_static.path_length,
        overlay_path_length=result.path_length or 0.0,
        random_path_length=random_static.path_length,
    )


def availability_sweep(
    scale: ExperimentScale,
    f: float,
    seed: int = 1,
    lifetime_ratio: float = 3.0,
    alphas: Optional[Sequence[float]] = None,
    workers: int = 1,
) -> AvailabilitySweep:
    """Run the overlay and both static baselines across availabilities."""
    # Build (and memoize) the trust graph before any fan-out so forked
    # workers inherit it instead of each re-sampling the social graph.
    trust_graph = make_trust_graph(scale, f, seed)
    alpha_list = list(alphas if alphas is not None else scale.alphas)
    points = _map_tasks(
        _availability_point_task,
        [(scale, f, seed, lifetime_ratio, alpha) for alpha in alpha_list],
        workers,
    )
    return AvailabilitySweep(
        f=f,
        scale_name=scale.name,
        points=points,
        trust_edges=trust_graph.number_of_edges(),
    )


def figure3(
    scale: ExperimentScale,
    seed: int = 1,
    fs: Sequence[float] = (1.0, 0.5),
    workers: int = 1,
) -> Dict[float, AvailabilitySweep]:
    """Connectivity for different trust graphs (one sweep per f)."""
    return {
        f: availability_sweep(scale, f, seed=seed, workers=workers) for f in fs
    }


def figure4(
    scale: ExperimentScale,
    seed: int = 1,
    fs: Sequence[float] = (1.0, 0.5),
    workers: int = 1,
) -> Dict[float, AvailabilitySweep]:
    """Normalized average path length for different trust graphs.

    Shares its computation with Figure 3; calling this separately
    reruns the sweep, so benches that need both should call
    :func:`figure3` once and format both metrics.
    """
    return figure3(scale, seed=seed, fs=fs, workers=workers)


# ----------------------------------------------------------------------
# Figure 5: degree distribution at alpha = 0.5
# ----------------------------------------------------------------------


@dataclasses.dataclass
class DegreeDistributions:
    """Online-node degree histograms for one f at alpha = 0.5."""

    f: float
    alpha: float
    trust_histogram: Dict[int, int]
    overlay_histogram: Dict[int, int]
    random_histogram: Dict[int, int]

    def format_table(self, bucket: int = 10) -> str:
        """Histograms bucketed for readability."""

        def bucketize(histogram: Dict[int, int]) -> Dict[int, int]:
            buckets: Dict[int, int] = {}
            for degree, count in histogram.items():
                key = (degree // bucket) * bucket
                buckets[key] = buckets.get(key, 0) + count
            return buckets

        trust = bucketize(self.trust_histogram)
        overlay = bucketize(self.overlay_histogram)
        random_ = bucketize(self.random_histogram)
        keys = sorted(set(trust) | set(overlay) | set(random_))
        rows = [
            (
                f"{key}-{key + bucket - 1}",
                trust.get(key, 0),
                overlay.get(key, 0),
                random_.get(key, 0),
            )
            for key in keys
        ]
        return format_table(
            ["degree", "trust_graph", "overlay", "random_graph"],
            rows,
            title=(
                f"Figure 5 (f={self.f:g}, alpha={self.alpha:g}): "
                "degree distribution over online nodes"
            ),
        )

    def mean_degrees(self) -> Tuple[float, float, float]:
        """Mean online degree of (trust, overlay, random)."""

        def mean(histogram: Dict[int, int]) -> float:
            total = sum(histogram.values())
            if total == 0:
                return 0.0
            return sum(degree * count for degree, count in histogram.items()) / total

        return (
            mean(self.trust_histogram),
            mean(self.overlay_histogram),
            mean(self.random_histogram),
        )


def _figure5_task(args) -> DegreeDistributions:
    """Degree distributions for one sampling parameter f."""
    from ..churn import online_subgraph, stationary_online_mask
    from ..graphs import erdos_renyi_gnm

    scale, f, seed, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.total_horizon,
        measure_window=scale.measure_window,
        collector_interval=scale.collector_interval,
    )
    rng = RandomStreams(seed).substream("fig5", str(f))
    mask = stationary_online_mask(config.num_nodes, alpha, rng)
    trust_online = online_subgraph(trust_graph, mask)
    # The random reference for the degree comparison matches the
    # *online* overlay snapshot (same node and edge counts), so the
    # two histograms share their mean and differ only in shape.
    random_online = erdos_renyi_gnm(
        max(1, result.snapshot.number_of_nodes()),
        result.snapshot.number_of_edges(),
        rng=rng,
    )
    if resolve_graph_backend() == "fast":
        # Same values as degree_histogram(result.snapshot) — the fast
        # snapshot of the finished run is the same graph.
        overlay_histogram = SnapshotAnalysis(
            result.overlay.snapshot_fast()
        ).degree_histogram()
    else:
        overlay_histogram = degree_histogram(result.snapshot)
    return DegreeDistributions(
        f=f,
        alpha=alpha,
        trust_histogram=degree_histogram(trust_online),
        overlay_histogram=overlay_histogram,
        random_histogram=degree_histogram(random_online),
    )


def figure5(
    scale: ExperimentScale,
    seed: int = 1,
    fs: Sequence[float] = (1.0, 0.5),
    alpha: float = 0.5,
    workers: int = 1,
) -> Dict[float, DegreeDistributions]:
    """Degree distributions for different trust graphs at alpha=0.5."""
    distributions = _map_tasks(
        _figure5_task, [(scale, f, seed, alpha) for f in fs], workers
    )
    return dict(zip(fs, distributions))


# ----------------------------------------------------------------------
# Figure 6: messages per shuffle period by trust-degree rank
# ----------------------------------------------------------------------


@dataclasses.dataclass
class MessageOverheadResult:
    """Figure 6 data for one f."""

    f: float
    alpha: float
    overheads: List[NodeOverhead]
    system_mean: float

    def format_table(self, max_rows: int = 20) -> str:
        step = max(1, len(self.overheads) // max_rows)
        rows = [
            (
                rank + 1,
                entry.trust_degree,
                entry.max_out_degree,
                entry.messages_per_period,
            )
            for rank, entry in enumerate(self.overheads)
            if rank % step == 0
        ]
        table = format_table(
            ["rank", "trust_degree", "max_out_degree", "messages_per_period"],
            rows,
            title=(
                f"Figure 6 (f={self.f:g}, alpha={self.alpha:g}): messages "
                f"per shuffle period by trust-degree rank "
                f"(system mean {self.system_mean:.2f})"
            ),
        )
        return table


def _figure6_task(args) -> MessageOverheadResult:
    """Message overhead by trust-degree rank for one f."""
    from ..metrics import mean_messages_per_period

    scale, f, seed, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.total_horizon,
        measure_window=scale.measure_window,
        collector_interval=scale.collector_interval,
    )
    overheads = message_overhead_by_rank(
        result.overlay, result.collector.max_out_degrees()
    )
    return MessageOverheadResult(
        f=f,
        alpha=alpha,
        overheads=overheads,
        system_mean=mean_messages_per_period(result.overlay),
    )


def figure6(
    scale: ExperimentScale,
    seed: int = 1,
    fs: Sequence[float] = (1.0, 0.5),
    alpha: float = 0.5,
    workers: int = 1,
) -> Dict[float, MessageOverheadResult]:
    """Per-node message overhead, ranked by trust-graph degree."""
    results = _map_tasks(
        _figure6_task, [(scale, f, seed, alpha) for f in fs], workers
    )
    return dict(zip(fs, results))


# ----------------------------------------------------------------------
# Figure 7: connectivity vs availability for pseudonym lifetimes
# ----------------------------------------------------------------------


@dataclasses.dataclass
class LifetimeSweep:
    """Figure 7: one disconnected-fraction curve per lifetime ratio."""

    f: float
    scale_name: str
    alphas: List[float]
    trust_curve: List[float]
    random_curve: List[float]
    overlay_curves: Dict[float, List[float]]  # keyed by lifetime ratio

    def format_table(self) -> str:
        ratios = sorted(self.overlay_curves, key=lambda r: (math.isinf(r), r))
        headers = ["alpha", "trust_graph"] + [
            f"r={lifetime_label(ratio)}" for ratio in ratios
        ] + ["random_graph"]
        rows = []
        for index, alpha in enumerate(self.alphas):
            row: List = [alpha, self.trust_curve[index]]
            row.extend(self.overlay_curves[ratio][index] for ratio in ratios)
            row.append(self.random_curve[index])
            rows.append(tuple(row))
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 7 (f={self.f:g}, {self.scale_name} scale): "
                "connectivity for different pseudonym lifetimes"
            ),
        )


def _figure7_run_task(args) -> Tuple[float, int]:
    """One Figure-7 overlay run: (disconnected fraction, edge count)."""
    scale, f, seed, lifetime_ratio, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, lifetime_ratio=lifetime_ratio, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.total_horizon,
        measure_window=scale.measure_window,
        collector_interval=scale.collector_interval,
    )
    return result.disconnected, result.full_edge_count


def figure7(
    scale: ExperimentScale,
    seed: int = 1,
    f: float = 0.5,
    ratios: Sequence[float] = (1.0, 3.0, 9.0, math.inf),
    alphas: Optional[Sequence[float]] = None,
    workers: int = 1,
) -> LifetimeSweep:
    """Connectivity for different pseudonym lifetime ratios."""
    from ..graphs import erdos_renyi_gnm

    trust_graph = make_trust_graph(scale, f, seed)
    streams = RandomStreams(seed)
    alpha_list = list(alphas if alphas is not None else scale.alphas)

    # The overlay runs — the expensive part — are independent per
    # (alpha, ratio) point and fan out across workers; the static
    # baselines stay in the parent because the random reference reuses
    # the edge count of the overall-first overlay run.
    runs = _map_tasks(
        _figure7_run_task,
        [
            (scale, f, seed, ratio, alpha)
            for alpha in alpha_list
            for ratio in ratios
        ],
        workers,
    )
    run_iter = iter(runs)

    overlay_curves: Dict[float, List[float]] = {ratio: [] for ratio in ratios}
    trust_curve: List[float] = []
    random_curve: List[float] = []
    reference_edges: Optional[int] = None

    for alpha in alpha_list:
        baseline_rng = streams.substream("fig7-baseline", str(alpha))
        trust_static = static_churn_metrics(
            trust_graph, alpha, scale.mask_draws, baseline_rng, measure_paths=False
        )
        trust_curve.append(trust_static.disconnected)
        for ratio in ratios:
            disconnected, full_edge_count = next(run_iter)
            overlay_curves[ratio].append(disconnected)
            if reference_edges is None:
                reference_edges = full_edge_count
        random_graph = erdos_renyi_gnm(
            scale.num_nodes, reference_edges or 0, rng=baseline_rng
        )
        random_static = static_churn_metrics(
            random_graph, alpha, scale.mask_draws, baseline_rng, measure_paths=False
        )
        random_curve.append(random_static.disconnected)

    return LifetimeSweep(
        f=f,
        scale_name=scale.name,
        alphas=alpha_list,
        trust_curve=trust_curve,
        random_curve=random_curve,
        overlay_curves=overlay_curves,
    )


# ----------------------------------------------------------------------
# Figure 8: connectivity over time at alpha = 0.25
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ConvergenceResult:
    """Figure 8: disconnected-fraction time series."""

    alpha: float
    trust_series: TimeSeries
    overlay_series: Dict[float, TimeSeries]  # keyed by lifetime ratio
    convergence_times: Dict[float, Optional[float]]

    def format_table(self, max_rows: int = 25) -> str:
        ratios = sorted(self.overlay_series)
        headers = ["time", "trust_graph"] + [
            f"overlay r={lifetime_label(ratio)}" for ratio in ratios
        ]
        times = self.trust_series.times
        step = max(1, len(times) // max_rows)
        rows = []
        for index in range(0, len(times), step):
            row: List = [float(times[index]), float(self.trust_series.values[index])]
            for ratio in ratios:
                series = self.overlay_series[ratio]
                row.append(float(series.values[index]))
            rows.append(tuple(row))
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 8 (alpha={self.alpha:g}): connectivity over time "
                f"(convergence: "
                + ", ".join(
                    f"r={lifetime_label(ratio)} -> "
                    + (f"{time:.0f} sp" if time is not None else "never")
                    for ratio, time in sorted(self.convergence_times.items())
                )
                + ")"
            ),
        )


def _figure8_task(args) -> Tuple[TimeSeries, TimeSeries, Optional[float]]:
    """One Figure-8 run: (overlay series, trust series, convergence time)."""
    scale, f, seed, lifetime_ratio, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, lifetime_ratio=lifetime_ratio, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.fig8_horizon,
        measure_window=max(1.0, scale.fig8_horizon * 0.2),
        collector_interval=scale.collector_interval,
    )
    return (
        result.collector.disconnected,
        result.collector.trust_disconnected,
        result.collector.convergence_time(threshold=0.05),
    )


def figure8(
    scale: ExperimentScale,
    seed: int = 1,
    f: float = 0.5,
    alpha: float = 0.25,
    ratios: Sequence[float] = (3.0, 9.0),
    workers: int = 1,
) -> ConvergenceResult:
    """Connectivity over time starting from a cold overlay."""
    runs = _map_tasks(
        _figure8_task,
        [(scale, f, seed, ratio, alpha) for ratio in ratios],
        workers,
    )
    overlay_series: Dict[float, TimeSeries] = {}
    convergence: Dict[float, Optional[float]] = {}
    trust_series: Optional[TimeSeries] = None
    for ratio, (series, trust, convergence_time) in zip(ratios, runs):
        overlay_series[ratio] = series
        convergence[ratio] = convergence_time
        if trust_series is None:
            trust_series = trust
    assert trust_series is not None
    return ConvergenceResult(
        alpha=alpha,
        trust_series=trust_series,
        overlay_series=overlay_series,
        convergence_times=convergence,
    )


# ----------------------------------------------------------------------
# Figure 9: link replacements per node per shuffle period
# ----------------------------------------------------------------------


@dataclasses.dataclass
class ReplacementResult:
    """Figure 9: link-replacement-rate time series per lifetime ratio."""

    alpha: float
    series: Dict[float, TimeSeries]  # keyed by lifetime ratio
    stable_rates: Dict[float, float]

    def format_table(self, max_rows: int = 25) -> str:
        ratios = sorted(self.series, key=lambda r: (math.isinf(r), r))
        headers = ["time"] + [f"r={lifetime_label(ratio)}" for ratio in ratios]
        reference = self.series[ratios[0]]
        times = reference.times
        step = max(1, len(times) // max_rows)
        rows = []
        for index in range(0, len(times), step):
            row: List = [float(times[index])]
            for ratio in ratios:
                values = self.series[ratio].values
                row.append(float(values[index]) if index < len(values) else None)
            rows.append(tuple(row))
        stable = ", ".join(
            f"r={lifetime_label(ratio)}: {rate:.2f}/sp"
            for ratio, rate in sorted(
                self.stable_rates.items(), key=lambda kv: (math.isinf(kv[0]), kv[0])
            )
        )
        return format_table(
            headers,
            rows,
            title=(
                f"Figure 9 (alpha={self.alpha:g}): links replaced per node "
                f"per shuffle period (stable rates: {stable})"
            ),
        )


def _figure9_task(args) -> TimeSeries:
    """One Figure-9 run: the replacements-per-node series for one ratio."""
    scale, f, seed, lifetime_ratio, alpha = args
    trust_graph = make_trust_graph(scale, f, seed)
    config = make_config(scale, alpha, f=f, lifetime_ratio=lifetime_ratio, seed=seed)
    result = run_overlay_experiment(
        trust_graph,
        config,
        horizon=scale.fig9_horizon,
        measure_window=max(1.0, scale.fig9_horizon * 0.2),
        collector_interval=scale.collector_interval,
    )
    return result.collector.replacements_per_node


def figure9(
    scale: ExperimentScale,
    seed: int = 1,
    f: float = 0.5,
    alpha: float = 0.25,
    ratios: Sequence[float] = (3.0, 9.0, math.inf),
    workers: int = 1,
) -> ReplacementResult:
    """Link-replacement overhead over a long horizon."""
    runs = _map_tasks(
        _figure9_task,
        [(scale, f, seed, ratio, alpha) for ratio in ratios],
        workers,
    )
    series: Dict[float, TimeSeries] = {}
    stable: Dict[float, float] = {}
    for ratio, replacement_series in zip(ratios, runs):
        series[ratio] = replacement_series
        stable[ratio] = replacement_series.tail_mean(0.25)
    return ReplacementResult(alpha=alpha, series=series, stable_rates=stable)
