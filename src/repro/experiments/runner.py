"""Experiment execution: overlay runs and static baselines.

Two measurement modes cover everything in the evaluation:

* :func:`run_overlay_experiment` — build an overlay over a trust graph,
  run it under churn to a stable state with a
  :class:`~repro.metrics.MetricsCollector` attached, and summarize.
* :func:`static_churn_metrics` — the trust-graph and random-graph
  baselines need no protocol: restrict the static graph to random
  stationary online sets and average the Section IV-C metrics over
  several draws.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import networkx as nx
import numpy as np

from ..config import SystemConfig
from ..core import Overlay
from ..churn import online_subgraph, stationary_online_mask
from ..errors import ExperimentError
from ..graphs import fraction_disconnected, normalized_path_length
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis, resolve_graph_backend
from ..metrics import MetricsCollector

__all__ = [
    "OverlayRunResult",
    "run_overlay_experiment",
    "StaticMetrics",
    "static_churn_metrics",
    "random_baseline_graph",
]


@dataclasses.dataclass
class OverlayRunResult:
    """Summary of one overlay run.

    ``full_edge_count`` counts the overlay's links across *all* nodes
    (online or not, expired links excluded); it sizes the matching
    random-graph baseline.
    """

    config: SystemConfig
    horizon: float
    disconnected: float
    trust_disconnected: float
    path_length: Optional[float]
    trust_path_length: Optional[float]
    online_fraction: float
    full_edge_count: int
    snapshot: nx.Graph
    trust_snapshot: nx.Graph
    collector: MetricsCollector
    overlay: Overlay


def run_overlay_experiment(
    trust_graph: nx.Graph,
    config: SystemConfig,
    horizon: float,
    measure_window: float,
    collector_interval: float = 1.0,
    path_length_every: int = 0,
    path_sources: Optional[int] = 32,
    start_all_online: bool = False,
    with_churn: bool = True,
) -> OverlayRunResult:
    """Run one overlay to ``horizon`` and summarize its stable state.

    Tail statistics average over the trailing ``measure_window`` of the
    collector series.  Path lengths are reported only when
    ``path_length_every`` is non-zero.
    """
    if measure_window <= 0 or measure_window > horizon:
        raise ExperimentError("measure_window must be in (0, horizon]")
    overlay = Overlay.build(
        trust_graph, config, with_churn=with_churn, start_all_online=start_all_online
    )
    collector = MetricsCollector(
        overlay,
        interval=collector_interval,
        path_length_every=path_length_every,
        path_length_sources=path_sources,
        rng=overlay.substream("collector"),
    )
    overlay.start()
    collector.start()
    overlay.run_until(horizon)

    tail_fraction = min(1.0, measure_window / horizon)
    disconnected = collector.disconnected.tail_mean(tail_fraction)
    trust_disconnected = collector.trust_disconnected.tail_mean(tail_fraction)
    path_length = None
    trust_path_length = None
    if path_length_every and len(collector.path_length):
        path_length = collector.path_length.tail_mean(0.5)
        trust_path_length = collector.trust_path_length.tail_mean(0.5)

    online_ids = overlay.online_ids()
    snapshot = overlay.snapshot(online_only=True, online_ids=online_ids)
    full_snapshot = overlay.snapshot(online_only=False)
    return OverlayRunResult(
        config=config,
        horizon=horizon,
        disconnected=disconnected,
        trust_disconnected=trust_disconnected,
        path_length=path_length,
        trust_path_length=trust_path_length,
        online_fraction=len(online_ids) / config.num_nodes,
        full_edge_count=full_snapshot.number_of_edges(),
        snapshot=snapshot,
        trust_snapshot=overlay.trust_snapshot(online_ids=online_ids),
        collector=collector,
        overlay=overlay,
    )


@dataclasses.dataclass(frozen=True)
class StaticMetrics:
    """Availability-averaged metrics of a static graph under churn."""

    disconnected: float
    path_length: float
    mean_online_degree: float


def static_churn_metrics(
    graph: nx.Graph,
    alpha: float,
    draws: int,
    rng: np.random.Generator,
    path_sources: Optional[int] = 32,
    measure_paths: bool = True,
    backend: Optional[str] = None,
) -> StaticMetrics:
    """Baseline metrics: restrict ``graph`` to random online sets.

    Each draw marks every node online independently with probability
    ``alpha`` (the stationary distribution of the paper's churn model)
    and measures the induced subgraph; results average over draws.

    The default ``"fast"`` backend converts ``graph`` to a flat
    snapshot once and induces each draw's subgraph with a boolean
    mask; the ``"networkx"`` reference path rebuilds an ``nx.Graph``
    per draw.  Both consume ``rng`` identically and produce bitwise
    equal metrics (see docs/metrics.md).
    """
    if draws < 1:
        raise ExperimentError("draws must be at least 1")
    total_nodes = graph.number_of_nodes()
    use_fast = resolve_graph_backend(backend) == "fast"
    base_snapshot = FlatSnapshot.from_networkx(graph) if use_fast else None
    disconnected_values = []
    path_values = []
    degree_values = []
    for _ in range(draws):
        mask = stationary_online_mask(total_nodes, alpha, rng)
        if use_fast:
            analysis = SnapshotAnalysis(base_snapshot.induced_by_labels(mask))
            disconnected_values.append(analysis.fraction_disconnected())
            if analysis.snapshot.num_nodes > 0:
                degree_values.append(float(np.mean(analysis.snapshot.degrees())))
            if measure_paths:
                path_values.append(
                    analysis.normalized_path_length(
                        total_nodes, sample_sources=path_sources, rng=rng
                    )
                )
            continue
        induced = online_subgraph(graph, mask)
        disconnected_values.append(fraction_disconnected(induced))
        if induced.number_of_nodes() > 0:
            degrees = [degree for _, degree in induced.degree()]
            degree_values.append(float(np.mean(degrees)) if degrees else 0.0)
        if measure_paths:
            path_values.append(
                normalized_path_length(
                    induced, total_nodes, sample_sources=path_sources, rng=rng
                )
            )
    return StaticMetrics(
        disconnected=float(np.mean(disconnected_values)),
        path_length=float(np.mean(path_values)) if path_values else 0.0,
        mean_online_degree=float(np.mean(degree_values)) if degree_values else 0.0,
    )


def random_baseline_graph(
    overlay_result: OverlayRunResult, rng: np.random.Generator
) -> nx.Graph:
    """The paper's random baseline: Erdős–Rényi with the same node count
    as the trust graph and the same edge count as the full overlay."""
    from ..graphs import erdos_renyi_gnm

    return erdos_renyi_gnm(
        overlay_result.config.num_nodes, overlay_result.full_edge_count, rng=rng
    )
