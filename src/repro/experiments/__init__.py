"""Experiment harness: scales, runners, and per-figure reproductions of
the paper's evaluation (Section V).
"""

from .figures import (
    AvailabilityPoint,
    AvailabilitySweep,
    ConvergenceResult,
    DegreeDistributions,
    LifetimeSweep,
    MessageOverheadResult,
    ReplacementResult,
    availability_sweep,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
)
from .replication import ReplicatedValue, replicate, replicate_records
from .report import build_report, collect_result_tables
from .results import format_table, write_csv
from .store import ResultStore
from .sweeps import (
    SweepPoint,
    grid_sweep,
    point_store_key,
    sweep_table_rows,
    validate_axes,
)
from .runner import (
    OverlayRunResult,
    StaticMetrics,
    random_baseline_graph,
    run_overlay_experiment,
    static_churn_metrics,
)
from .scenarios import (
    PAPER,
    QUICK,
    SMOKE,
    ExperimentScale,
    clear_graph_cache,
    lifetime_label,
    make_config,
    make_trust_graph,
    scale_by_name,
    scale_from_env,
)

__all__ = [
    "ExperimentScale",
    "PAPER",
    "QUICK",
    "SMOKE",
    "scale_from_env",
    "make_config",
    "make_trust_graph",
    "clear_graph_cache",
    "lifetime_label",
    "OverlayRunResult",
    "run_overlay_experiment",
    "StaticMetrics",
    "static_churn_metrics",
    "random_baseline_graph",
    "AvailabilityPoint",
    "AvailabilitySweep",
    "availability_sweep",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "DegreeDistributions",
    "MessageOverheadResult",
    "LifetimeSweep",
    "ConvergenceResult",
    "ReplacementResult",
    "format_table",
    "write_csv",
    "ResultStore",
    "build_report",
    "collect_result_tables",
    "ReplicatedValue",
    "replicate",
    "replicate_records",
    "SweepPoint",
    "grid_sweep",
    "sweep_table_rows",
    "point_store_key",
    "validate_axes",
    "scale_by_name",
]
