"""Seed replication: running an experiment across independent seeds.

The paper reports single runs; publication-grade claims need variance.
:func:`replicate` runs any experiment function across seeds and
aggregates every numeric field of its result records into
``mean ± std``; :class:`ReplicatedValue` carries the summary.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, List, Sequence

import numpy as np

from ..errors import ExperimentError

__all__ = ["ReplicatedValue", "replicate", "replicate_records"]


@dataclasses.dataclass(frozen=True)
class ReplicatedValue:
    """A value aggregated over seeds."""

    mean: float
    std: float
    count: int

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={self.count})"


def replicate(
    experiment: Callable[[int], float],
    seeds: Sequence[int],
) -> ReplicatedValue:
    """Run ``experiment(seed)`` per seed and aggregate the scalar results."""
    if not seeds:
        raise ExperimentError("need at least one seed")
    values = []
    for seed in seeds:
        value = experiment(seed)
        if not isinstance(value, (int, float)):
            raise ExperimentError(
                f"experiment returned non-numeric {type(value).__name__}"
            )
        values.append(float(value))
    array = np.array(values)
    return ReplicatedValue(
        mean=float(array.mean()), std=float(array.std()), count=len(values)
    )


def replicate_records(
    experiment: Callable[[int], Sequence[Any]],
    seeds: Sequence[int],
    key_field: str,
) -> Dict[Any, Dict[str, ReplicatedValue]]:
    """Replicate an experiment that returns a list of records.

    ``experiment(seed)`` must return a sequence of dataclass records
    (e.g. :class:`~repro.experiments.AvailabilityPoint`); records are
    matched across seeds by ``key_field`` and every other numeric field
    is aggregated.

    Returns
    -------
    dict
        ``{key_value: {field_name: ReplicatedValue}}``.
    """
    if not seeds:
        raise ExperimentError("need at least one seed")
    collected: Dict[Any, Dict[str, List[float]]] = {}
    field_names: List[str] = []
    for seed in seeds:
        records = experiment(seed)
        for record in records:
            if not dataclasses.is_dataclass(record):
                raise ExperimentError("records must be dataclasses")
            values = dataclasses.asdict(record)
            key = values.pop(key_field)
            bucket = collected.setdefault(key, {})
            for name, value in values.items():
                if isinstance(value, (int, float)) and not isinstance(value, bool):
                    bucket.setdefault(name, []).append(float(value))
                    if name not in field_names:
                        field_names.append(name)

    aggregated: Dict[Any, Dict[str, ReplicatedValue]] = {}
    for key, fields in collected.items():
        aggregated[key] = {}
        for name, values in fields.items():
            array = np.array(values)
            aggregated[key][name] = ReplicatedValue(
                mean=float(array.mean()),
                std=float(array.std()),
                count=len(values),
            )
    return aggregated
