"""Generic parameter sweeps over :class:`~repro.config.SystemConfig`.

The figure harnesses sweep availability; users exploring the design
space want to sweep *anything* (cache size x availability, lifetime x
fanout, ...).  :func:`grid_sweep` runs an experiment function over the
cartesian product of config-field values, optionally memoizing each
point in a :class:`~repro.experiments.store.ResultStore`, and returns
records ready for :func:`~repro.experiments.results.format_table`.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..config import SystemConfig
from ..errors import ExperimentError
from .store import ResultStore

__all__ = [
    "SweepPoint",
    "grid_sweep",
    "sweep_table_rows",
    "point_store_key",
    "validate_axes",
]


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """One grid point: the overridden fields and the measured outcome."""

    overrides: Tuple[Tuple[str, Any], ...]
    outcome: Any

    def override(self, name: str) -> Any:
        """Value of one overridden field at this point."""
        for key, value in self.overrides:
            if key == name:
                return value
        raise ExperimentError(f"{name!r} is not a swept field")


def validate_axes(axes: Mapping[str, Sequence[Any]]) -> None:
    """Reject axes naming unknown config fields or holding no values."""
    if not axes:
        raise ExperimentError("a sweep needs at least one axis")
    valid = {field.name for field in dataclasses.fields(SystemConfig)}
    for name, values in axes.items():
        if name not in valid:
            raise ExperimentError(f"unknown SystemConfig field {name!r}")
        if not values:
            raise ExperimentError(f"axis {name!r} has no values")


def point_store_key(store_prefix: str, overrides: Sequence[Tuple[str, Any]]) -> str:
    """The store key one grid point memoizes under.

    Shared by :func:`grid_sweep` and the parallel engine so serial and
    parallel runs of the same sweep hit one cache.
    """
    return store_prefix + "_" + "_".join(
        f"{name}-{value}" for name, value in overrides
    ).replace("/", "-").replace(".", "p")


def grid_sweep(
    base_config: SystemConfig,
    axes: Mapping[str, Sequence[Any]],
    experiment: Callable[[SystemConfig], Any],
    store: Optional[ResultStore] = None,
    store_prefix: str = "sweep",
    workers: int = 1,
) -> List[SweepPoint]:
    """Run ``experiment`` over the cartesian product of ``axes``.

    Parameters
    ----------
    base_config:
        The configuration every point starts from.
    axes:
        Mapping of :class:`SystemConfig` field name to the values to
        try.  The grid is the cartesian product in the mapping's order.
    experiment:
        ``experiment(config) -> outcome``.  The outcome must be
        JSON-serializable if a store is used.
    store:
        Optional result store; each point is memoized under a key built
        from ``store_prefix`` and the overrides, keyed to the base
        config's seed, so re-running a partially completed sweep only
        computes the missing points.
    store_prefix:
        Namespace for stored point names.
    workers:
        Worker-process count.  Anything above 1 delegates to
        :func:`repro.parallel.parallel_grid_sweep`, which returns
        records identical (same values, same order) to the serial path.

    Returns
    -------
    list of SweepPoint
        In grid order.
    """
    validate_axes(axes)
    if workers > 1:
        from ..parallel.sweep import parallel_grid_sweep

        return parallel_grid_sweep(
            base_config,
            axes,
            experiment,
            workers=workers,
            store=store,
            store_prefix=store_prefix,
        )
    names = list(axes.keys())
    points: List[SweepPoint] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        overrides = tuple(zip(names, combo))
        config = base_config.replace(**dict(overrides))

        def compute(config=config):
            return experiment(config)

        if store is not None:
            outcome = store.get_or_compute(
                point_store_key(store_prefix, overrides),
                compute,
                metadata={"seed": base_config.seed, "overrides": repr(overrides)},
            )
        else:
            outcome = compute()
        points.append(SweepPoint(overrides=overrides, outcome=outcome))
    return points


def sweep_table_rows(
    points: Sequence[SweepPoint],
    outcome_fields: Optional[Sequence[str]] = None,
) -> Tuple[List[str], List[Tuple]]:
    """Turn sweep points into (headers, rows) for ``format_table``.

    Scalar outcomes get one ``outcome`` column; dict outcomes get one
    column per key (or per requested ``outcome_fields``).
    """
    if not points:
        raise ExperimentError("no sweep points")
    axis_names = [name for name, _ in points[0].overrides]
    first = points[0].outcome
    if isinstance(first, dict):
        fields = list(outcome_fields) if outcome_fields else sorted(first)
    else:
        fields = ["outcome"]
    headers = axis_names + fields
    rows: List[Tuple] = []
    for point in points:
        row: List[Any] = [value for _, value in point.overrides]
        if isinstance(point.outcome, dict):
            row.extend(point.outcome.get(field) for field in fields)
        else:
            row.append(point.outcome)
        rows.append(tuple(row))
    return headers, rows
