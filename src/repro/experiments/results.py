"""Result rendering: ASCII tables and CSV export.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output consistent across figures.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable, List, Sequence, Union

__all__ = ["format_table", "write_csv"]

Cell = Union[str, int, float, None]


def _render(cell: Cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Cell]], title: str = ""
) -> str:
    """Render rows as a fixed-width ASCII table."""
    rendered_rows: List[List[str]] = [[_render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


def write_csv(
    path: Union[str, os.PathLike],
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
) -> None:
    """Write rows to a CSV file."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(headers))
        for row in rows:
            writer.writerow(["" if cell is None else cell for cell in row])
