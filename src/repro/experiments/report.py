"""Reproduction report assembly.

Collects the result tables the benchmark harness saves under
``benchmarks/results/`` into a single markdown document, with the
experiment inventory up front — a regenerable companion to
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import pathlib
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ExperimentError

__all__ = ["collect_result_tables", "build_report"]

_SECTIONS: Tuple[Tuple[str, str], ...] = (
    ("table1", "Table I — default parameters"),
    ("fig3", "Figure 3 — connectivity vs availability"),
    ("fig4", "Figure 4 — normalized path length"),
    ("fig5", "Figure 5 — degree distributions"),
    ("fig6", "Figure 6 — message overhead by rank"),
    ("fig7", "Figure 7 — pseudonym lifetimes"),
    ("fig8", "Figure 8 — convergence over time"),
    ("fig9", "Figure 9 — link replacements"),
    ("ablation", "Ablations"),
    ("celebrity", "Extension — celebrity attack"),
)


def collect_result_tables(
    results_dir: Union[str, os.PathLike],
) -> Dict[str, str]:
    """Read every ``*.txt`` table saved by the benchmark harness.

    Returns a mapping of result name (file stem) to table text, sorted
    by name.  Missing directory raises; an empty directory yields an
    empty mapping.
    """
    root = pathlib.Path(results_dir)
    if not root.is_dir():
        raise ExperimentError(f"no results directory at {root}")
    tables: Dict[str, str] = {}
    for path in sorted(root.glob("*.txt")):
        tables[path.stem] = path.read_text(encoding="utf-8").rstrip("\n")
    return tables


def _section_of(name: str) -> str:
    for prefix, title in _SECTIONS:
        if name.startswith(prefix):
            return title
    return "Other results"


def build_report(
    results_dir: Union[str, os.PathLike],
    title: str = "Reproduction report",
    preamble: Optional[str] = None,
) -> str:
    """Assemble one markdown report from the saved result tables.

    Tables are grouped into sections by figure/ablation prefix, in the
    paper's order.  Returns the markdown text.
    """
    tables = collect_result_tables(results_dir)
    lines: List[str] = [f"# {title}", ""]
    if preamble:
        lines.extend([preamble, ""])
    if not tables:
        lines.append("_No results found — run the benchmark suite first._")
        return "\n".join(lines)

    grouped: Dict[str, List[Tuple[str, str]]] = {}
    for name, text in tables.items():
        grouped.setdefault(_section_of(name), []).append((name, text))

    ordered_titles = [section_title for _, section_title in _SECTIONS]
    ordered_titles.append("Other results")
    for section_title in ordered_titles:
        entries = grouped.get(section_title)
        if not entries:
            continue
        lines.append(f"## {section_title}")
        lines.append("")
        for name, text in entries:
            lines.append(f"### {name}")
            lines.append("")
            lines.append("```")
            lines.append(text)
            lines.append("```")
            lines.append("")
    return "\n".join(lines)
