"""A storage-backed pseudonym service (anonymous mailboxes).

Section III-B's alternative realization: "use the anonymity service
together with a third-party distributed storage service (e.g., email or
a DHT).  In this case, pseudonyms would be storage-service addresses
[...] a sender node m can send a message to a receiver node n by
storing data at the appropriate pseudonym address, and the receiver n
can obtain new messages by regularly polling the storage service."

:class:`MailboxStore` is the third-party storage; it holds bounded
per-address queues with a retention limit.  :class:`MailboxPseudonymService`
adapts it to the :class:`~repro.privlink.link.PseudonymServiceBase`
interface: sends become stores, and the owner's polling loop is modeled
by retrying delivery every ``poll_interval`` until the owner is online
or the message ages out.  Unlike the interactive backends, a mailbox
endpoint therefore delivers messages sent *while the owner was
offline* — an extension the paper's ideal model does not assume, used
by ablation experiments.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import deque
from typing import Any, Deque, Dict, Optional

from ..errors import LinkLayerError
from ..sim import Simulator
from .link import Address, NodeDirectory, PseudonymServiceBase
from .traffic import TrafficLog

__all__ = ["StoredMessage", "MailboxStore", "MailboxPseudonymService"]


@dataclasses.dataclass
class StoredMessage:
    """A message parked at a mailbox address."""

    stored_at: float
    payload: Any


class MailboxStore:
    """Third-party storage service: bounded per-address FIFO queues."""

    __slots__ = (
        "_boxes",
        "_capacity",
        "_retention",
        "stored_count",
        "evicted_count",
        "expired_count",
    )

    def __init__(self, capacity_per_box: int = 256, retention: float = 100.0) -> None:
        if capacity_per_box < 1:
            raise LinkLayerError("capacity_per_box must be at least 1")
        if retention <= 0:
            raise LinkLayerError("retention must be positive")
        self._boxes: Dict[Address, Deque[StoredMessage]] = {}
        self._capacity = capacity_per_box
        self._retention = retention
        self.stored_count = 0
        self.evicted_count = 0
        self.expired_count = 0

    @property
    def retention(self) -> float:
        """Maximum message age before garbage collection."""
        return self._retention

    def open_box(self, address: Address) -> None:
        """Create an empty mailbox (idempotent)."""
        self._boxes.setdefault(address, deque())

    def close_box(self, address: Address) -> None:
        """Destroy a mailbox and all parked messages."""
        self._boxes.pop(address, None)

    def has_box(self, address: Address) -> bool:
        """Whether the mailbox exists."""
        return address in self._boxes

    def store(self, address: Address, payload: Any, now: float) -> bool:
        """Park a message.  Returns False if the mailbox is closed."""
        box = self._boxes.get(address)
        if box is None:
            return False
        if len(box) >= self._capacity:
            box.popleft()
            self.evicted_count += 1
        box.append(StoredMessage(stored_at=now, payload=payload))
        self.stored_count += 1
        return True

    def poll(self, address: Address, now: float) -> list:
        """Drain all unexpired messages from a mailbox."""
        box = self._boxes.get(address)
        if box is None:
            return []
        fresh = []
        while box:
            message = box.popleft()
            if now - message.stored_at > self._retention:
                self.expired_count += 1
                continue
            fresh.append(message.payload)
        return fresh

    def pending(self, address: Address) -> int:
        """Number of parked messages (including not-yet-expired ones)."""
        box = self._boxes.get(address)
        return len(box) if box is not None else 0


class MailboxPseudonymService(PseudonymServiceBase):
    """Pseudonym endpoints realized as anonymous mailboxes.

    Owners are modeled as polling every ``poll_interval``: the service
    schedules periodic delivery attempts per mailbox; each attempt
    drains the box to the owner iff the owner is online.
    """

    __slots__ = (
        "_sim",
        "_directory",
        "_store",
        "_poll_interval",
        "_traffic",
        "_owners",
        "_tokens",
        "sent_count",
        "delivered_count",
    )

    def __init__(
        self,
        sim: Simulator,
        directory: NodeDirectory,
        store: Optional[MailboxStore] = None,
        poll_interval: float = 0.5,
        traffic: Optional[TrafficLog] = None,
    ) -> None:
        if poll_interval <= 0:
            raise LinkLayerError("poll_interval must be positive")
        self._sim = sim
        self._directory = directory
        self._store = store if store is not None else MailboxStore()
        self._poll_interval = poll_interval
        self._traffic = traffic if traffic is not None else TrafficLog(enabled=False)
        self._owners: Dict[Address, int] = {}
        self._tokens = itertools.count(1)
        self.sent_count = 0
        self.delivered_count = 0

    @property
    def store(self) -> MailboxStore:
        """The underlying third-party storage."""
        return self._store

    def create_endpoint(self, owner_id: int) -> Address:
        address = Address(token=next(self._tokens), kind="mailbox")
        self._owners[address] = owner_id
        self._store.open_box(address)
        self._sim.post_after(self._poll_interval, self._poll, address)
        return address

    def close_endpoint(self, address: Address) -> None:
        self._owners.pop(address, None)
        self._store.close_box(address)

    def is_active(self, address: Address) -> bool:
        return address in self._owners

    def send(self, sender_id: int, address: Address, payload: Any) -> None:
        self.sent_count += 1
        self._traffic.record(self._sim.now, f"node:{sender_id}", str(address))
        self._store.store(address, payload, self._sim.now)

    def _poll(self, address: Address) -> None:
        owner = self._owners.get(address)
        if owner is None:
            return  # endpoint closed; stop polling
        self._sim.post_after(self._poll_interval, self._poll, address)
        if not self._directory.is_online(owner):
            return
        for payload in self._store.poll(address, self._sim.now):
            self._traffic.record(self._sim.now, str(address), f"node:{owner}")
            if self._directory.deliver(owner, payload):
                self.delivered_count += 1
