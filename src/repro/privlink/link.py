"""Link-layer abstractions and the ideal services used by the evaluation.

Figure 2 of the paper splits the privacy-preserving link layer into an
*anonymity service* (send to a node whose real ID you know, without
observers linking the endpoints) and a *pseudonym service* (create
pseudonym endpoints; send to an endpoint without either side learning
the other's ID).  This module defines those two interfaces, the
:class:`Address` type for pseudonym endpoints, the simulation-side
:class:`NodeDirectory` plumbing, and ideal implementations matching the
evaluation's assumption of "ideal anonymity and pseudonym services
[...] reliable and [with] both low latency and high bandwidth"
(Section IV): messages arrive after a small latency iff the destination
is online at delivery time.

The :class:`LinkLayer` facade bundles one anonymity service and one
pseudonym service; the overlay layer only ever talks to the facade.
"""

from __future__ import annotations

import abc
import dataclasses
import itertools
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..errors import LinkLayerError, PseudonymError
from ..sim import Simulator
from .traffic import TrafficLog

__all__ = [
    "Address",
    "NodeDirectory",
    "AnonymityService",
    "PseudonymServiceBase",
    "LinkLayer",
    "IdealAnonymityService",
    "IdealPseudonymService",
    "make_ideal_link_layer",
]

Inbox = Callable[[Any], None]
OnlineCheck = Callable[[], bool]


@dataclasses.dataclass(frozen=True, order=True)
class Address:
    """An opaque pseudonym-service endpoint address.

    Knowing an :class:`Address` lets any node send to its owner without
    learning the owner's :class:`~repro.privlink.identity.NodeID`; this
    is the "anonymous address" role pseudonyms play in the paper.
    ``kind`` names the backend that issued it (useful in traces).
    """

    token: int
    kind: str = "ideal"

    def __str__(self) -> str:
        return f"{self.kind}:{self.token}"


class NodeDirectory:
    """Simulation plumbing: maps node ids to inboxes and liveness checks.

    This is *not* the centralized directory the paper rules out — no
    protocol entity reads it; it is how the simulated network hands a
    delivered message to the destination process, i.e. the simulation's
    stand-in for the IP layer.
    """

    __slots__ = ("_inboxes", "_online_checks")

    def __init__(self) -> None:
        self._inboxes: Dict[int, Inbox] = {}
        self._online_checks: Dict[int, OnlineCheck] = {}

    def register(self, node_id: int, inbox: Inbox, is_online: OnlineCheck) -> None:
        """Register a node's delivery endpoint."""
        self._inboxes[node_id] = inbox
        self._online_checks[node_id] = is_online

    def is_registered(self, node_id: int) -> bool:
        """Whether the node has registered an inbox."""
        return node_id in self._inboxes

    def is_online(self, node_id: int) -> bool:
        """Whether the node reports itself online right now."""
        check = self._online_checks.get(node_id)
        return bool(check()) if check is not None else False

    def deliver(self, node_id: int, payload: Any) -> bool:
        """Hand ``payload`` to the node iff it is online.  Returns success."""
        if not self.is_online(node_id):
            return False
        inbox = self._inboxes.get(node_id)
        if inbox is None:
            return False
        inbox(payload)
        return True


class AnonymityService(abc.ABC):
    """Privacy-preserving unicast to a node whose real ID is known."""

    __slots__ = ()

    @abc.abstractmethod
    def send(self, sender_id: int, dest_id: int, payload: Any) -> None:
        """Send ``payload`` from ``sender_id`` to node ``dest_id``.

        Delivery is asynchronous and best-effort: the message is dropped
        silently if the destination is offline when it arrives, matching
        the paper's failure model for individual links.
        """


class PseudonymServiceBase(abc.ABC):
    """Creates pseudonym endpoints and routes messages to them."""

    __slots__ = ()

    @abc.abstractmethod
    def create_endpoint(self, owner_id: int) -> Address:
        """Create a fresh endpoint owned by ``owner_id``.

        The endpoint remains valid while the owner is offline (the
        paper's pseudonym-validity guarantee); expiry is handled a layer
        up, by the overlay's pseudonym lifetimes, which call
        :meth:`close_endpoint`.
        """

    @abc.abstractmethod
    def close_endpoint(self, address: Address) -> None:
        """Destroy an endpoint.  Later sends to it are dropped."""

    @abc.abstractmethod
    def send(self, sender_id: int, address: Address, payload: Any) -> None:
        """Send ``payload`` to the owner of ``address`` (best effort)."""

    @abc.abstractmethod
    def is_active(self, address: Address) -> bool:
        """Whether the endpoint still exists."""


class _LatencyModel:
    """Draws per-message one-way latencies: Uniform(0, max_latency].

    A ``fixed`` latency overrides the draw entirely and consumes no
    randomness: every message takes exactly that long.  With
    ``fixed=1.0`` each broadcast hop lands on the next integer sim
    time — the round discretization the dissemination-plane
    differential tests rely on when churn must interleave with an
    in-flight epidemic.
    """

    __slots__ = ("_max_latency", "_rng", "_fixed")

    def __init__(
        self,
        max_latency: float,
        rng: np.random.Generator,
        fixed: Optional[float] = None,
    ) -> None:
        if max_latency < 0:
            raise LinkLayerError("max_latency must be non-negative")
        if fixed is not None and fixed < 0:
            raise LinkLayerError("fixed latency must be non-negative")
        self._max_latency = max_latency
        self._rng = rng
        self._fixed = fixed

    def sample(self) -> float:
        if self._fixed is not None:
            return float(self._fixed)
        if self._max_latency == 0.0:
            return 0.0
        return float(self._rng.uniform(0.0, self._max_latency))


class _LossModel:
    """Independent per-message loss with probability ``loss_rate``.

    The evaluation assumes reliable links; a non-zero rate stresses the
    protocol's tolerance of real-network message loss (gossip is
    naturally redundant, so moderate loss should cost little — the
    ``bench_ablation_loss`` experiment quantifies it).
    """

    __slots__ = ("_loss_rate", "_rng", "dropped")

    def __init__(self, loss_rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise LinkLayerError("loss_rate must be in [0, 1)")
        self._loss_rate = loss_rate
        self._rng = rng
        self.dropped = 0

    def drop(self) -> bool:
        if self._loss_rate == 0.0:
            return False
        if self._rng.random() < self._loss_rate:
            self.dropped += 1
            return True
        return False


class IdealAnonymityService(AnonymityService):
    """The evaluation's ideal anonymity service.

    Reliable, low-latency delivery whenever the destination is online at
    the moment of arrival; the traffic log still records the (single)
    observable channel so attack analyses can run against ideal links
    too.
    """

    __slots__ = (
        "_sim",
        "_directory",
        "_latency",
        "loss",
        "_traffic",
        "sent_count",
        "delivered_count",
    )

    def __init__(
        self,
        sim: Simulator,
        directory: NodeDirectory,
        rng: np.random.Generator,
        max_latency: float = 0.05,
        loss_rate: float = 0.0,
        traffic: Optional[TrafficLog] = None,
        fixed_latency: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._directory = directory
        self._latency = _LatencyModel(max_latency, rng, fixed=fixed_latency)
        self.loss = _LossModel(loss_rate, rng)
        self._traffic = traffic if traffic is not None else TrafficLog(enabled=False)
        self.sent_count = 0
        self.delivered_count = 0

    def send(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.sent_count += 1
        self._traffic.record(self._sim.now, f"node:{sender_id}", f"node:{dest_id}")
        if self.loss.drop():
            return
        self._sim.post_after(
            self._latency.sample(), self._deliver, dest_id, payload
        )

    def _deliver(self, dest_id: int, payload: Any) -> None:
        if self._directory.deliver(dest_id, payload):
            self.delivered_count += 1


class IdealPseudonymService(PseudonymServiceBase):
    """The evaluation's ideal pseudonym service.

    Endpoints are plain address tokens resolved internally to their
    owner.  The resolution table is invisible to protocol entities —
    it models the rendezvous machinery a real deployment gets from
    Tor hidden services or I2P eepsites.
    """

    __slots__ = (
        "_sim",
        "_directory",
        "_latency",
        "loss",
        "_traffic",
        "_owners",
        "_tokens",
        "sent_count",
        "delivered_count",
        "dropped_closed",
    )

    def __init__(
        self,
        sim: Simulator,
        directory: NodeDirectory,
        rng: np.random.Generator,
        max_latency: float = 0.05,
        loss_rate: float = 0.0,
        traffic: Optional[TrafficLog] = None,
        fixed_latency: Optional[float] = None,
    ) -> None:
        self._sim = sim
        self._directory = directory
        self._latency = _LatencyModel(max_latency, rng, fixed=fixed_latency)
        self.loss = _LossModel(loss_rate, rng)
        self._traffic = traffic if traffic is not None else TrafficLog(enabled=False)
        self._owners: Dict[Address, int] = {}
        self._tokens = itertools.count(1)
        self.sent_count = 0
        self.delivered_count = 0
        self.dropped_closed = 0

    def create_endpoint(self, owner_id: int) -> Address:
        address = Address(token=next(self._tokens), kind="ideal")
        self._owners[address] = owner_id
        return address

    def close_endpoint(self, address: Address) -> None:
        self._owners.pop(address, None)

    def is_active(self, address: Address) -> bool:
        return address in self._owners

    def owner_of(self, address: Address) -> int:
        """Internal resolution — exposed for tests and attack oracles."""
        try:
            return self._owners[address]
        except KeyError:
            raise PseudonymError(f"unknown or closed endpoint {address}") from None

    def send(self, sender_id: int, address: Address, payload: Any) -> None:
        self.sent_count += 1
        self._traffic.record(self._sim.now, f"node:{sender_id}", str(address))
        if self.loss.drop():
            return
        self._sim.post_after(
            self._latency.sample(), self._deliver, address, payload
        )

    def _deliver(self, address: Address, payload: Any) -> None:
        owner = self._owners.get(address)
        if owner is None:
            self.dropped_closed += 1
            return
        if self._directory.deliver(owner, payload):
            self.delivered_count += 1


class LinkLayer:
    """Facade over one anonymity service and one pseudonym service.

    This is the only interface the overlay layer sees, mirroring the
    architecture in Figure 2 of the paper.
    """

    # "network" is set by make_mixnet_link_layer so attack analyses and
    # overlay stats can reach the backing MixNetwork.
    __slots__ = ("directory", "anonymity", "pseudonym", "network")

    def __init__(
        self,
        directory: NodeDirectory,
        anonymity: AnonymityService,
        pseudonym: PseudonymServiceBase,
    ) -> None:
        self.directory = directory
        self.anonymity = anonymity
        self.pseudonym = pseudonym

    def register_node(self, node_id: int, inbox: Inbox, is_online: OnlineCheck) -> None:
        """Register a node's message sink and liveness predicate."""
        self.directory.register(node_id, inbox, is_online)

    def send_to_node(self, sender_id: int, dest_id: int, payload: Any) -> None:
        """Trusted-link send (real ID known to the sender)."""
        self.anonymity.send(sender_id, dest_id, payload)

    def send_to_endpoint(self, sender_id: int, address: Address, payload: Any) -> None:
        """Pseudonym-link send (only the pseudonym known)."""
        self.pseudonym.send(sender_id, address, payload)

    def send_reverse(self, sender_id: int, dest_id: int, payload: Any) -> None:
        """Push a message down an *established incoming* link.

        Overlay links are bidirectional channels ("all communication
        through overlay links can be bidirectional", paper §IV-C): once
        peer m holds a pseudonym link to n, n can answer over that same
        channel without ever learning m's identity — in a deployment the
        link is a standing mix circuit both ends can write to.  The
        simulation routes by destination id, which stands in for the
        channel handle; it does not model an identity disclosure.
        """
        self.anonymity.send(sender_id, dest_id, payload)

    def create_endpoint(self, owner_id: int) -> Address:
        """Create a pseudonym endpoint for ``owner_id``."""
        return self.pseudonym.create_endpoint(owner_id)

    def close_endpoint(self, address: Address) -> None:
        """Retire a pseudonym endpoint."""
        self.pseudonym.close_endpoint(address)


def make_ideal_link_layer(
    sim: Simulator,
    rng: np.random.Generator,
    max_latency: float = 0.05,
    loss_rate: float = 0.0,
    traffic: Optional[TrafficLog] = None,
    fixed_latency: Optional[float] = None,
) -> LinkLayer:
    """Convenience constructor for the evaluation's ideal link layer.

    ``loss_rate`` > 0 departs from the ideal model: each message is
    independently dropped with that probability even when the
    destination is online (network-loss stress testing).
    ``fixed_latency`` replaces the uniform latency draw with a constant
    (no RNG consumption) — deterministic per-hop timing for round-exact
    dissemination tests.
    """
    directory = NodeDirectory()
    anonymity = IdealAnonymityService(
        sim, directory, rng, max_latency=max_latency, loss_rate=loss_rate,
        traffic=traffic, fixed_latency=fixed_latency,
    )
    pseudonym = IdealPseudonymService(
        sim, directory, rng, max_latency=max_latency, loss_rate=loss_rate,
        traffic=traffic, fixed_latency=fixed_latency,
    )
    return LinkLayer(directory, anonymity, pseudonym)
