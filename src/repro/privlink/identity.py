"""Node identities and simulated key material.

A :class:`NodeID` is the real, privacy-sensitive identity of a
participant (think: IP address plus user identity).  The whole point of
the paper's design is that NodeIDs are *only* ever revealed to trusted
peers; every other party sees pseudonyms.

Key material is simulated: a :class:`KeyPair` carries opaque integer
key identifiers rather than real asymmetric keys.  The simulation
enforces the same *structural* guarantees real crypto would (a layer
"encrypted" to key k can only be opened by the holder of k) without the
cost of actual cryptography, which is irrelevant to the phenomena the
paper measures.
"""

from __future__ import annotations

import dataclasses
import itertools

__all__ = ["NodeID", "KeyPair", "KeyRegistry"]


@dataclasses.dataclass(frozen=True, order=True)
class NodeID:
    """The real identity of a node.

    ``value`` is the node's index in the trust graph; ``realm`` allows
    multiple distinct systems in one simulation (e.g. relays vs
    participants) to have non-colliding identities.
    """

    value: int
    realm: str = "node"

    def __str__(self) -> str:
        return f"{self.realm}:{self.value}"


@dataclasses.dataclass(frozen=True)
class KeyPair:
    """A simulated asymmetric key pair.

    ``public`` may be shared freely; only the holder of the matching
    ``private`` value can open layers sealed to ``public``.  In this
    simulation both are the same integer, but the type distinction keeps
    call sites honest about which half they are allowed to see.
    """

    public: int
    private: int

    def matches(self, public_key: int) -> bool:
        """Whether this pair can open material sealed to ``public_key``."""
        return self.private == public_key


class KeyRegistry:
    """Issues unique key pairs.

    A single registry per simulation guarantees key identifiers never
    collide, which is what lets the simulated crypto stand in for real
    key-based access control.
    """

    __slots__ = ("_counter",)

    def __init__(self) -> None:
        self._counter = itertools.count(1)

    def issue(self) -> KeyPair:
        """Create a fresh key pair."""
        key = next(self._counter)
        return KeyPair(public=key, private=key)
