"""Privacy-preserving link layer (paper Section III-B).

Provides the anonymity service (send to a known node id without
observable linkage) and pseudonym service (send to an anonymous
endpoint address), in three flavors:

* **Ideal** (:func:`make_ideal_link_layer`) — the evaluation's
  assumption: reliable, low-latency delivery iff the destination is
  online.
* **Mixnet** (:func:`make_mixnet_link_layer`) — simulated Chaum mixes
  with layered encryption, relay replay caches, and hidden-service
  style rendezvous pseudonyms; feeds the attack analyses.
* **Mailbox** (:class:`MailboxPseudonymService`) — the storage-backed
  alternative from the paper, which also covers offline receivers.
"""

from .crypto import Sealed, layer_digest, message_digest, seal, seal_layers, unseal
from .identity import KeyPair, KeyRegistry, NodeID
from .link import (
    Address,
    AnonymityService,
    IdealAnonymityService,
    IdealPseudonymService,
    LinkLayer,
    NodeDirectory,
    PseudonymServiceBase,
    make_ideal_link_layer,
)
from .mixnet import (
    MixNetwork,
    MixnetAnonymityService,
    Relay,
    RendezvousPseudonymService,
    make_mixnet_link_layer,
)
from .storage import MailboxPseudonymService, MailboxStore, StoredMessage
from .traffic import LegacyTrafficLog, TrafficLog, TrafficRecord

__all__ = [
    "NodeID",
    "KeyPair",
    "KeyRegistry",
    "Sealed",
    "seal",
    "seal_layers",
    "unseal",
    "message_digest",
    "layer_digest",
    "Address",
    "NodeDirectory",
    "AnonymityService",
    "PseudonymServiceBase",
    "LinkLayer",
    "IdealAnonymityService",
    "IdealPseudonymService",
    "make_ideal_link_layer",
    "Relay",
    "MixNetwork",
    "MixnetAnonymityService",
    "RendezvousPseudonymService",
    "make_mixnet_link_layer",
    "MailboxStore",
    "MailboxPseudonymService",
    "StoredMessage",
    "TrafficLog",
    "LegacyTrafficLog",
    "TrafficRecord",
]
