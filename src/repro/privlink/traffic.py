"""Observer-visible traffic records.

External observers in the paper's threat model (Section II-D) are
passive entities — e.g. an ISP — that can watch communication channels
and apply traffic analysis, but cannot read encrypted content.  The
privacy analyses in :mod:`repro.attacks` therefore need a faithful log
of what such an observer sees: *which channel* (pair of transport
endpoints) carried a message *when*, and nothing about the content.

Every concrete link-layer implementation writes to a
:class:`TrafficLog`; the ideal layer writes single-hop records, the
mixnet writes one record per relay hop.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["TrafficRecord", "TrafficLog"]


@dataclasses.dataclass(frozen=True)
class TrafficRecord:
    """One channel observation.

    ``src`` and ``dst`` are transport endpoints as an observer sees
    them (stringified node or relay identities), not protocol-level
    identities.
    """

    time: float
    src: str
    dst: str
    size_hint: int = 1


class TrafficLog:
    """Append-only log of :class:`TrafficRecord` entries.

    The log can be disabled (``enabled=False``) for large experiments
    where no attack analysis runs; recording then costs one branch.
    """

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        self._enabled = enabled
        self._records: List[TrafficRecord] = []
        self._max_records = max_records
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether :meth:`record` stores anything."""
        return self._enabled

    @property
    def dropped(self) -> int:
        """Records discarded due to the size cap."""
        return self._dropped

    def record(self, time: float, src: str, dst: str, size_hint: int = 1) -> None:
        """Store one observation (no-op when disabled)."""
        if not self._enabled:
            return
        if self._max_records is not None and len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TrafficRecord(time, src, dst, size_hint))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrafficRecord]:
        return iter(self._records)

    def channels(self) -> Counter:
        """Message count per observed (src, dst) channel."""
        return Counter((record.src, record.dst) for record in self._records)

    def by_endpoint(self) -> Dict[str, List[TrafficRecord]]:
        """Records grouped by every endpoint they touch."""
        grouped: Dict[str, List[TrafficRecord]] = defaultdict(list)
        for record in self._records:
            grouped[record.src].append(record)
            grouped[record.dst].append(record)
        return dict(grouped)

    def window(self, start: float, end: float) -> List[TrafficRecord]:
        """Records with ``start <= time < end``."""
        return [record for record in self._records if start <= record.time < end]

    def unique_endpoints(self) -> Tuple[str, ...]:
        """All endpoint identifiers appearing in the log."""
        endpoints = set()
        for record in self._records:
            endpoints.add(record.src)
            endpoints.add(record.dst)
        return tuple(sorted(endpoints))

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
        self._dropped = 0
