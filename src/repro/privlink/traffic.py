"""Observer-visible traffic records (columnar fast path).

External observers in the paper's threat model (Section II-D) are
passive entities — e.g. an ISP — that can watch communication channels
and apply traffic analysis, but cannot read encrypted content.  The
privacy analyses in :mod:`repro.attacks` therefore need a faithful log
of what such an observer sees: *which channel* (pair of transport
endpoints) carried a message *when*, and nothing about the content.

Every concrete link-layer implementation writes to a
:class:`TrafficLog`; the ideal layer writes single-hop records, the
mixnet writes one record per relay hop.  Mixnet-backed runs produce
one record per hop per message, so the log is the top allocator of
intensive dissemination experiments; :class:`TrafficLog` therefore
stores observations *columnar*:

* ``time`` — ``float64``, sealed into exact-size numpy chunks;
* ``src`` / ``dst`` — ``uint32`` ids into an endpoint-interning table
  (each distinct endpoint string is stored exactly once);
* ``size_hint`` — ``uint32``.

Appends land in plain-list buffers (list appends are several times
cheaper than element-wise numpy stores); once a buffer reaches the
chunk size it is sealed into numpy arrays in one C-speed pass.

That is 20 bytes per observation against the ~150+ bytes of the
previous list-of-dataclasses layout, and it lets every aggregate query
(:meth:`channels`, :meth:`window`, …) run as a vectorized pass instead
of a Python loop.  Consumers that want the record view still get it:
iteration lazily materializes :class:`TrafficRecord` objects, so the
columnar log is a drop-in replacement.  :class:`LegacyTrafficLog`
preserves the original row layout as a differential-testing reference
(the ``mixnet_message`` benchmark asserts both agree on every query).
"""

from __future__ import annotations

import dataclasses
import sys
from collections import Counter
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = ["TrafficRecord", "TrafficLog", "LegacyTrafficLog"]

#: Rows per sealed column chunk (~1.25 MiB per full chunk).
_CHUNK_RECORDS = 65536


@dataclasses.dataclass(frozen=True)
class TrafficRecord:
    """One channel observation.

    ``src`` and ``dst`` are transport endpoints as an observer sees
    them (stringified node or relay identities), not protocol-level
    identities.
    """

    time: float
    src: str
    dst: str
    size_hint: int = 1


class TrafficLog:
    """Append-only columnar log of channel observations.

    The log can be disabled (``enabled=False``) for large experiments
    where no attack analysis runs; recording then costs one branch and
    allocates nothing.  Endpoint strings are interned to ``uint32`` ids
    on first sight; sealed chunks are exact-size numpy arrays, so a
    million observations cost ~20 MB instead of the ~150 MB the legacy
    list-of-dataclasses layout needed.

    ``max_records`` caps stored rows; further :meth:`record` calls only
    increment :attr:`dropped`.  :meth:`clear` resets rows, the
    interning table, and the drop counter.
    """

    __slots__ = (
        "_enabled",
        "_max_records",
        "_chunk_records",
        "_dropped",
        "_intern",
        "_names",
        "_full",
        "_buf",
        "_length",
    )

    def __init__(
        self,
        enabled: bool = True,
        max_records: Optional[int] = None,
        chunk_records: int = _CHUNK_RECORDS,
    ) -> None:
        if chunk_records < 1:
            raise ValueError("chunk_records must be at least 1")
        self._enabled = enabled
        self._max_records = max_records
        self._chunk_records = chunk_records
        self._dropped = 0
        # Endpoint interning: name -> uint32 id; _names[id] -> name.
        self._intern: Dict[str, int] = {}
        self._names: List[str] = []
        # Sealed (time, src, dst, size) column chunks, oldest first.
        self._full: List[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = []
        # Active chunk: one (time, src_id, dst_id, size) tuple per row
        # in a plain list — a single append is the cheapest hot path.
        self._buf: List[Tuple[float, int, int, int]] = []
        self._length = 0

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether :meth:`record` stores anything."""
        return self._enabled

    @property
    def dropped(self) -> int:
        """Records discarded due to the size cap."""
        return self._dropped

    def record(self, time: float, src: str, dst: str, size_hint: int = 1) -> None:
        """Store one observation (no-op when disabled)."""
        if not self._enabled:
            return
        if self._max_records is not None and self._length >= self._max_records:
            self._dropped += 1
            return
        intern = self._intern
        src_id = intern.get(src)
        if src_id is None:
            src_id = len(self._names)
            intern[src] = src_id
            self._names.append(src)
        dst_id = intern.get(dst)
        if dst_id is None:
            dst_id = len(self._names)
            intern[dst] = dst_id
            self._names.append(dst)
        buf = self._buf
        buf.append((time, src_id, dst_id, size_hint))
        self._length += 1
        if len(buf) >= self._chunk_records:
            self._seal_buffer()

    def _seal_buffer(self) -> None:
        """Seal the append buffer into one exact-size numpy chunk."""
        if not self._buf:
            return
        times, srcs, dsts, sizes = zip(*self._buf)
        self._full.append(
            (
                np.asarray(times, dtype=np.float64),
                np.asarray(srcs, dtype=np.uint32),
                np.asarray(dsts, dtype=np.uint32),
                np.asarray(sizes, dtype=np.uint32),
            )
        )
        self._buf = []

    # ------------------------------------------------------------------
    # columnar access
    # ------------------------------------------------------------------

    def columns(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(times, src_ids, dst_ids, size_hints)`` over all records.

        Returns freshly concatenated arrays in record order; ids index
        :meth:`endpoint_names`.  The arrays are snapshots — later
        :meth:`record` calls do not mutate them.
        """
        self._seal_buffer()
        parts = self._full
        if not parts:
            return (
                np.empty(0, dtype=np.float64),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.uint32),
                np.empty(0, dtype=np.uint32),
            )
        if len(parts) == 1:
            return parts[0]
        return (
            np.concatenate([part[0] for part in parts]),
            np.concatenate([part[1] for part in parts]),
            np.concatenate([part[2] for part in parts]),
            np.concatenate([part[3] for part in parts]),
        )

    def endpoint_names(self) -> Tuple[str, ...]:
        """Interned endpoint strings, indexed by the ids in :meth:`columns`."""
        return tuple(self._names)

    def endpoint_id(self, name: str) -> Optional[int]:
        """The interned id of ``name`` (None if never recorded)."""
        return self._intern.get(name)

    def memory_bytes(self) -> int:
        """Bytes held by column storage plus the interning tables.

        Seals any pending append buffer first, so the answer is pure
        array ``nbytes`` plus the Python-side interning dict, name
        list, and name strings.
        """
        self._seal_buffer()
        total = 0
        for part in self._full:
            total += sum(column.nbytes for column in part)
        total += sys.getsizeof(self._intern) + sys.getsizeof(self._names)
        total += sum(sys.getsizeof(name) for name in self._names)
        return total

    # ------------------------------------------------------------------
    # record views and queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[TrafficRecord]:
        """Lazily materialize :class:`TrafficRecord` views, in order."""
        names = self._names
        for times, srcs, dsts, sizes in list(self._full):
            time_list = times.tolist()
            src_list = srcs.tolist()
            dst_list = dsts.tolist()
            size_list = sizes.tolist()
            for index in range(len(time_list)):
                yield TrafficRecord(
                    time_list[index],
                    names[src_list[index]],
                    names[dst_list[index]],
                    size_list[index],
                )
        for time, src_id, dst_id, size_hint in list(self._buf):
            yield TrafficRecord(time, names[src_id], names[dst_id], size_hint)

    def channels(self) -> Counter:
        """Message count per observed (src, dst) channel."""
        _, src_ids, dst_ids, _ = self.columns()
        if not src_ids.size:
            return Counter()
        keys = src_ids.astype(np.uint64) << np.uint64(32)
        keys |= dst_ids.astype(np.uint64)
        unique, counts = np.unique(keys, return_counts=True)
        names = self._names
        out: Counter = Counter()
        for key, count in zip(unique.tolist(), counts.tolist()):
            out[(names[key >> 32], names[key & 0xFFFFFFFF])] = count
        return out

    def by_endpoint(self) -> Dict[str, List[TrafficRecord]]:
        """Records grouped by every endpoint they touch."""
        grouped: Dict[str, List[TrafficRecord]] = {}
        for record in self:
            grouped.setdefault(record.src, []).append(record)
            grouped.setdefault(record.dst, []).append(record)
        return grouped

    def window(self, start: float, end: float) -> List[TrafficRecord]:
        """Records with ``start <= time < end``."""
        times, src_ids, dst_ids, sizes = self.columns()
        if not times.size:
            return []
        mask = (times >= start) & (times < end)
        indices = np.nonzero(mask)[0]
        names = self._names
        return [
            TrafficRecord(
                float(times[index]),
                names[int(src_ids[index])],
                names[int(dst_ids[index])],
                int(sizes[index]),
            )
            for index in indices.tolist()
        ]

    def unique_endpoints(self) -> Tuple[str, ...]:
        """All endpoint identifiers appearing in the log."""
        return tuple(sorted(self._names))

    def clear(self) -> None:
        """Drop all records, the interning table, and the drop counter."""
        self._dropped = 0
        self._intern = {}
        self._names = []
        self._full = []
        self._buf = []
        self._length = 0


class LegacyTrafficLog:
    """The original list-of-dataclasses traffic log.

    Kept as the differential-testing reference for :class:`TrafficLog`:
    both must answer every query identically for the same sequence of
    :meth:`record` calls.  The ``mixnet_message`` benchmark and the
    traffic tests pin that equivalence; new code should use
    :class:`TrafficLog`.
    """

    __slots__ = ("_enabled", "_records", "_max_records", "_dropped")

    def __init__(self, enabled: bool = True, max_records: Optional[int] = None) -> None:
        self._enabled = enabled
        self._records: List[TrafficRecord] = []
        self._max_records = max_records
        self._dropped = 0

    @property
    def enabled(self) -> bool:
        """Whether :meth:`record` stores anything."""
        return self._enabled

    @property
    def dropped(self) -> int:
        """Records discarded due to the size cap."""
        return self._dropped

    def record(self, time: float, src: str, dst: str, size_hint: int = 1) -> None:
        """Store one observation (no-op when disabled)."""
        if not self._enabled:
            return
        if self._max_records is not None and len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TrafficRecord(time, src, dst, size_hint))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TrafficRecord]:
        return iter(self._records)

    def channels(self) -> Counter:
        """Message count per observed (src, dst) channel."""
        return Counter((record.src, record.dst) for record in self._records)

    def by_endpoint(self) -> Dict[str, List[TrafficRecord]]:
        """Records grouped by every endpoint they touch."""
        grouped: Dict[str, List[TrafficRecord]] = {}
        for record in self._records:
            grouped.setdefault(record.src, []).append(record)
            grouped.setdefault(record.dst, []).append(record)
        return grouped

    def window(self, start: float, end: float) -> List[TrafficRecord]:
        """Records with ``start <= time < end``."""
        return [record for record in self._records if start <= record.time < end]

    def unique_endpoints(self) -> Tuple[str, ...]:
        """All endpoint identifiers appearing in the log."""
        endpoints = set()
        for record in self._records:
            endpoints.add(record.src)
            endpoints.add(record.dst)
        return tuple(sorted(endpoints))

    def memory_bytes(self) -> int:
        """Bytes held by the record list, records, and their strings.

        Mirrors :meth:`TrafficLog.memory_bytes` accounting: container,
        per-record objects (instance plus ``__dict__``), and each
        distinct endpoint string once.
        """
        total = sys.getsizeof(self._records)
        seen = set()
        for record in self._records:
            total += sys.getsizeof(record) + sys.getsizeof(record.__dict__)
            for name in (record.src, record.dst):
                if name not in seen:
                    seen.add(name)
                    total += sys.getsizeof(name)
        return total

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()
        self._dropped = 0
