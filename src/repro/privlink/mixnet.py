"""A simulated mix network (Chaum-style) and services built on it.

The paper's link layer can be realized with mix networks (Section
III-B): the sender wraps a message in one encryption layer per relay;
each relay strips a layer and forwards, so no relay knows its position
in the chain and an external observer cannot associate sender with
receiver.  Pseudonym endpoints follow the Tor-hidden-service / I2P
pattern: the *last relay* of a circuit built by the endpoint's owner
acts as the pseudonym's rendezvous point.

This module implements that machinery with simulated crypto
(:mod:`repro.privlink.crypto`):

* :class:`Relay` — strips one onion layer per message, enforces a
  replay cache (Section III-C's defense: remember digests of messages
  relayed to each pseudonym, drop repeats).
* :class:`MixNetwork` — the relay pool plus circuit construction.
* :class:`MixnetAnonymityService` — sender-built circuits terminating
  at a destination whose real ID is known.
* :class:`RendezvousPseudonymService` — owner-built circuits whose last
  relay is the pseudonym address; inbound messages traverse a
  sender-side circuit to the rendezvous relay, then the owner's return
  circuit.

Relays are modeled as third-party infrastructure with high availability
(the paper notes "existing anonymity services are known to provide high
availability"), so they are always online; participant liveness is
still checked at final delivery.  Every hop is written to the traffic
log, which the attack analyses consume.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import MixnetError, PseudonymError
from ..sim import Simulator
from .crypto import Sealed, message_digest, seal_layers, unseal
from .identity import KeyPair, KeyRegistry
from .link import Address, AnonymityService, NodeDirectory, PseudonymServiceBase
from .traffic import TrafficLog

__all__ = [
    "Relay",
    "MixNetwork",
    "MixnetAnonymityService",
    "RendezvousPseudonymService",
    "make_mixnet_link_layer",
]

# Routing-hint verbs understood by relays.
_HINT_RELAY = "relay"
_HINT_DELIVER = "deliver"
_HINT_RENDEZVOUS = "rendezvous"


class Relay:
    """One mix relay: a key pair, a forwarding engine, a replay cache."""

    def __init__(self, relay_id: int, key_pair: KeyPair, network: "MixNetwork") -> None:
        self.relay_id = relay_id
        self.key_pair = key_pair
        self._network = network
        self._replay_cache: Set[bytes] = set()
        self.forwarded = 0
        self.replays_dropped = 0

    @property
    def name(self) -> str:
        """The endpoint identifier observers see for this relay."""
        return f"relay:{self.relay_id}"

    def replay_cache_size(self) -> int:
        """Number of remembered message digests."""
        return len(self._replay_cache)

    def flush_replay_cache(self) -> None:
        """Drop remembered digests.

        The overlay's ephemeral pseudonyms are what keep this cache
        bounded in the paper ("the space requirements [...] become
        bounded for each pseudonym"); the simulation exposes an explicit
        flush so long experiments can model cache turnover.
        """
        self._replay_cache.clear()

    def process(self, sealed: Any, arrived_from: str, time: float) -> None:
        """Strip one layer and act on the routing hint."""
        digest = message_digest(sealed)
        if digest in self._replay_cache:
            self.replays_dropped += 1
            return
        self._replay_cache.add(digest)

        if not isinstance(sealed, Sealed):
            raise MixnetError(f"relay {self.relay_id} received a non-onion payload")
        hint, inner = unseal(self.key_pair, sealed)
        verb = hint[0]
        self.forwarded += 1
        if verb == _HINT_RELAY:
            next_relay_id = hint[1]
            self._network.hop(self, next_relay_id, inner, time)
        elif verb == _HINT_DELIVER:
            dest_node_id = hint[1]
            self._network.final_delivery(self, dest_node_id, inner, time)
        elif verb == _HINT_RENDEZVOUS:
            address = hint[1]
            self._network.rendezvous_delivery(self, address, inner, time)
        else:
            raise MixnetError(f"unknown routing hint verb {verb!r}")


class MixNetwork:
    """The relay pool, circuit builder, and hop scheduler."""

    def __init__(
        self,
        sim: Simulator,
        directory: NodeDirectory,
        rng: np.random.Generator,
        num_relays: int = 20,
        circuit_length: int = 3,
        hop_latency: float = 0.01,
        relay_availability: float = 1.0,
        traffic: Optional[TrafficLog] = None,
    ) -> None:
        """``relay_availability`` models third-party infrastructure that
        is highly but not perfectly available (the paper assumes "high
        availability" for deployed anonymity services): each hop is
        dropped with probability ``1 - relay_availability``."""
        if num_relays < circuit_length:
            raise MixnetError(
                f"need at least {circuit_length} relays, got {num_relays}"
            )
        if circuit_length < 1:
            raise MixnetError("circuit_length must be at least 1")
        if not 0.0 < relay_availability <= 1.0:
            raise MixnetError("relay_availability must be in (0, 1]")
        self._sim = sim
        self._directory = directory
        self._rng = rng
        self._circuit_length = circuit_length
        self._hop_latency = hop_latency
        self._relay_availability = relay_availability
        self.dropped_relay_down = 0
        self.traffic = traffic if traffic is not None else TrafficLog(enabled=False)

        keys = KeyRegistry()
        self.relays: List[Relay] = [
            Relay(relay_id, keys.issue(), self) for relay_id in range(num_relays)
        ]
        # Rendezvous table: pseudonym address -> (rendezvous relay id,
        # owner's return circuit as relay ids, owner node id).  The owner
        # id is known only to this table — the simulation stand-in for
        # the owner-built return circuit's endpoint.
        self._rendezvous: Dict[Address, Tuple[int, Tuple[int, ...], int]] = {}
        self.delivered_count = 0
        self.dropped_offline = 0
        self.dropped_closed = 0

    @property
    def circuit_length(self) -> int:
        """Relays per circuit."""
        return self._circuit_length

    def build_circuit(self, length: Optional[int] = None) -> List[Relay]:
        """Pick ``length`` distinct relays uniformly at random."""
        if length is None:
            length = self._circuit_length
        indices = self._rng.choice(len(self.relays), size=length, replace=False)
        return [self.relays[int(index)] for index in indices]

    # -- onion construction ------------------------------------------------

    def wrap_for_node(self, circuit: List[Relay], dest_node_id: int, payload: Any) -> Sealed:
        """Onion whose last layer delivers to a known node id."""
        hops = []
        for position, relay in enumerate(circuit):
            if position + 1 < len(circuit):
                hint = (_HINT_RELAY, circuit[position + 1].relay_id)
            else:
                hint = (_HINT_DELIVER, dest_node_id)
            hops.append((relay.key_pair.public, hint))
        return seal_layers(tuple(hops), payload)

    def wrap_for_rendezvous(
        self, circuit: List[Relay], address: Address, payload: Any
    ) -> Sealed:
        """Onion whose last layer hands the payload to a rendezvous relay."""
        hops = []
        for position, relay in enumerate(circuit):
            if position + 1 < len(circuit):
                hint = (_HINT_RELAY, circuit[position + 1].relay_id)
            else:
                hint = (_HINT_RENDEZVOUS, address)
            hops.append((relay.key_pair.public, hint))
        return seal_layers(tuple(hops), payload)

    # -- scheduling --------------------------------------------------------

    def _latency(self) -> float:
        if self._hop_latency == 0.0:
            return 0.0
        return float(self._rng.uniform(0.5 * self._hop_latency, 1.5 * self._hop_latency))

    def _relay_up(self) -> bool:
        if self._relay_availability >= 1.0:
            return True
        if self._rng.random() < self._relay_availability:
            return True
        self.dropped_relay_down += 1
        return False

    def inject(self, sender_name: str, first_relay: Relay, onion: Sealed) -> None:
        """Send an onion from an edge node into the mix."""
        self.traffic.record(self._sim.now, sender_name, first_relay.name)
        if not self._relay_up():
            return
        self._sim.post_after(
            self._latency(), first_relay.process, onion, sender_name, self._sim.now
        )

    def hop(self, from_relay: Relay, next_relay_id: int, inner: Any, time: float) -> None:
        """Forward between relays."""
        try:
            next_relay = self.relays[next_relay_id]
        except IndexError:
            raise MixnetError(f"unknown relay id {next_relay_id}") from None
        self.traffic.record(self._sim.now, from_relay.name, next_relay.name)
        if not self._relay_up():
            return
        self._sim.post_after(
            self._latency(), next_relay.process, inner, from_relay.name, self._sim.now
        )

    def final_delivery(
        self, from_relay: Relay, dest_node_id: int, payload: Any, time: float
    ) -> None:
        """Last hop of an anonymity-service circuit: relay -> node."""
        self.traffic.record(self._sim.now, from_relay.name, f"node:{dest_node_id}")
        self._sim.post_after(self._latency(), self._deliver_to_node, dest_node_id, payload)

    def rendezvous_delivery(
        self, from_relay: Relay, address: Address, payload: Any, time: float
    ) -> None:
        """A rendezvous relay received a message for a pseudonym endpoint.

        The payload continues along the owner's return circuit (modeled
        as the recorded relay chain) and finally reaches the owner.
        """
        entry = self._rendezvous.get(address)
        if entry is None:
            self.dropped_closed += 1
            return
        rendezvous_relay_id, return_circuit, owner_id = entry
        if from_relay.relay_id != rendezvous_relay_id:
            # Message reached a relay that is not this pseudonym's
            # rendezvous point; a real network would fail to decrypt.
            self.dropped_closed += 1
            return
        previous_name = from_relay.name
        delay = 0.0
        for relay_id in return_circuit:
            delay += self._latency()
            relay_name = self.relays[relay_id].name
            self.traffic.record(self._sim.now + delay, previous_name, relay_name)
            previous_name = relay_name
        delay += self._latency()
        self.traffic.record(self._sim.now + delay, previous_name, f"node:{owner_id}")
        self._sim.post_after(delay, self._deliver_to_node, owner_id, payload)

    def _deliver_to_node(self, node_id: int, payload: Any) -> None:
        if self._directory.deliver(node_id, payload):
            self.delivered_count += 1
        else:
            self.dropped_offline += 1

    # -- rendezvous registry ------------------------------------------------

    def open_rendezvous(self, owner_id: int) -> Address:
        """Owner builds a return circuit; its last relay becomes the address."""
        circuit = self.build_circuit()
        rendezvous_relay = circuit[-1]
        return_circuit = tuple(relay.relay_id for relay in reversed(circuit[:-1]))
        address = Address(token=_next_rendezvous_token(), kind="rendezvous")
        self._rendezvous[address] = (rendezvous_relay.relay_id, return_circuit, owner_id)
        return address

    def close_rendezvous(self, address: Address) -> None:
        """Tear down the rendezvous entry for ``address``."""
        self._rendezvous.pop(address, None)

    def rendezvous_relay_of(self, address: Address) -> int:
        """Rendezvous relay id for an address (raises if closed)."""
        entry = self._rendezvous.get(address)
        if entry is None:
            raise PseudonymError(f"unknown or closed rendezvous {address}")
        return entry[0]

    def is_rendezvous_active(self, address: Address) -> bool:
        """Whether the rendezvous entry still exists."""
        return address in self._rendezvous


_rendezvous_counter = itertools.count(1)


def _next_rendezvous_token() -> int:
    return next(_rendezvous_counter)


class MixnetAnonymityService(AnonymityService):
    """Anonymity service over the simulated mix network."""

    def __init__(self, network: MixNetwork) -> None:
        self._network = network
        self.sent_count = 0

    def send(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.sent_count += 1
        circuit = self._network.build_circuit()
        onion = self._network.wrap_for_node(circuit, dest_id, payload)
        self._network.inject(f"node:{sender_id}", circuit[0], onion)


class RendezvousPseudonymService(PseudonymServiceBase):
    """Hidden-service-style pseudonym endpoints over the mix network."""

    def __init__(self, network: MixNetwork) -> None:
        self._network = network
        self.sent_count = 0

    def create_endpoint(self, owner_id: int) -> Address:
        return self._network.open_rendezvous(owner_id)

    def close_endpoint(self, address: Address) -> None:
        self._network.close_rendezvous(address)

    def is_active(self, address: Address) -> bool:
        return self._network.is_rendezvous_active(address)

    def send(self, sender_id: int, address: Address, payload: Any) -> None:
        self.sent_count += 1
        if not self._network.is_rendezvous_active(address):
            # Sender cannot even route: treat as silent drop, matching
            # expired-pseudonym semantics.
            return
        rendezvous_relay_id = self._network.rendezvous_relay_of(address)
        # Build a sender-side circuit that terminates at the rendezvous
        # relay: random approach relays plus the mandated last hop.
        approach = [
            relay
            for relay in self._network.build_circuit(self._network.circuit_length - 1)
            if relay.relay_id != rendezvous_relay_id
        ]
        circuit = approach + [self._network.relays[rendezvous_relay_id]]
        onion = self._network.wrap_for_rendezvous(circuit, address, payload)
        self._network.inject(f"node:{sender_id}", circuit[0], onion)


def make_mixnet_link_layer(
    sim: Simulator,
    rng: np.random.Generator,
    num_relays: int = 20,
    circuit_length: int = 3,
    hop_latency: float = 0.01,
    traffic: Optional[TrafficLog] = None,
):
    """Build a :class:`~repro.privlink.link.LinkLayer` backed by a mixnet."""
    from .link import LinkLayer  # local import to avoid cycle at module load

    directory = NodeDirectory()
    network = MixNetwork(
        sim,
        directory,
        rng,
        num_relays=num_relays,
        circuit_length=circuit_length,
        hop_latency=hop_latency,
        traffic=traffic,
    )
    layer = LinkLayer(
        directory,
        MixnetAnonymityService(network),
        RendezvousPseudonymService(network),
    )
    layer.network = network  # expose for attack analyses and tests
    return layer
