"""A simulated mix network (Chaum-style) and services built on it.

The paper's link layer can be realized with mix networks (Section
III-B): the sender wraps a message in one encryption layer per relay;
each relay strips a layer and forwards, so no relay knows its position
in the chain and an external observer cannot associate sender with
receiver.  Pseudonym endpoints follow the Tor-hidden-service / I2P
pattern: the *last relay* of a circuit built by the endpoint's owner
acts as the pseudonym's rendezvous point.

This module implements that machinery with simulated crypto
(:mod:`repro.privlink.crypto`):

* :class:`Relay` — strips one onion layer per message, enforces a
  replay cache (Section III-C's defense: remember digests of messages
  relayed to each pseudonym, drop repeats).
* :class:`MixNetwork` — the relay pool plus circuit construction.
* :class:`MixnetAnonymityService` — sender-built circuits terminating
  at a destination whose real ID is known.
* :class:`RendezvousPseudonymService` — owner-built circuits whose last
  relay is the pseudonym address; inbound messages traverse a
  sender-side circuit to the rendezvous relay, then the owner's return
  circuit.

Relays are modeled as third-party infrastructure with high availability
(the paper notes "existing anonymity services are known to provide high
availability"), so they are always online; participant liveness is
still checked at final delivery.  Every hop is written to the traffic
log, which the attack analyses consume.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

import numpy as np

from ..errors import MixnetError, PseudonymError
from ..sim import Simulator
from .crypto import (
    Sealed,
    header_digest,
    layer_digest,
    message_digest,
    seal_layers,
)
from .identity import KeyPair, KeyRegistry
from .link import Address, AnonymityService, NodeDirectory, PseudonymServiceBase
from .traffic import TrafficLog

__all__ = [
    "Relay",
    "MixNetwork",
    "MixnetAnonymityService",
    "RendezvousPseudonymService",
    "make_mixnet_link_layer",
]

# Routing-hint verbs understood by relays.
_HINT_RELAY = "relay"
_HINT_DELIVER = "deliver"
_HINT_RENDEZVOUS = "rendezvous"


class Relay:
    """One mix relay: a key pair, a forwarding engine, a replay cache.

    Replay digests are compact 64-bit integers (see
    :func:`~repro.privlink.crypto.layer_digest`) by default, and the
    cache is *epoch-bounded*: when it reaches ``replay_cache_limit``
    entries it is flushed wholesale and :attr:`replay_flushes` is
    incremented, so long churn runs cannot grow it without limit.  The
    legacy full-``bytes`` digests remain available via the network's
    ``compact_replay=False`` mode.
    """

    __slots__ = (
        "relay_id",
        "key_pair",
        "name",
        "_network",
        "_replay_cache",
        "_compact_replay",
        "_cache_limit",
        "forwarded",
        "replays_dropped",
        "replay_flushes",
        "replay_checked",
    )

    def __init__(
        self,
        relay_id: int,
        key_pair: KeyPair,
        network: "MixNetwork",
        compact_replay: bool = True,
        replay_cache_limit: Optional[int] = 65536,
    ) -> None:
        self.relay_id = relay_id
        self.key_pair = key_pair
        # The endpoint identifier observers see for this relay; built
        # once — it labels every traffic record the relay touches.
        self.name = f"relay:{relay_id}"
        self._network = network
        # Holds ints in compact mode, bytes in legacy mode.
        self._replay_cache: Set[Any] = set()
        self._compact_replay = compact_replay
        self._cache_limit = replay_cache_limit
        self.forwarded = 0
        self.replays_dropped = 0
        self.replay_flushes = 0
        self.replay_checked = 0

    def replay_cache_size(self) -> int:
        """Number of remembered message digests."""
        return len(self._replay_cache)

    def flush_replay_cache(self) -> None:
        """Drop remembered digests.

        The overlay's ephemeral pseudonyms are what keep this cache
        bounded in the paper ("the space requirements [...] become
        bounded for each pseudonym"); the simulation exposes an explicit
        flush so long experiments can model cache turnover.
        """
        self._replay_cache.clear()

    def expected_replay_collisions(self) -> float:
        """Birthday-bound estimate of false replay drops this epoch.

        With 64-bit digests and ``n`` cached entries, roughly
        ``n * (n - 1) / 2^65`` distinct messages collide — below 1e-9
        even at the default 65536-entry flush limit, so compact digests
        are safe for replay detection.  Always 0.0 in legacy mode
        (full digests).
        """
        if not self._compact_replay:
            return 0.0
        n = len(self._replay_cache)
        return n * (n - 1) / 2.0**65

    def process(self, sealed: Any, arrived_from: str, time: float) -> None:
        """Strip one layer and act on the routing hint."""
        if self._compact_replay:
            # Onions sealed along a cached circuit carry stamped
            # digests; read the stamp directly and fall back to the
            # recursive computation for everything else.
            try:
                digest: Any = sealed._layer_digest
            except AttributeError:
                digest = layer_digest(sealed)
        else:
            digest = message_digest(sealed)
        self.replay_checked += 1
        cache = self._replay_cache
        if digest in cache:
            self.replays_dropped += 1
            return
        if self._cache_limit is not None and len(cache) >= self._cache_limit:
            cache.clear()
            self.replay_flushes += 1
        cache.add(digest)

        if not isinstance(sealed, Sealed):
            raise MixnetError(f"relay {self.relay_id} received a non-onion payload")
        # Inlined unseal(): this runs once per relay per message.
        key_pair = self.key_pair
        if key_pair.private != sealed.public_key:
            raise MixnetError(
                f"key {key_pair.private} cannot open layer sealed to "
                f"{sealed.public_key}"
            )
        hint = sealed.routing_hint
        inner = sealed.payload
        verb = hint[0]
        self.forwarded += 1
        if verb == _HINT_RELAY:
            next_relay_id = hint[1]
            self._network.hop(self, next_relay_id, inner, time)
        elif verb == _HINT_DELIVER:
            dest_node_id = hint[1]
            self._network.final_delivery(self, dest_node_id, inner, time)
        elif verb == _HINT_RENDEZVOUS:
            address = hint[1]
            self._network.rendezvous_delivery(self, address, inner, time)
        else:
            raise MixnetError(f"unknown routing hint verb {verb!r}")


class MixNetwork:
    """The relay pool, circuit builder, and hop scheduler.

    Circuits are cached per (sender, destination) by default — the
    Tor-style semantics where a circuit is reused for a flow rather
    than rebuilt per cell — which removes relay selection and onion
    hop-list construction from the per-message path.  Entries are
    evicted when their rendezvous address closes (pseudonym rotation)
    and the whole cache is dropped via :meth:`invalidate_circuits`
    (relay-pool rotation) or when it exceeds ``circuit_cache_limit``.
    ``circuit_cache=False`` restores the legacy fresh-circuit-per-
    message behavior, including the exact rng draw sequence.
    """

    __slots__ = (
        "_sim",
        "_directory",
        "_rng",
        "_circuit_length",
        "_hop_latency",
        "_relay_availability",
        "dropped_relay_down",
        "traffic",
        "relays",
        "_rendezvous",
        "delivered_count",
        "dropped_offline",
        "dropped_closed",
        "_circuit_cache_enabled",
        "_circuit_cache_limit",
        "_circuits",
        "_address_keys",
        "_inline_hops",
        "_always_up",
        "_node_names",
        "circuit_cache_hits",
        "circuit_cache_misses",
        "circuit_cache_evictions",
    )

    def __init__(
        self,
        sim: Simulator,
        directory: NodeDirectory,
        rng: np.random.Generator,
        num_relays: int = 20,
        circuit_length: int = 3,
        hop_latency: float = 0.01,
        relay_availability: float = 1.0,
        traffic: Optional[TrafficLog] = None,
        circuit_cache: bool = True,
        circuit_cache_limit: int = 4096,
        compact_replay: bool = True,
        replay_cache_limit: Optional[int] = 65536,
        inline_hops: bool = True,
    ) -> None:
        """``relay_availability`` models third-party infrastructure that
        is highly but not perfectly available (the paper assumes "high
        availability" for deployed anonymity services): each hop is
        dropped with probability ``1 - relay_availability``."""
        if num_relays < circuit_length:
            raise MixnetError(
                f"need at least {circuit_length} relays, got {num_relays}"
            )
        if circuit_length < 1:
            raise MixnetError("circuit_length must be at least 1")
        if not 0.0 < relay_availability <= 1.0:
            raise MixnetError("relay_availability must be in (0, 1]")
        self._sim = sim
        self._directory = directory
        self._rng = rng
        self._circuit_length = circuit_length
        self._hop_latency = hop_latency
        self._relay_availability = relay_availability
        self.dropped_relay_down = 0
        self.traffic = traffic if traffic is not None else TrafficLog(enabled=False)

        keys = KeyRegistry()
        self.relays: List[Relay] = [
            Relay(
                relay_id,
                keys.issue(),
                self,
                compact_replay=compact_replay,
                replay_cache_limit=replay_cache_limit,
            )
            for relay_id in range(num_relays)
        ]
        # Rendezvous table: pseudonym address -> (rendezvous relay id,
        # owner's return circuit as relay ids, owner node id).  The owner
        # id is known only to this table — the simulation stand-in for
        # the owner-built return circuit's endpoint.
        self._rendezvous: Dict[Address, Tuple[int, Tuple[int, ...], int]] = {}
        self.delivered_count = 0
        self.dropped_offline = 0
        self.dropped_closed = 0
        # Circuit cache: key -> (first relay, prebuilt seal_layers hops,
        # per-hop header digests).  Keys are (0, sender, dest_node) or
        # (1, sender, address).
        self._circuit_cache_enabled = circuit_cache
        self._circuit_cache_limit = circuit_cache_limit
        self._circuits: Dict[
            Tuple[Any, ...],
            Tuple[Relay, Tuple[Tuple[int, Any], ...], Optional[Tuple[int, ...]]],
        ] = {}
        self._address_keys: Dict[Address, List[Tuple[Any, ...]]] = {}
        # Zero-latency hops need no event scheduling: the whole relay
        # chain runs inline in the injecting event.  inline_hops=False
        # restores the seed behavior (same-timestamp events per hop).
        self._inline_hops = inline_hops and hop_latency == 0.0
        self._always_up = relay_availability >= 1.0
        self._node_names: Dict[int, str] = {}
        self.circuit_cache_hits = 0
        self.circuit_cache_misses = 0
        self.circuit_cache_evictions = 0

    @property
    def circuit_length(self) -> int:
        """Relays per circuit."""
        return self._circuit_length

    def build_circuit(self, length: Optional[int] = None) -> List[Relay]:
        """Pick ``length`` distinct relays uniformly at random."""
        if length is None:
            length = self._circuit_length
        indices = self._rng.choice(len(self.relays), size=length, replace=False)
        return [self.relays[int(index)] for index in indices]

    # -- onion construction ------------------------------------------------

    @staticmethod
    def _hops(
        circuit: List[Relay], last_hint: Tuple[str, Any]
    ) -> Tuple[Tuple[int, Any], ...]:
        """The ``seal_layers`` hop list for a circuit: relay-to-relay
        hints, then ``last_hint`` at the exit."""
        hops = []
        for position, relay in enumerate(circuit):
            if position + 1 < len(circuit):
                hint: Tuple[str, Any] = (_HINT_RELAY, circuit[position + 1].relay_id)
            else:
                hint = last_hint
            hops.append((relay.key_pair.public, hint))
        return tuple(hops)

    def wrap_for_node(self, circuit: List[Relay], dest_node_id: int, payload: Any) -> Sealed:
        """Onion whose last layer delivers to a known node id."""
        return seal_layers(self._hops(circuit, (_HINT_DELIVER, dest_node_id)), payload)

    def wrap_for_rendezvous(
        self, circuit: List[Relay], address: Address, payload: Any
    ) -> Sealed:
        """Onion whose last layer hands the payload to a rendezvous relay."""
        return seal_layers(self._hops(circuit, (_HINT_RENDEZVOUS, address)), payload)

    # -- circuit cache -----------------------------------------------------

    def circuit_for_node(
        self, sender_id: int, dest_node_id: int
    ) -> Tuple[Relay, Tuple[Tuple[int, Any], ...], Optional[Tuple[int, ...]]]:
        """The (first relay, prebuilt hops, header digests) for a
        sender->node flow.

        Cached per (sender, destination) when the circuit cache is on —
        including the per-hop header digests that let ``seal_layers``
        stamp replay digests at seal time.  Otherwise builds a fresh
        circuit exactly as the legacy path did (header digests None).
        """
        if not self._circuit_cache_enabled:
            circuit = self.build_circuit()
            return circuit[0], self._hops(circuit, (_HINT_DELIVER, dest_node_id)), None
        key = (0, sender_id, dest_node_id)
        entry = self._circuits.get(key)
        if entry is not None:
            self.circuit_cache_hits += 1
            return entry
        self.circuit_cache_misses += 1
        circuit = self.build_circuit()
        hops = self._hops(circuit, (_HINT_DELIVER, dest_node_id))
        entry = (circuit[0], hops, self._header_digests(hops))
        self._store_circuit(key, entry)
        return entry

    def circuit_for_rendezvous(
        self, sender_id: int, address: Address
    ) -> Tuple[Relay, Tuple[Tuple[int, Any], ...], Optional[Tuple[int, ...]]]:
        """The (first relay, prebuilt hops, header digests) for a
        sender->pseudonym flow.

        The circuit's last hop is mandated: it must be the address's
        rendezvous relay.  Cached per (sender, address); closing the
        address evicts every circuit that targets it.
        """
        if not self._circuit_cache_enabled:
            first_relay, hops = self._build_rendezvous_circuit(address)
            return first_relay, hops, None
        key = (1, sender_id, address)
        entry = self._circuits.get(key)
        if entry is not None:
            self.circuit_cache_hits += 1
            return entry
        self.circuit_cache_misses += 1
        first_relay, hops = self._build_rendezvous_circuit(address)
        entry = (first_relay, hops, self._header_digests(hops))
        self._store_circuit(key, entry)
        self._address_keys.setdefault(address, []).append(key)
        return entry

    @staticmethod
    def _header_digests(hops: Tuple[Tuple[int, Any], ...]) -> Tuple[int, ...]:
        """Per-hop static header digests, computed once per circuit."""
        return tuple(header_digest(public_key, hint) for public_key, hint in hops)

    def _build_rendezvous_circuit(
        self, address: Address
    ) -> Tuple[Relay, Tuple[Tuple[int, Any], ...]]:
        """Random approach relays plus the mandated rendezvous last hop."""
        rendezvous_relay_id = self.rendezvous_relay_of(address)
        approach = [
            relay
            for relay in self.build_circuit(self._circuit_length - 1)
            if relay.relay_id != rendezvous_relay_id
        ]
        circuit = approach + [self.relays[rendezvous_relay_id]]
        return circuit[0], self._hops(circuit, (_HINT_RENDEZVOUS, address))

    def _store_circuit(
        self,
        key: Tuple[Any, ...],
        entry: Tuple[Relay, Tuple[Tuple[int, Any], ...], Optional[Tuple[int, ...]]],
    ) -> None:
        if len(self._circuits) >= self._circuit_cache_limit:
            self.invalidate_circuits()
        self._circuits[key] = entry

    def invalidate_circuits(self) -> None:
        """Drop every cached circuit (e.g. on relay-pool rotation)."""
        self.circuit_cache_evictions += len(self._circuits)
        self._circuits.clear()
        self._address_keys.clear()

    def circuit_cache_size(self) -> int:
        """Number of cached circuits."""
        return len(self._circuits)

    # -- scheduling --------------------------------------------------------

    def _latency(self) -> float:
        if self._hop_latency == 0.0:
            return 0.0
        return float(self._rng.uniform(0.5 * self._hop_latency, 1.5 * self._hop_latency))

    def _relay_up(self) -> bool:
        if self._relay_availability >= 1.0:
            return True
        if self._rng.random() < self._relay_availability:
            return True
        self.dropped_relay_down += 1
        return False

    def inject(self, sender_name: str, first_relay: Relay, onion: Sealed) -> None:
        """Send an onion from an edge node into the mix."""
        now = self._sim.now
        self.traffic.record(now, sender_name, first_relay.name)
        if not (self._always_up or self._relay_up()):
            return
        if self._inline_hops:
            first_relay.process(onion, sender_name, now)
            return
        self._sim.post_after(
            self._latency(), first_relay.process, onion, sender_name, now
        )

    def hop(self, from_relay: Relay, next_relay_id: int, inner: Any, time: float) -> None:
        """Forward between relays."""
        try:
            next_relay = self.relays[next_relay_id]
        except IndexError:
            raise MixnetError(f"unknown relay id {next_relay_id}") from None
        now = self._sim.now
        self.traffic.record(now, from_relay.name, next_relay.name)
        if not (self._always_up or self._relay_up()):
            return
        if self._inline_hops:
            next_relay.process(inner, from_relay.name, now)
            return
        self._sim.post_after(
            self._latency(), next_relay.process, inner, from_relay.name, now
        )

    def _node_name(self, node_id: int) -> str:
        """The interned ``node:<id>`` endpoint string for traffic records."""
        name = self._node_names.get(node_id)
        if name is None:
            name = f"node:{node_id}"
            self._node_names[node_id] = name
        return name

    def final_delivery(
        self, from_relay: Relay, dest_node_id: int, payload: Any, time: float
    ) -> None:
        """Last hop of an anonymity-service circuit: relay -> node."""
        self.traffic.record(self._sim.now, from_relay.name, self._node_name(dest_node_id))
        if self._inline_hops:
            self._deliver_to_node(dest_node_id, payload)
            return
        self._sim.post_after(self._latency(), self._deliver_to_node, dest_node_id, payload)

    def rendezvous_delivery(
        self, from_relay: Relay, address: Address, payload: Any, time: float
    ) -> None:
        """A rendezvous relay received a message for a pseudonym endpoint.

        The payload continues along the owner's return circuit (modeled
        as the recorded relay chain) and finally reaches the owner.
        """
        entry = self._rendezvous.get(address)
        if entry is None:
            self.dropped_closed += 1
            return
        rendezvous_relay_id, return_circuit, owner_id = entry
        if from_relay.relay_id != rendezvous_relay_id:
            # Message reached a relay that is not this pseudonym's
            # rendezvous point; a real network would fail to decrypt.
            self.dropped_closed += 1
            return
        previous_name = from_relay.name
        now = self._sim.now
        if self._inline_hops:
            # Zero-latency return circuit: no draws, no scheduling.
            traffic_record = self.traffic.record
            relays = self.relays
            for relay_id in return_circuit:
                relay_name = relays[relay_id].name
                traffic_record(now, previous_name, relay_name)
                previous_name = relay_name
            traffic_record(now, previous_name, self._node_name(owner_id))
            self._deliver_to_node(owner_id, payload)
            return
        delay = 0.0
        for relay_id in return_circuit:
            delay += self._latency()
            relay_name = self.relays[relay_id].name
            self.traffic.record(now + delay, previous_name, relay_name)
            previous_name = relay_name
        delay += self._latency()
        self.traffic.record(now + delay, previous_name, self._node_name(owner_id))
        self._sim.post_after(delay, self._deliver_to_node, owner_id, payload)

    def _deliver_to_node(self, node_id: int, payload: Any) -> None:
        if self._directory.deliver(node_id, payload):
            self.delivered_count += 1
        else:
            self.dropped_offline += 1

    # -- rendezvous registry ------------------------------------------------

    def open_rendezvous(self, owner_id: int) -> Address:
        """Owner builds a return circuit; its last relay becomes the address."""
        circuit = self.build_circuit()
        rendezvous_relay = circuit[-1]
        return_circuit = tuple(relay.relay_id for relay in reversed(circuit[:-1]))
        address = Address(token=_next_rendezvous_token(), kind="rendezvous")
        self._rendezvous[address] = (rendezvous_relay.relay_id, return_circuit, owner_id)
        return address

    def close_rendezvous(self, address: Address) -> None:
        """Tear down the rendezvous entry for ``address``.

        Also evicts every cached sender circuit targeting the address,
        so pseudonym rotation invalidates stale circuits.
        """
        self._rendezvous.pop(address, None)
        keys = self._address_keys.pop(address, None)
        if keys:
            for key in keys:
                if self._circuits.pop(key, None) is not None:
                    self.circuit_cache_evictions += 1

    def rendezvous_relay_of(self, address: Address) -> int:
        """Rendezvous relay id for an address (raises if closed)."""
        entry = self._rendezvous.get(address)
        if entry is None:
            raise PseudonymError(f"unknown or closed rendezvous {address}")
        return entry[0]

    def is_rendezvous_active(self, address: Address) -> bool:
        """Whether the rendezvous entry still exists."""
        return address in self._rendezvous

    # -- aggregate stats ---------------------------------------------------

    def total_replays_dropped(self) -> int:
        """Replayed messages dropped, summed over relays."""
        return sum(relay.replays_dropped for relay in self.relays)

    def total_replay_cache_entries(self) -> int:
        """Currently cached replay digests, summed over relays."""
        return sum(relay.replay_cache_size() for relay in self.relays)

    def total_replay_flushes(self) -> int:
        """Epoch flushes of replay caches, summed over relays."""
        return sum(relay.replay_flushes for relay in self.relays)


_rendezvous_counter = itertools.count(1)


def _next_rendezvous_token() -> int:
    return next(_rendezvous_counter)


class MixnetAnonymityService(AnonymityService):
    """Anonymity service over the simulated mix network."""

    __slots__ = ("_network", "sent_count")

    def __init__(self, network: MixNetwork) -> None:
        self._network = network
        self.sent_count = 0

    def send(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.sent_count += 1
        network = self._network
        first_relay, hops, digests = network.circuit_for_node(sender_id, dest_id)
        onion = seal_layers(hops, payload, header_digests=digests)
        network.inject(network._node_name(sender_id), first_relay, onion)


class RendezvousPseudonymService(PseudonymServiceBase):
    """Hidden-service-style pseudonym endpoints over the mix network."""

    __slots__ = ("_network", "sent_count")

    def __init__(self, network: MixNetwork) -> None:
        self._network = network
        self.sent_count = 0

    def create_endpoint(self, owner_id: int) -> Address:
        return self._network.open_rendezvous(owner_id)

    def close_endpoint(self, address: Address) -> None:
        self._network.close_rendezvous(address)

    def is_active(self, address: Address) -> bool:
        return self._network.is_rendezvous_active(address)

    def send(self, sender_id: int, address: Address, payload: Any) -> None:
        self.sent_count += 1
        network = self._network
        if address not in network._rendezvous:
            # Sender cannot even route: treat as silent drop, matching
            # expired-pseudonym semantics.
            return
        first_relay, hops, digests = network.circuit_for_rendezvous(
            sender_id, address
        )
        onion = seal_layers(hops, payload, header_digests=digests)
        network.inject(network._node_name(sender_id), first_relay, onion)


def make_mixnet_link_layer(
    sim: Simulator,
    rng: np.random.Generator,
    num_relays: int = 20,
    circuit_length: int = 3,
    hop_latency: float = 0.01,
    traffic: Optional[TrafficLog] = None,
    circuit_cache: bool = True,
    circuit_cache_limit: int = 4096,
    compact_replay: bool = True,
    replay_cache_limit: Optional[int] = 65536,
    inline_hops: bool = True,
):
    """Build a :class:`~repro.privlink.link.LinkLayer` backed by a mixnet.

    Defaults take the fast path: per-flow circuit cache with seal-time
    replay-digest stamping, compact epoch-bounded replay digests, and
    inline processing of zero-latency hops.  ``circuit_cache=False``,
    ``compact_replay=False``, ``inline_hops=False`` together reproduce
    the legacy per-message behavior and its exact rng draw sequence.
    """
    from .link import LinkLayer  # local import to avoid cycle at module load

    directory = NodeDirectory()
    network = MixNetwork(
        sim,
        directory,
        rng,
        num_relays=num_relays,
        circuit_length=circuit_length,
        hop_latency=hop_latency,
        traffic=traffic,
        circuit_cache=circuit_cache,
        circuit_cache_limit=circuit_cache_limit,
        compact_replay=compact_replay,
        replay_cache_limit=replay_cache_limit,
        inline_hops=inline_hops,
    )
    layer = LinkLayer(
        directory,
        MixnetAnonymityService(network),
        RendezvousPseudonymService(network),
    )
    layer.network = network  # expose for attack analyses and tests
    return layer
