"""Simulated layered encryption ("onions") and message digests.

Mix networks (Chaum 1981) wrap a message in one encryption layer per
relay; each relay strips one layer and forwards the rest.  We model a
layer as a :class:`Sealed` wrapper naming the public key it was sealed
to; only the holder of the matching private key may call
:func:`unseal`.  Attempting to open a layer with the wrong key raises,
exactly as decryption with the wrong key fails.

The digests used for replay detection are real (SHA-256 over a stable
representation), since replay caches only need collision resistance.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pickle
from typing import Any, Optional, Tuple

from ..errors import MixnetError
from .identity import KeyPair

__all__ = [
    "Sealed",
    "seal",
    "seal_layers",
    "unseal",
    "message_digest",
    "layer_digest",
    "header_digest",
]


@dataclasses.dataclass(frozen=True)
class Sealed:
    """A payload sealed to a public key.

    ``payload`` is either application data or another :class:`Sealed`
    (the next onion layer).  ``routing_hint`` is the plaintext routing
    instruction revealed to the layer's holder — in a mix network every
    relay must learn the *next hop* and nothing else.
    """

    public_key: int
    routing_hint: Any
    payload: Any


def seal(public_key: int, routing_hint: Any, payload: Any) -> Sealed:
    """Seal one layer to ``public_key``."""
    return Sealed(public_key=public_key, routing_hint=routing_hint, payload=payload)


def seal_layers(
    hops: Tuple[Tuple[int, Any], ...],
    payload: Any,
    header_digests: Optional[Tuple[int, ...]] = None,
) -> Any:
    """Build an onion: the first hop's layer is outermost.

    ``hops`` is a sequence of ``(public_key, routing_hint)`` pairs, in
    forwarding order.  Returns the outermost :class:`Sealed` (or the
    bare payload when ``hops`` is empty).

    ``header_digests`` — precomputed :func:`header_digest` values
    parallel to ``hops`` — turns on *seal-time digest stamping*: each
    layer's replay digest is computed while the onion is built (one
    short hash per layer, the headers being already hashed) and cached
    on the layer, so every relay's replay check is a dict lookup.  The
    stamped values are identical to what :func:`layer_digest` would
    compute from scratch.  Circuit caches are what make precomputing
    the header digests worthwhile: they are constant per circuit.
    """
    if header_digests is None:
        wrapped: Any = payload
        for public_key, routing_hint in reversed(hops):
            wrapped = seal(public_key, routing_hint, wrapped)
        return wrapped
    if len(header_digests) != len(hops):
        raise MixnetError("header_digests must parallel hops")
    wrapped = payload
    digest = layer_digest(payload)
    new = Sealed.__new__
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    index = len(hops)
    while index:
        index -= 1
        public_key, routing_hint = hops[index]
        # Inlined _combine_digests — this loop runs once per layer per
        # message and is the hottest spot of the sealing path.
        digest = from_bytes(
            sha256(
                header_digests[index].to_bytes(8, "little")
                + digest.to_bytes(8, "little")
            ).digest()[:8],
            "little",
        )
        # Frozen-dataclass __init__ routes every field through
        # object.__setattr__; filling the instance dict directly is
        # ~3x cheaper and yields an identical object (plus the digest
        # stamp, which lives in __dict__ either way).
        layer = new(Sealed)
        fields = layer.__dict__
        fields["public_key"] = public_key
        fields["routing_hint"] = routing_hint
        fields["payload"] = wrapped
        fields["_layer_digest"] = digest
        wrapped = layer
    return wrapped


def unseal(key_pair: KeyPair, sealed: Sealed) -> Tuple[Any, Any]:
    """Open one layer.  Returns ``(routing_hint, inner_payload)``.

    Raises
    ------
    MixnetError
        If ``key_pair`` does not match the layer's public key — the
        simulated analogue of a decryption failure.
    """
    if not isinstance(sealed, Sealed):
        raise MixnetError("attempted to unseal a non-sealed payload")
    if not key_pair.matches(sealed.public_key):
        raise MixnetError(
            f"key {key_pair.private} cannot open layer sealed to "
            f"{sealed.public_key}"
        )
    return sealed.routing_hint, sealed.payload


def message_digest(payload: Any) -> bytes:
    """SHA-256 digest of a payload's stable representation.

    Used by relays' replay caches.  ``repr`` is stable for the frozen
    dataclasses and primitive types that flow through the mixnet.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).digest()


def _stable_bytes(value: Any) -> bytes:
    """A stable byte serialization of a routing hint or payload.

    ``pickle`` (protocol 4) serializes at C speed and is stable for the
    value types flowing through the mixnet (frozen dataclasses, tuples,
    strings, ints); anything unpicklable falls back to ``repr``.
    """
    try:
        return pickle.dumps(value, protocol=4)
    except (pickle.PicklingError, TypeError, AttributeError):
        return repr(value).encode("utf-8")


def header_digest(public_key: int, routing_hint: Any) -> int:
    """64-bit digest of a layer's *static* header (key + routing hint).

    For a cached circuit the headers never change, so these values can
    be computed once per circuit and reused for every message sealed
    along it (see :func:`seal_layers`).
    """
    return int.from_bytes(
        hashlib.sha256(_stable_bytes((public_key, routing_hint))).digest()[:8],
        "little",
    )


def _combine_digests(header: int, inner: int) -> int:
    """One layer's digest from its header digest and its payload digest."""
    return int.from_bytes(
        hashlib.sha256(
            header.to_bytes(8, "little") + inner.to_bytes(8, "little")
        ).digest()[:8],
        "little",
    )


def layer_digest(payload: Any) -> int:
    """64-bit truncated SHA-256 digest of an onion layer, cached per layer.

    Relays replay-check every onion they see, and a message traverses
    every relay of its circuit — so digesting the *full* payload at each
    hop is quadratic in circuit length.  This digest composes instead::

        digest(layer) = H(header_digest(layer) || digest(inner))[:8]

    The first relay's check recursively digests (and caches, on the
    frozen :class:`Sealed` instances themselves) every inner layer, so
    each subsequent hop's check is a cache hit — one full payload pass
    per message; onions sealed along a cached circuit skip even that,
    because :func:`seal_layers` stamps the same digests at seal time
    from precomputed header digests.  The 8-byte truncation keeps
    replay caches compact; at 2^64 the birthday-bound collision odds
    for realistic cache sizes are negligible (and accounted for by
    ``Relay.expected_replay_collisions``).
    """
    if isinstance(payload, Sealed):
        cached = payload.__dict__.get("_layer_digest")
        if cached is not None:
            return cached
        digest = _combine_digests(
            header_digest(payload.public_key, payload.routing_hint),
            layer_digest(payload.payload),
        )
        # Sealed is frozen but not slotted: stash the digest on the
        # instance dict so every later hop's replay check is O(1).
        object.__setattr__(payload, "_layer_digest", digest)
        return digest
    # Inlined _stable_bytes: this branch digests every message payload.
    try:
        data = pickle.dumps(payload, protocol=4)
    except (pickle.PicklingError, TypeError, AttributeError):
        data = repr(payload).encode("utf-8")
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "little")
