"""Simulated layered encryption ("onions") and message digests.

Mix networks (Chaum 1981) wrap a message in one encryption layer per
relay; each relay strips one layer and forwards the rest.  We model a
layer as a :class:`Sealed` wrapper naming the public key it was sealed
to; only the holder of the matching private key may call
:func:`unseal`.  Attempting to open a layer with the wrong key raises,
exactly as decryption with the wrong key fails.

The digests used for replay detection are real (SHA-256 over a stable
representation), since replay caches only need collision resistance.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Any, Tuple

from ..errors import MixnetError
from .identity import KeyPair

__all__ = ["Sealed", "seal", "seal_layers", "unseal", "message_digest"]


@dataclasses.dataclass(frozen=True)
class Sealed:
    """A payload sealed to a public key.

    ``payload`` is either application data or another :class:`Sealed`
    (the next onion layer).  ``routing_hint`` is the plaintext routing
    instruction revealed to the layer's holder — in a mix network every
    relay must learn the *next hop* and nothing else.
    """

    public_key: int
    routing_hint: Any
    payload: Any


def seal(public_key: int, routing_hint: Any, payload: Any) -> Sealed:
    """Seal one layer to ``public_key``."""
    return Sealed(public_key=public_key, routing_hint=routing_hint, payload=payload)


def seal_layers(hops: Tuple[Tuple[int, Any], ...], payload: Any) -> Any:
    """Build an onion: the first hop's layer is outermost.

    ``hops`` is a sequence of ``(public_key, routing_hint)`` pairs, in
    forwarding order.  Returns the outermost :class:`Sealed` (or the
    bare payload when ``hops`` is empty).
    """
    wrapped: Any = payload
    for public_key, routing_hint in reversed(hops):
        wrapped = seal(public_key, routing_hint, wrapped)
    return wrapped


def unseal(key_pair: KeyPair, sealed: Sealed) -> Tuple[Any, Any]:
    """Open one layer.  Returns ``(routing_hint, inner_payload)``.

    Raises
    ------
    MixnetError
        If ``key_pair`` does not match the layer's public key — the
        simulated analogue of a decryption failure.
    """
    if not isinstance(sealed, Sealed):
        raise MixnetError("attempted to unseal a non-sealed payload")
    if not key_pair.matches(sealed.public_key):
        raise MixnetError(
            f"key {key_pair.private} cannot open layer sealed to "
            f"{sealed.public_key}"
        )
    return sealed.routing_hint, sealed.payload


def message_digest(payload: Any) -> bytes:
    """SHA-256 digest of a payload's stable representation.

    Used by relays' replay caches.  ``repr`` is stable for the frozen
    dataclasses and primitive types that flow through the mixnet.
    """
    return hashlib.sha256(repr(payload).encode("utf-8")).digest()
