"""Peer liveness: heartbeats in, two-level dead-peer detection out.

Every identified frame (hello, heartbeat, register, goodbye) refreshes
its sender's entry.  A periodic check then applies the classic
two-level scheme from gossip deployments:

* silent for ``suspect_after`` time units -> **suspect**: the peer is
  kept and the endpoint sends it a direct probe (a heartbeat with
  ``reply_wanted``), because the silence may be loss, not death;
* silent for ``dead_after`` -> **dead**: the peer is dropped and its
  routes pruned; it can re-enter later via a fresh hello.

The table never reads a clock itself — callers pass ``now`` — so the
same logic is exercised deterministically under the simulator and for
real under a wall clock.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from ..errors import NetError
from .codec import PeerInfo
from .transport import Endpoint

__all__ = ["PeerRecord", "PeerTable"]


@dataclasses.dataclass
class PeerRecord:
    """Book-keeping for one known peer."""

    node_id: int
    address: Endpoint
    last_heard: float
    suspect: bool = False


class PeerTable:
    """Known peers, their addresses, and their liveness state."""

    def __init__(self, suspect_after: float, dead_after: float) -> None:
        if not 0 < suspect_after < dead_after:
            raise NetError("need 0 < suspect_after < dead_after")
        self._suspect_after = suspect_after
        self._dead_after = dead_after
        self._peers: Dict[int, PeerRecord] = {}
        self.suspected_total = 0
        self.declared_dead_total = 0

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._peers

    def note_heard(self, node_id: int, address: Endpoint, now: float) -> bool:
        """Record traffic from ``node_id``; returns True if newly seen."""
        record = self._peers.get(node_id)
        if record is None:
            self._peers[node_id] = PeerRecord(
                node_id=node_id, address=address, last_heard=now
            )
            return True
        record.address = address
        record.last_heard = now
        record.suspect = False
        return False

    def remove(self, node_id: int) -> Optional[PeerRecord]:
        """Drop a peer immediately (goodbye received)."""
        return self._peers.pop(node_id, None)

    def address_of(self, node_id: int) -> Optional[Endpoint]:
        """Transport address of a known peer, else None."""
        record = self._peers.get(node_id)
        return record.address if record is not None else None

    def peer_ids(self) -> List[int]:
        """Known peer ids, sorted (stable iteration for determinism)."""
        return sorted(self._peers)

    def peer_infos(self) -> Tuple[PeerInfo, ...]:
        """The table as wire :class:`PeerInfo` records, sorted by id."""
        return tuple(
            PeerInfo(
                node_id=record.node_id,
                host=record.address[0],
                port=record.address[1],
            )
            for record in (
                self._peers[node_id] for node_id in sorted(self._peers)
            )
        )

    def check(self, now: float) -> Tuple[List[PeerRecord], List[PeerRecord]]:
        """Apply the two-level timeouts at time ``now``.

        Returns ``(newly_suspect, dead)``.  Newly suspect peers stay in
        the table (the caller probes them); dead peers are removed.
        """
        newly_suspect: List[PeerRecord] = []
        dead: List[PeerRecord] = []
        for node_id in sorted(self._peers):
            record = self._peers[node_id]
            silence = now - record.last_heard
            if silence >= self._dead_after:
                dead.append(record)
            elif silence >= self._suspect_after and not record.suspect:
                record.suspect = True
                newly_suspect.append(record)
        for record in dead:
            del self._peers[record.node_id]
        self.suspected_total += len(newly_suspect)
        self.declared_dead_total += len(dead)
        return newly_suspect, dead
