"""Seed-node / live-node configuration (TOML or JSON).

A live node is described by one small config file::

    {
      "node": {"node_id": 3, "host": "127.0.0.1", "port": 9003,
               "seconds_per_period": 0.5, "seed": 1},
      "bootstrap": ["127.0.0.1:9000"],
      "trusted": [0, 1, 2],
      "protocol": {"slot_count": 8, "cache_size": 40,
                   "shuffle_length": 8, "pseudonym_lifetime": 20.0},
      "liveness": {"heartbeat_interval": 1.0, "suspect_after": 3.0,
                   "dead_after": 9.0},
      "backoff": {"base": 0.25, "factor": 2.0, "max": 4.0, "attempts": 10}
    }

The same structure in TOML works on Python 3.11+ (:mod:`tomllib`); on
older interpreters only JSON is accepted — the repo supports 3.9 and
must not grow dependencies, so TOML support is feature-gated, not
vendored.  All times are in *shuffling periods*; ``seconds_per_period``
maps them to wall seconds (see :mod:`repro.net.clock`).

CLI flags override file values (see ``repro node --help``); a separate
*trust file* — ``{"<node_id>": [trusted ids...]}`` — can supply the
trusted-neighbor lists for whole deployments in one shared artifact.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 fallback path
    tomllib = None

from ..errors import NetError
from .transport import Endpoint

__all__ = [
    "NetNodeConfig",
    "load_net_config",
    "parse_hostport",
    "load_trust_file",
    "merge_overrides",
]


def parse_hostport(text: str) -> Endpoint:
    """Parse ``"host:port"`` into an endpoint tuple."""
    host, separator, port_text = text.rpartition(":")
    if not separator or not host:
        raise NetError(f"expected host:port, got {text!r}")
    try:
        port = int(port_text)
    except ValueError:
        raise NetError(f"invalid port in {text!r}") from None
    if not 0 < port <= 65535:
        raise NetError(f"port out of range in {text!r}")
    return (host, port)


@dataclasses.dataclass(frozen=True)
class NetNodeConfig:
    """Everything one live node needs to start."""

    node_id: int = 0
    host: str = "127.0.0.1"
    port: int = 0
    seconds_per_period: float = 1.0
    seed: int = 1
    bootstrap: Tuple[Endpoint, ...] = ()
    trusted: Tuple[int, ...] = ()
    # protocol parameters (defaults match SystemConfig's scale-free
    # small-mesh settings)
    slot_count: int = 8
    cache_size: int = 40
    shuffle_length: int = 8
    pseudonym_lifetime: float = 20.0
    # liveness
    heartbeat_interval: float = 1.0
    suspect_after: float = 3.0
    dead_after: float = 9.0
    # bootstrap backoff
    backoff_base: float = 0.25
    backoff_factor: float = 2.0
    backoff_max: float = 4.0
    bootstrap_attempts: int = 10

    def __post_init__(self) -> None:
        if self.node_id < 0:
            raise NetError("node_id must be non-negative")
        if self.seconds_per_period <= 0:
            raise NetError("seconds_per_period must be positive")
        if self.pseudonym_lifetime <= 0:
            raise NetError("pseudonym_lifetime must be positive")


def _read_document(path: Path) -> dict:
    raw = path.read_bytes()
    if path.suffix.lower() == ".toml":
        if tomllib is None:
            raise NetError(
                f"{path} is TOML but this Python lacks tomllib (3.11+); "
                "use the JSON form of the same config"
            )
        try:
            return tomllib.loads(raw.decode("utf-8"))
        except (tomllib.TOMLDecodeError, UnicodeDecodeError) as error:
            raise NetError(f"cannot parse {path}: {error}") from error
    try:
        document = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as error:
        raise NetError(f"cannot parse {path}: {error}") from error
    if not isinstance(document, dict):
        raise NetError(f"{path} must contain a table/object at top level")
    return document


def load_net_config(path: str) -> NetNodeConfig:
    """Load a :class:`NetNodeConfig` from a TOML or JSON file."""
    document = _read_document(Path(path))
    node = document.get("node", {})
    protocol = document.get("protocol", {})
    liveness = document.get("liveness", {})
    backoff = document.get("backoff", {})
    for name, section in (
        ("node", node), ("protocol", protocol),
        ("liveness", liveness), ("backoff", backoff),
    ):
        if not isinstance(section, dict):
            raise NetError(f"config section {name!r} must be a table")
    bootstrap_raw = document.get("bootstrap", [])
    if not isinstance(bootstrap_raw, list):
        raise NetError("config key 'bootstrap' must be a list of host:port")
    trusted_raw = document.get("trusted", [])
    if not isinstance(trusted_raw, list):
        raise NetError("config key 'trusted' must be a list of node ids")
    try:
        return NetNodeConfig(
            node_id=int(node.get("node_id", 0)),
            host=str(node.get("host", "127.0.0.1")),
            port=int(node.get("port", 0)),
            seconds_per_period=float(node.get("seconds_per_period", 1.0)),
            seed=int(node.get("seed", 1)),
            bootstrap=tuple(parse_hostport(str(b)) for b in bootstrap_raw),
            trusted=tuple(int(t) for t in trusted_raw),
            slot_count=int(protocol.get("slot_count", 8)),
            cache_size=int(protocol.get("cache_size", 40)),
            shuffle_length=int(protocol.get("shuffle_length", 8)),
            pseudonym_lifetime=float(protocol.get("pseudonym_lifetime", 20.0)),
            heartbeat_interval=float(liveness.get("heartbeat_interval", 1.0)),
            suspect_after=float(liveness.get("suspect_after", 3.0)),
            dead_after=float(liveness.get("dead_after", 9.0)),
            backoff_base=float(backoff.get("base", 0.25)),
            backoff_factor=float(backoff.get("factor", 2.0)),
            backoff_max=float(backoff.get("max", 4.0)),
            bootstrap_attempts=int(backoff.get("attempts", 10)),
        )
    except (TypeError, ValueError) as error:
        raise NetError(f"invalid value in {path}: {error}") from error


def load_trust_file(path: str, node_id: int) -> Tuple[int, ...]:
    """Extract one node's trusted-neighbor list from a shared trust file."""
    document = _read_document(Path(path))
    entry: Optional[List] = None
    if str(node_id) in document:
        entry = document[str(node_id)]
    elif node_id in document:  # pragma: no cover - JSON keys are strings
        entry = document[node_id]
    if entry is None:
        raise NetError(f"trust file {path} has no entry for node {node_id}")
    if not isinstance(entry, list):
        raise NetError(f"trust file entry for node {node_id} must be a list")
    return tuple(int(t) for t in entry)


def merge_overrides(
    config: NetNodeConfig,
    **overrides,
) -> NetNodeConfig:
    """A copy of ``config`` with non-None override values applied."""
    changes: Dict[str, object] = {
        key: value for key, value in overrides.items() if value is not None
    }
    return dataclasses.replace(config, **changes)
