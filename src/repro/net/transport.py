"""Datagram transports: real UDP and a deterministic in-process loopback.

Both speak the same tiny surface (:class:`Transport`): frames go out
with :meth:`~Transport.send`, frames come in through a receiver
callback, and both ends are named by ``(host, port)`` pairs.  The
overlay's endpoint layer (:mod:`repro.net.endpoint`) is written against
this surface only, so every protocol test can run on the loopback
network with *injected* faults and a seeded RNG — byte-identical runs —
while deployments swap in :class:`UdpTransport` untouched.

Fault injection (:class:`FaultPlan`) models what UDP actually does to
you: independent loss, latency jitter, reordering (expressed as extra
latency on a random subset, which is how reordering manifests at a
receiver), and network partitions that can be healed mid-run.
"""

from __future__ import annotations

import abc
import asyncio
import dataclasses
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..errors import NetError
from ..sim.clock import Clock

__all__ = [
    "Endpoint",
    "Transport",
    "FaultPlan",
    "LoopbackNetwork",
    "LoopbackTransport",
    "UdpTransport",
]

#: A transport address: (host, port).
Endpoint = Tuple[str, int]
Receiver = Callable[[bytes, Endpoint], None]


class Transport(abc.ABC):
    """One datagram socket's worth of behavior."""

    __slots__ = ("sent_frames", "received_frames", "dropped_frames", "_receiver")

    def __init__(self) -> None:
        self.sent_frames = 0
        self.received_frames = 0
        #: Frames that arrived but had nowhere to go (no receiver yet,
        #: or — loopback only — destination unknown/closed).
        self.dropped_frames = 0
        self._receiver: Optional[Receiver] = None

    @property
    @abc.abstractmethod
    def local_address(self) -> Endpoint:
        """The address peers should send to."""

    def set_receiver(self, receiver: Receiver) -> None:
        """Install the frame handler ``receiver(data, source)``."""
        self._receiver = receiver

    @abc.abstractmethod
    def send(self, dest: Endpoint, data: bytes) -> None:
        """Fire one datagram at ``dest`` (best effort, never blocks)."""

    @abc.abstractmethod
    def close(self) -> None:
        """Release the underlying socket/registration.  Idempotent."""

    def _handle(self, data: bytes, source: Endpoint) -> None:
        if self._receiver is None:
            self.dropped_frames += 1
            return
        self.received_frames += 1
        self._receiver(data, source)


@dataclasses.dataclass
class FaultPlan:
    """Injectable network pathologies for the loopback transport.

    All draws come from the :class:`LoopbackNetwork`'s seeded RNG, so a
    given (seed, traffic) pair reproduces the same drops, delays, and
    reorderings every run.
    """

    #: Independent per-frame drop probability.
    loss_rate: float = 0.0
    #: One-way latency bounds (uniform), in clock time units.
    latency_min: float = 0.001
    latency_max: float = 0.05
    #: Probability a frame is held back by ``reorder_extra`` — enough to
    #: leapfrog frames sent after it.
    reorder_rate: float = 0.0
    reorder_extra: float = 0.1
    #: Active partitions as (group_a, group_b) address sets; frames
    #: crossing any pair are dropped until :meth:`heal`.
    partitions: List[Tuple[frozenset, frozenset]] = dataclasses.field(
        default_factory=list
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.loss_rate < 1.0:
            raise NetError("loss_rate must be in [0, 1)")
        if self.latency_min < 0 or self.latency_max < self.latency_min:
            raise NetError("need 0 <= latency_min <= latency_max")
        if not 0.0 <= self.reorder_rate < 1.0:
            raise NetError("reorder_rate must be in [0, 1)")
        if self.reorder_extra < 0:
            raise NetError("reorder_extra must be non-negative")

    def partition(self, group_a, group_b) -> None:
        """Split the network: frames between the two groups are dropped."""
        self.partitions.append((frozenset(group_a), frozenset(group_b)))

    def heal(self) -> None:
        """Remove every active partition."""
        self.partitions.clear()

    def blocks(self, src: Endpoint, dst: Endpoint) -> bool:
        """Whether an active partition separates ``src`` from ``dst``."""
        for group_a, group_b in self.partitions:
            if (src in group_a and dst in group_b) or (
                src in group_b and dst in group_a
            ):
                return True
        return False


class LoopbackNetwork:
    """An in-process datagram fabric driven by any :class:`Clock`.

    Frames hop between registered :class:`LoopbackTransport` instances
    via ``clock.post_after`` with latencies (and faults) drawn from the
    seeded ``rng`` — under a :class:`~repro.sim.simulator.Simulator`
    the whole mesh is a deterministic function of the seed.
    """

    def __init__(
        self,
        clock: Clock,
        rng: np.random.Generator,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        self._clock = clock
        self._rng = rng
        self.faults = faults if faults is not None else FaultPlan()
        self._transports: Dict[Endpoint, "LoopbackTransport"] = {}
        self._next_port = 40000
        self.frames_sent = 0
        self.frames_delivered = 0
        self.frames_lost = 0
        self.frames_blocked = 0
        self.frames_reordered = 0
        self.bytes_sent = 0

    def transport(
        self, host: str = "127.0.0.1", port: Optional[int] = None
    ) -> "LoopbackTransport":
        """Open a transport; ``port=None`` auto-assigns (like bind(0))."""
        if port is None:
            port = self._next_port
            self._next_port += 1
        address = (host, port)
        if address in self._transports:
            raise NetError(f"loopback address {address} already bound")
        transport = LoopbackTransport(self, address)
        self._transports[address] = transport
        return transport

    def _unbind(self, address: Endpoint) -> None:
        self._transports.pop(address, None)

    def _send(self, src: Endpoint, dest: Endpoint, data: bytes) -> None:
        self.frames_sent += 1
        self.bytes_sent += len(data)
        faults = self.faults
        if faults.blocks(src, dest):
            self.frames_blocked += 1
            return
        if faults.loss_rate > 0.0 and self._rng.random() < faults.loss_rate:
            self.frames_lost += 1
            return
        latency = float(
            self._rng.uniform(faults.latency_min, faults.latency_max)
        )
        if (
            faults.reorder_rate > 0.0
            and self._rng.random() < faults.reorder_rate
        ):
            latency += faults.reorder_extra
            self.frames_reordered += 1
        self._clock.post_after(latency, self._deliver, src, dest, data)

    def _deliver(self, src: Endpoint, dest: Endpoint, data: bytes) -> None:
        transport = self._transports.get(dest)
        if transport is None:
            return  # destination closed while the frame was in flight
        self.frames_delivered += 1
        transport._handle(data, src)


class LoopbackTransport(Transport):
    """One endpoint on a :class:`LoopbackNetwork`."""

    __slots__ = ("_network", "_address", "_closed")

    def __init__(self, network: LoopbackNetwork, address: Endpoint) -> None:
        super().__init__()
        self._network = network
        self._address = address
        self._closed = False

    @property
    def local_address(self) -> Endpoint:
        return self._address

    def send(self, dest: Endpoint, data: bytes) -> None:
        if self._closed:
            raise NetError(f"transport {self._address} is closed")
        self.sent_frames += 1
        self._network._send(self._address, dest, bytes(data))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._network._unbind(self._address)


class _UdpProtocol(asyncio.DatagramProtocol):
    """Glue between the asyncio datagram machinery and a UdpTransport."""

    def __init__(self, owner: "UdpTransport") -> None:
        self._owner = owner

    def datagram_received(self, data: bytes, addr) -> None:
        self._owner._handle(bytes(data), (addr[0], addr[1]))

    def error_received(self, exc: OSError) -> None:
        self._owner.socket_errors += 1


class UdpTransport(Transport):
    """A real asyncio UDP socket behind the :class:`Transport` surface.

    Usage is two-phase because binding is asynchronous::

        transport = UdpTransport(port=0)      # 0 = ephemeral
        await transport.start()
        transport.local_address               # actual bound (host, port)
    """

    __slots__ = ("_host", "_port", "_transport", "_bound", "socket_errors")

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        super().__init__()
        self._host = host
        self._port = port
        self._transport: Optional[asyncio.DatagramTransport] = None
        self._bound: Optional[Endpoint] = None
        self.socket_errors = 0

    async def start(self) -> None:
        """Bind the socket on the running loop."""
        if self._transport is not None:
            raise NetError("UdpTransport already started")
        loop = asyncio.get_running_loop()
        transport, _ = await loop.create_datagram_endpoint(
            lambda: _UdpProtocol(self), local_addr=(self._host, self._port)
        )
        self._transport = transport
        sockname = transport.get_extra_info("sockname")
        self._bound = (sockname[0], sockname[1])

    @property
    def local_address(self) -> Endpoint:
        if self._bound is None:
            raise NetError("UdpTransport not started; await start() first")
        return self._bound

    def send(self, dest: Endpoint, data: bytes) -> None:
        if self._transport is None:
            raise NetError("UdpTransport not started; await start() first")
        self.sent_frames += 1
        self._transport.sendto(data, dest)

    def close(self) -> None:
        if self._transport is not None:
            self._transport.close()
            self._transport = None
