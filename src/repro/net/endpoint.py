"""One participant's network machinery: codec + transport + liveness.

:class:`NetEndpoint` is everything a single overlay node needs to live
on a datagram network:

* **bootstrap** — hello the configured seed addresses with exponential
  backoff until one acks (the ack carries the seed's peer list, which
  we then greet, flooding knowledge of us outward);
* **liveness** — periodic heartbeats to every known peer and the
  two-level suspect/dead detection of :class:`~repro.net.peers
  .PeerTable`;
* **pseudonym service** — mint 63-bit endpoint tokens locally, register
  them with the seeds, resolve unknown tokens with lookup queries
  (queueing outbound messages until the route answer lands), and learn
  routes passively from the hints shuffle entries carry;
* **protocol bridging** — translate :class:`~repro.core.shuffle
  .ShuffleRequest` / :class:`ShuffleResponse` to and from their wire
  images so :class:`~repro.core.node.OverlayNode` runs unmodified.

The endpoint never touches a socket API directly — everything goes
through a :class:`~repro.net.transport.Transport` — and never reads a
wall clock — everything goes through a :class:`~repro.sim.clock.Clock`
— so the same code is exercised deterministically on the loopback
fabric and for real over UDP.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Set, Tuple

import numpy as np

from ..core.pseudonym import Pseudonym
from ..core.shuffle import ShuffleRequest, ShuffleResponse
from ..errors import NetError
from ..privlink import Address
from ..rng import random_bits
from ..sim import PeriodicProcess
from ..sim.clock import Clock
from .codec import (
    AppPayload,
    CodecError,
    Goodbye,
    Heartbeat,
    Hello,
    HelloAck,
    Lookup,
    LookupReply,
    Register,
    ShuffleOffer,
    ShuffleReply,
    WireEntry,
    decode_frame,
    encode_frame,
)
from .peers import PeerTable
from .transport import Endpoint, Transport

__all__ = ["NetEndpoint", "ADDRESS_KIND"]

#: ``Address.kind`` for endpoints minted by the live network layer.
ADDRESS_KIND = "net"

#: Outbound messages queued per unresolved token before we start
#: dropping (bounds memory under a hostile or dead directory).
_MAX_PENDING = 16

Inbox = Callable[[Any], None]
OnlineCheck = Callable[[], bool]


class NetEndpoint:
    """A node's datagram presence (see module docstring).

    Parameters
    ----------
    node_id, clock, transport, rng:
        Identity, time source, datagram transport (already bound), and
        a seeded generator (endpoint tokens, timer jitter).
    bootstrap:
        Seed ``(host, port)`` addresses.  Empty means *we* are a seed:
        bootstrapping is trivially complete and lookups are answered
        from the local directory.
    heartbeat_interval, suspect_after, dead_after:
        Liveness cadence and the two-level timeouts, in clock units.
    backoff_base, backoff_factor, backoff_max, bootstrap_attempts:
        Exponential-backoff schedule for bootstrap retries.
    """

    def __init__(
        self,
        node_id: int,
        clock: Clock,
        transport: Transport,
        rng: np.random.Generator,
        bootstrap: Tuple[Endpoint, ...] = (),
        heartbeat_interval: float = 1.0,
        suspect_after: float = 3.0,
        dead_after: float = 9.0,
        backoff_base: float = 0.25,
        backoff_factor: float = 2.0,
        backoff_max: float = 4.0,
        bootstrap_attempts: int = 10,
    ) -> None:
        if bootstrap_attempts < 1:
            raise NetError("bootstrap_attempts must be at least 1")
        if backoff_base <= 0 or backoff_factor < 1 or backoff_max < backoff_base:
            raise NetError("invalid backoff schedule")
        self.node_id = node_id
        self._clock = clock
        self._transport = transport
        self._rng = rng
        self._bootstrap = tuple(bootstrap)
        self._backoff_base = backoff_base
        self._backoff_factor = backoff_factor
        self._backoff_max = backoff_max
        self._bootstrap_attempts = bootstrap_attempts

        self.table = PeerTable(suspect_after=suspect_after, dead_after=dead_after)
        self._inbox: Optional[Inbox] = None
        self._is_online: OnlineCheck = lambda: True
        #: Tokens this endpoint owns (its own pseudonym endpoints).
        self._owned: Set[int] = set()
        #: Learned token -> transport address routes.
        self._routes: Dict[int, Endpoint] = {}
        #: Directory served to others (seeds accumulate registrations).
        self._directory: Dict[int, Endpoint] = {}
        #: Outbound payloads parked until a lookup resolves their token.
        self._pending: Dict[int, List[Any]] = {}
        self._greeted: Set[int] = set()
        self._hb_seq = 0
        #: True once a seed acked our hello (seeds start bootstrapped).
        self.bootstrapped = not self._bootstrap
        self._started = False
        self._closed = False
        self.log: List[str] = []
        self.counters: Dict[str, int] = {
            "codec_rejects": 0,
            "unknown_peer_drops": 0,
            "unknown_endpoint_drops": 0,
            "offline_drops": 0,
            "pending_overflow_drops": 0,
            "bootstrap_attempts": 0,
            "bootstrap_failures": 0,
            "probes_sent": 0,
            "peers_declared_dead": 0,
            "shuffle_offers_in": 0,
            "shuffle_replies_in": 0,
        }

        self._heartbeat = PeriodicProcess(
            clock, period=heartbeat_interval, callback=self._heartbeat_tick,
            rng=rng, jitter=0.1,
        )
        self._liveness = PeriodicProcess(
            clock, period=heartbeat_interval, callback=self._liveness_tick,
            rng=rng, jitter=0.1,
        )
        transport.set_receiver(self._on_frame)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def local_address(self) -> Endpoint:
        """Where peers reach this endpoint."""
        return self._transport.local_address

    def attach(self, inbox: Inbox, is_online: OnlineCheck) -> None:
        """Install the overlay node's message sink and liveness predicate."""
        self._inbox = inbox
        self._is_online = is_online

    def start(self) -> None:
        """Begin heartbeating and (when not a seed) bootstrapping."""
        if self._started:
            raise NetError("endpoint already started")
        self._started = True
        self._heartbeat.start()
        self._liveness.start()
        if not self.bootstrapped:
            self._bootstrap_tick(0)

    def shutdown(self) -> None:
        """Drain politely: goodbye every peer, then close the transport."""
        if self._closed:
            return
        self._closed = True
        self._heartbeat.stop()
        self._liveness.stop()
        farewell = encode_frame(Goodbye(node_id=self.node_id))
        for peer_id in self.table.peer_ids():
            address = self.table.address_of(peer_id)
            if address is not None:
                self._transport.send(address, farewell)
        self._log("shutdown: goodbye sent to "
                  f"{len(self.table)} peers")
        self._transport.close()

    def _log(self, message: str) -> None:
        self.log.append(f"[t={self._clock.now:.3f}] n{self.node_id}: {message}")

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------

    def _bootstrap_tick(self, attempt: int) -> None:
        if self.bootstrapped or self._closed:
            return
        if attempt >= self._bootstrap_attempts:
            self.counters["bootstrap_failures"] += 1
            self._log(
                f"bootstrap failed after {attempt} attempts; giving up"
            )
            return
        self.counters["bootstrap_attempts"] += 1
        host, port = self.local_address
        hello = encode_frame(Hello(node_id=self.node_id, host=host, port=port))
        for seed in self._bootstrap:
            self._transport.send(seed, hello)
        delay = min(
            self._backoff_base * (self._backoff_factor ** attempt),
            self._backoff_max,
        )
        self._log(
            f"bootstrap attempt {attempt + 1}/{self._bootstrap_attempts}, "
            f"retry in {delay:.2f}"
        )
        self._clock.schedule_after(delay, self._bootstrap_tick, attempt + 1)

    def _greet(self, node_id: int, address: Endpoint) -> None:
        """Hello a newly learned peer once, so it learns us symmetrically."""
        if node_id == self.node_id or node_id in self._greeted:
            return
        self._greeted.add(node_id)
        host, port = self.local_address
        self._transport.send(
            address, encode_frame(Hello(node_id=self.node_id, host=host, port=port))
        )

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def _heartbeat_tick(self) -> None:
        if self._closed:
            return
        self._hb_seq += 1
        beat = encode_frame(
            Heartbeat(node_id=self.node_id, seq=self._hb_seq)
        )
        for peer_id in self.table.peer_ids():
            address = self.table.address_of(peer_id)
            if address is not None:
                self._transport.send(address, beat)

    def _liveness_tick(self) -> None:
        if self._closed:
            return
        newly_suspect, dead = self.table.check(self._clock.now)
        for record in newly_suspect:
            self.counters["probes_sent"] += 1
            self._log(f"peer n{record.node_id} silent; probing")
            self._transport.send(
                record.address,
                encode_frame(
                    Heartbeat(
                        node_id=self.node_id,
                        seq=self._hb_seq,
                        reply_wanted=True,
                    )
                ),
            )
        for record in dead:
            self.counters["peers_declared_dead"] += 1
            self._log(f"peer n{record.node_id} declared dead")
            self._drop_routes_via(record.address)

    def _drop_routes_via(self, address: Endpoint) -> None:
        stale = [
            token for token, route in self._routes.items() if route == address
        ]
        for token in stale:
            del self._routes[token]

    # ------------------------------------------------------------------
    # link-layer operations (called via the adapter facades)
    # ------------------------------------------------------------------

    def send_to_node(self, dest_id: int, payload: Any) -> None:
        """Trusted-link send: resolve the peer table, frame, transmit."""
        address = self.table.address_of(dest_id)
        if address is None:
            self.counters["unknown_peer_drops"] += 1
            return
        self._transport.send(address, self._encode_payload(payload))

    def send_to_endpoint(self, address: Address, payload: Any) -> None:
        """Pseudonym-link send: route by token, or look it up and queue."""
        token = address.token
        route = self._route_for(token)
        if route is not None:
            self._transport.send(route, self._encode_payload(payload))
            return
        directory = self._directory_peer()
        if directory is None:
            self.counters["unknown_endpoint_drops"] += 1
            return
        queue = self._pending.setdefault(token, [])
        if len(queue) >= _MAX_PENDING:
            self.counters["pending_overflow_drops"] += 1
            return
        queue.append(payload)
        self._transport.send(directory, encode_frame(Lookup(token=token)))

    def create_endpoint(self) -> Address:
        """Mint a fresh pseudonym endpoint and register it with the seeds."""
        token = random_bits(self._rng, 63)
        while token == 0 or token in self._owned:
            token = random_bits(self._rng, 63)
        self._owned.add(token)
        host, port = self.local_address
        self._directory[token] = (host, port)
        registration = encode_frame(
            Register(
                node_id=self.node_id, token=token, host=host, port=port,
                active=True,
            )
        )
        for seed in self._bootstrap:
            self._transport.send(seed, registration)
        return Address(token=token, kind=ADDRESS_KIND)

    def close_endpoint(self, address: Address) -> None:
        """Retire an owned endpoint; unregister it from the seeds."""
        token = address.token
        self._owned.discard(token)
        self._directory.pop(token, None)
        self._routes.pop(token, None)
        host, port = self.local_address
        unregistration = encode_frame(
            Register(
                node_id=self.node_id, token=token, host=host, port=port,
                active=False,
            )
        )
        for seed in self._bootstrap:
            self._transport.send(seed, unregistration)

    def _route_for(self, token: int) -> Optional[Endpoint]:
        if token in self._owned:
            return self.local_address
        route = self._routes.get(token)
        if route is not None:
            return route
        return self._directory.get(token)

    def _directory_peer(self) -> Optional[Endpoint]:
        """Whom to ask about unknown tokens (the first seed)."""
        return self._bootstrap[0] if self._bootstrap else None

    # ------------------------------------------------------------------
    # wire conversion
    # ------------------------------------------------------------------

    def _route_hint(self, token: int) -> Tuple[str, int]:
        route = self._route_for(token)
        return route if route is not None else ("", 0)

    def _entries_to_wire(
        self, entries: Tuple[Pseudonym, ...], now: float
    ) -> Tuple[WireEntry, ...]:
        wires = []
        for pseudonym in entries:
            token = pseudonym.address.token
            host, port = self._route_hint(token)
            wires.append(
                WireEntry(
                    value=pseudonym.value,
                    token=token,
                    ttl=pseudonym.expires_at - now,
                    host=host,
                    port=port,
                )
            )
        return tuple(wires)

    def _entries_from_wire(
        self, wires: Tuple[WireEntry, ...], now: float
    ) -> Tuple[Pseudonym, ...]:
        entries = []
        for wire in wires:
            if wire.host and wire.token not in self._owned:
                self._routes[wire.token] = (wire.host, wire.port)
            entries.append(
                Pseudonym(
                    value=wire.value,
                    address=Address(token=wire.token, kind=ADDRESS_KIND),
                    expires_at=now + wire.ttl,
                )
            )
        return tuple(entries)

    def _encode_payload(self, payload: Any) -> bytes:
        now = self._clock.now
        if isinstance(payload, ShuffleRequest):
            entries = self._entries_to_wire(payload.entries, now)
            if payload.reply_node is not None:
                offer = ShuffleOffer(entries=entries, reply_node=payload.reply_node)
            else:
                token = payload.reply_address.token
                host, port = self._route_hint(token)
                offer = ShuffleOffer(
                    entries=entries,
                    reply_token=token,
                    reply_host=host,
                    reply_port=port,
                )
            return encode_frame(offer)
        if isinstance(payload, ShuffleResponse):
            return encode_frame(
                ShuffleReply(entries=self._entries_to_wire(payload.entries, now))
            )
        try:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
        except (TypeError, ValueError) as error:
            raise NetError(
                f"application payload is not JSON-encodable: {error}"
            ) from error
        return encode_frame(AppPayload(kind="json", body=body))

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def _deliver(self, payload: Any) -> None:
        if self._inbox is None or not self._is_online():
            self.counters["offline_drops"] += 1
            return
        self._inbox(payload)

    def _on_frame(self, data: bytes, source: Endpoint) -> None:
        if self._closed:
            return
        message = decode_frame(data)
        if isinstance(message, CodecError):
            self.counters["codec_rejects"] += 1
            self._log(f"rejected frame from {source}: {message.code}")
            return
        now = self._clock.now
        if isinstance(message, Hello):
            self.table.note_heard(message.node_id, (message.host, message.port), now)
            self._greeted.add(message.node_id)
            ack = HelloAck(node_id=self.node_id, peers=self.table.peer_infos())
            self._transport.send((message.host, message.port), encode_frame(ack))
            return
        if isinstance(message, HelloAck):
            if not self.bootstrapped:
                self.bootstrapped = True
                self._log(f"bootstrapped via n{message.node_id}")
            self.table.note_heard(message.node_id, source, now)
            for peer in message.peers:
                self._greet(peer.node_id, (peer.host, peer.port))
            return
        if isinstance(message, Heartbeat):
            self.table.note_heard(message.node_id, source, now)
            if message.reply_wanted:
                self._transport.send(
                    source,
                    encode_frame(
                        Heartbeat(node_id=self.node_id, seq=self._hb_seq)
                    ),
                )
            return
        if isinstance(message, Goodbye):
            record = self.table.remove(message.node_id)
            if record is not None:
                self._drop_routes_via(record.address)
                self._log(f"peer n{message.node_id} said goodbye")
            return
        if isinstance(message, Register):
            if message.active:
                self._directory[message.token] = (message.host, message.port)
            else:
                self._directory.pop(message.token, None)
                self._routes.pop(message.token, None)
            return
        if isinstance(message, Lookup):
            route = self._route_for(message.token)
            reply = LookupReply(
                token=message.token,
                found=route is not None,
                host=route[0] if route is not None else "",
                port=route[1] if route is not None else 0,
            )
            self._transport.send(source, encode_frame(reply))
            return
        if isinstance(message, LookupReply):
            queued = self._pending.pop(message.token, [])
            if not message.found:
                self.counters["unknown_endpoint_drops"] += len(queued)
                return
            route = (message.host, message.port)
            self._routes[message.token] = route
            for payload in queued:
                self._transport.send(route, self._encode_payload(payload))
            return
        if isinstance(message, ShuffleOffer):
            self.counters["shuffle_offers_in"] += 1
            entries = self._entries_from_wire(message.entries, now)
            if message.reply_node is not None:
                request = ShuffleRequest(entries=entries, reply_node=message.reply_node)
            else:
                reply_route = (
                    (message.reply_host, message.reply_port)
                    if message.reply_host
                    else source
                )
                if message.reply_token not in self._owned:
                    self._routes[message.reply_token] = reply_route
                request = ShuffleRequest(
                    entries=entries,
                    reply_address=Address(
                        token=message.reply_token, kind=ADDRESS_KIND
                    ),
                )
            self._deliver(request)
            return
        if isinstance(message, ShuffleReply):
            self.counters["shuffle_replies_in"] += 1
            self._deliver(
                ShuffleResponse(entries=self._entries_from_wire(message.entries, now))
            )
            return
        # AppPayload — the only remaining type.
        try:
            payload = json.loads(message.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self.counters["codec_rejects"] += 1
            self._log(f"rejected app payload from {source}: bad JSON")
            return
        self._deliver(payload)
