"""Link-layer facades that put :class:`NetEndpoint` behind the
:class:`~repro.privlink.link.LinkLayer` surface.

The overlay protocol only ever calls ``register_node`` /
``send_to_node`` / ``send_to_endpoint`` / ``send_reverse`` /
``create_endpoint`` / ``close_endpoint`` on its link layer.  Two
adapters provide that surface over real transports:

* :class:`NetLinkLayer` — one local node (the ``repro node`` CLI); the
  sender id is implicit, messages leave through the node's own
  endpoint.
* :class:`MeshLinkLayer` — many nodes in one process (the localhost
  mesh harness); dispatches on the sender/owner id to the right
  endpoint, so a single :class:`~repro.core.protocol.Overlay` object
  drives N endpoints and every message still round-trips
  encode → transport → decode.

``send_reverse`` maps to a trusted-link send, matching the ideal link
layer: the paper's bidirectional overlay channels are routed by
destination id as a stand-in for the standing channel handle.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from ..errors import NetError
from ..privlink import Address
from .endpoint import NetEndpoint

__all__ = ["NetLinkLayer", "MeshLinkLayer"]

Inbox = Callable[[Any], None]
OnlineCheck = Callable[[], bool]


class NetLinkLayer:
    """A single node's view of the network as a LinkLayer."""

    def __init__(self, endpoint: NetEndpoint) -> None:
        self.endpoint = endpoint

    def register_node(
        self, node_id: int, inbox: Inbox, is_online: OnlineCheck
    ) -> None:
        if node_id != self.endpoint.node_id:
            raise NetError(
                f"NetLinkLayer serves node {self.endpoint.node_id}, "
                f"got registration for {node_id}"
            )
        self.endpoint.attach(inbox, is_online)

    def send_to_node(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.endpoint.send_to_node(dest_id, payload)

    def send_to_endpoint(
        self, sender_id: int, address: Address, payload: Any
    ) -> None:
        self.endpoint.send_to_endpoint(address, payload)

    def send_reverse(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.endpoint.send_to_node(dest_id, payload)

    def create_endpoint(self, owner_id: int) -> Address:
        return self.endpoint.create_endpoint()

    def close_endpoint(self, address: Address) -> None:
        self.endpoint.close_endpoint(address)


class MeshLinkLayer:
    """N endpoints in one process, dispatched by sender/owner id."""

    def __init__(self) -> None:
        self._endpoints: Dict[int, NetEndpoint] = {}
        #: Which node minted each token (close_endpoint has no owner arg).
        self._token_owner: Dict[int, int] = {}

    def add(self, endpoint: NetEndpoint) -> None:
        """Adopt one node's endpoint (before the overlay is built)."""
        if endpoint.node_id in self._endpoints:
            raise NetError(f"endpoint for node {endpoint.node_id} already added")
        self._endpoints[endpoint.node_id] = endpoint

    def endpoint(self, node_id: int) -> NetEndpoint:
        """The endpoint serving ``node_id``."""
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise NetError(f"no endpoint for node {node_id}") from None

    def endpoints(self) -> Dict[int, NetEndpoint]:
        """All endpoints by node id (read-only use)."""
        return dict(self._endpoints)

    def register_node(
        self, node_id: int, inbox: Inbox, is_online: OnlineCheck
    ) -> None:
        self.endpoint(node_id).attach(inbox, is_online)

    def send_to_node(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.endpoint(sender_id).send_to_node(dest_id, payload)

    def send_to_endpoint(
        self, sender_id: int, address: Address, payload: Any
    ) -> None:
        self.endpoint(sender_id).send_to_endpoint(address, payload)

    def send_reverse(self, sender_id: int, dest_id: int, payload: Any) -> None:
        self.endpoint(sender_id).send_to_node(dest_id, payload)

    def create_endpoint(self, owner_id: int) -> Address:
        address = self.endpoint(owner_id).create_endpoint()
        self._token_owner[address.token] = owner_id
        return address

    def close_endpoint(self, address: Address) -> None:
        owner = self._token_owner.pop(address.token, None)
        if owner is not None:
            self.endpoint(owner).close_endpoint(address)
