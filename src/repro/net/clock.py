"""Wall time behind the :class:`~repro.sim.clock.Clock` contract.

This module is the only place in the codebase allowed to read the host
clock (the determinism linter's DET003 waiver boundary covers exactly
``repro/net/``): :class:`WallClock` maps ``time.monotonic()`` onto the
protocol's time axis, and everything above it keeps speaking simulated
"shuffling periods".

Time scaling
------------
The protocol's unit of time is the shuffling period.  A
:class:`WallClock` is constructed with ``seconds_per_period``: ``now``
returns ``(monotonic - epoch) / seconds_per_period`` and scheduled
delays are multiplied back out, so an :class:`~repro.core.node
.OverlayNode` that shuffles every ``1.0`` time units shuffles once per
``seconds_per_period`` wall seconds.  Every protocol parameter
(pseudonym lifetime, heartbeat interval, suspect timeouts) keeps its
simulator meaning under deployment — only the scale knob changes.

Unlike the simulator, a wall clock cannot refuse to schedule in the
past — real time has already moved on — so past times clamp to "run as
soon as possible" instead of raising.  Negative *delays* are still
programming errors and raise, matching :class:`Simulator`.
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Callable, Optional

from ..errors import SchedulerError
from ..sim.clock import Clock

__all__ = ["WallClock", "WallHandle", "Scheduler"]


class WallHandle:
    """Cancellable reference to a wall-clock callback.

    Mirrors the :class:`~repro.sim.events.EventHandle` surface
    (``cancel()``, ``cancelled``, ``time``, ``label``) so protocol code
    holding a handle never knows which clock issued it.
    """

    __slots__ = ("_timer", "_cancelled", "time", "label")

    def __init__(
        self,
        timer: asyncio.TimerHandle,
        time: float,
        label: Optional[str] = None,
    ) -> None:
        self._timer = timer
        self._cancelled = False
        self.time = time
        self.label = label

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled

    def cancel(self) -> None:
        """Prevent the callback from firing.  Idempotent."""
        if self._cancelled:
            return
        self._cancelled = True
        self._timer.cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self._cancelled else ""
        return f"WallHandle(t={self.time:.4f}{state})"


class WallClock(Clock):
    """Real time, measured in shuffling periods, over an asyncio loop.

    Parameters
    ----------
    seconds_per_period:
        Wall seconds per protocol time unit.  ``0.05`` runs a mesh at
        20 shuffling periods per second — brisk enough for CI, slow
        enough for real sockets.
    loop:
        Event loop used for ``call_later``.  When ``None`` the running
        loop is looked up at each scheduling call, so a ``WallClock``
        may be constructed before the loop starts.
    """

    __slots__ = ("_loop", "_seconds_per_period", "_epoch")

    def __init__(
        self,
        seconds_per_period: float = 1.0,
        loop: Optional[asyncio.AbstractEventLoop] = None,
    ) -> None:
        if seconds_per_period <= 0:
            raise SchedulerError(
                f"seconds_per_period must be positive, got {seconds_per_period}"
            )
        self._loop = loop
        self._seconds_per_period = seconds_per_period
        self._epoch = time.monotonic()

    @property
    def seconds_per_period(self) -> float:
        """Wall seconds per protocol time unit."""
        return self._seconds_per_period

    def _event_loop(self) -> asyncio.AbstractEventLoop:
        if self._loop is not None:
            return self._loop
        return asyncio.get_running_loop()

    @property
    def now(self) -> float:
        return (time.monotonic() - self._epoch) / self._seconds_per_period

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> WallHandle:
        delay = max(0.0, time - self.now) * self._seconds_per_period
        timer = self._event_loop().call_later(delay, callback, *args)
        return WallHandle(timer, time, label)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> WallHandle:
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        return self.schedule(self.now + delay, callback, *args, label=label)

    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        delay = max(0.0, time - self.now) * self._seconds_per_period
        self._event_loop().call_later(delay, callback, *args)

    def post_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        if delay < 0:
            raise SchedulerError(f"delay must be non-negative, got {delay}")
        self.post(self.now + delay, callback, *args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WallClock(now={self.now:.4f}, "
            f"seconds_per_period={self._seconds_per_period})"
        )


class Scheduler(Clock):
    """One façade over either clock, presenting the Simulator surface.

    :class:`~repro.core.protocol.Overlay` and friends take a ``sim``
    argument and occasionally call ``sim.run_until``.  A ``Scheduler``
    wraps any :class:`Clock` and:

    * delegates the whole :class:`Clock` surface;
    * forwards ``run_until`` when the backing clock supports it (a
      :class:`~repro.sim.simulator.Simulator` or
      :class:`~repro.sim.clock.SimClock`), and raises a clear
      :class:`~repro.errors.SchedulerError` on a wall clock — real time
      cannot be fast-forwarded;
    * adds :meth:`run_for`, the portable way to let time pass: a
      synchronous drain under simulation, an ``asyncio.sleep`` under
      wall time.
    """

    __slots__ = ("_clock",)

    def __init__(self, clock: Clock) -> None:
        self._clock = clock

    @property
    def clock(self) -> Clock:
        """The backing clock."""
        return self._clock

    @property
    def wall(self) -> bool:
        """Whether the backing clock runs on real time."""
        return isinstance(self._clock, WallClock)

    @property
    def now(self) -> float:
        return self._clock.now

    def schedule(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Any:
        return self._clock.schedule(time, callback, *args, label=label)

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        label: Optional[str] = None,
    ) -> Any:
        return self._clock.schedule_after(delay, callback, *args, label=label)

    def post(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        self._clock.post(time, callback, *args)

    def post_after(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> None:
        self._clock.post_after(delay, callback, *args)

    def run_until(self, horizon: float) -> None:
        """Advance a simulation-backed clock to ``horizon``."""
        runner = getattr(self._clock, "run_until", None)
        if runner is None:
            raise SchedulerError(
                "run_until() needs a simulation-backed clock; a WallClock "
                "cannot be fast-forwarded — use 'await scheduler.run_for(...)'"
            )
        runner(horizon)

    async def run_for(self, duration: float) -> None:
        """Let ``duration`` time units pass on whichever clock backs us."""
        if duration < 0:
            raise SchedulerError(f"duration must be non-negative, got {duration}")
        if self.wall:
            seconds = duration * self._clock.seconds_per_period
            await asyncio.sleep(seconds)
        else:
            self.run_until(self.now + duration)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scheduler({self._clock!r})"
