"""``repro node`` / ``repro mesh`` — the live-network entry points.

``repro node`` runs ONE overlay node over real UDP::

    repro node --port 9000 --node-id 0 --seed 1            # seed node
    repro node --port 9001 --node-id 1 --bootstrap 127.0.0.1:9000 \\
               --trust-file trust.json

It builds the same :class:`~repro.core.node.OverlayNode` the simulator
uses, drives it with a :class:`~repro.net.clock.WallClock`, and keeps
running until SIGINT/SIGTERM (graceful drain, exit 130) or
``--duration`` periods elapse.

``repro mesh`` launches an N-node localhost mesh in one process —
deterministic loopback fabric by default, real UDP sockets with
``--transport udp`` — samples it through the metrics collector, and
checks convergence against a pure-simulator run at equal parameters::

    repro mesh --nodes 20 --duration 40 --seed 1
    repro mesh --nodes 9 --transport udp --logs-dir mesh-logs
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import NetError, ReproError
from ..shutdown import EXIT_INTERRUPTED, graceful_shutdown, install_async_shutdown
from .config import (
    NetNodeConfig,
    load_net_config,
    load_trust_file,
    merge_overrides,
    parse_hostport,
)
from .harness import (
    MeshSpec,
    converged_against,
    run_loopback_mesh,
    run_udp_mesh,
    simulate_reference,
)
from .transport import FaultPlan

__all__ = ["main", "node_main", "mesh_main"]


def _node_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro node",
        description="Run one live overlay node over UDP "
        "(see docs/networking.md).",
    )
    parser.add_argument("--config", default=None, help="TOML/JSON config file")
    parser.add_argument("--node-id", type=int, default=None)
    parser.add_argument("--host", default=None, help="bind host")
    parser.add_argument("--port", type=int, default=None, help="bind port (0=ephemeral)")
    parser.add_argument(
        "--bootstrap",
        action="append",
        default=None,
        metavar="HOST:PORT",
        help="seed node address (repeatable; omit to run as a seed)",
    )
    parser.add_argument(
        "--trust-file",
        default=None,
        help='shared trust file: {"<node_id>": [trusted ids...]}',
    )
    parser.add_argument("--seed", type=int, default=None, help="node RNG seed")
    parser.add_argument(
        "--seconds-per-period",
        type=float,
        default=None,
        help="wall seconds per shuffling period (default 1.0)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="stop after this many periods (default: run until signalled)",
    )
    return parser


async def _run_node(config: NetNodeConfig, duration: Optional[float]) -> int:
    # Imported here so `repro mesh --transport loopback` never pays for
    # the overlay stack it does not use.
    from ..core.node import OverlayNode
    from ..rng import RandomStreams
    from .clock import Scheduler, WallClock
    from .endpoint import NetEndpoint
    from .linklayer import NetLinkLayer
    from .transport import UdpTransport

    loop = asyncio.get_running_loop()
    stop = install_async_shutdown(loop)
    clock = WallClock(
        seconds_per_period=config.seconds_per_period, loop=loop
    )
    scheduler = Scheduler(clock)
    streams = RandomStreams(config.seed)
    transport = UdpTransport(host=config.host, port=config.port)
    await transport.start()
    endpoint = NetEndpoint(
        node_id=config.node_id,
        clock=scheduler,
        transport=transport,
        rng=streams.substream("net", "endpoint", config.node_id),
        bootstrap=config.bootstrap,
        heartbeat_interval=config.heartbeat_interval,
        suspect_after=config.suspect_after,
        dead_after=config.dead_after,
        backoff_base=config.backoff_base,
        backoff_factor=config.backoff_factor,
        backoff_max=config.backoff_max,
        bootstrap_attempts=config.bootstrap_attempts,
    )
    link_layer = NetLinkLayer(endpoint)
    node = OverlayNode(
        node_id=config.node_id,
        trusted_neighbors=config.trusted,
        slot_count=config.slot_count,
        cache_size=config.cache_size,
        shuffle_length=config.shuffle_length,
        pseudonym_lifetime=config.pseudonym_lifetime,
        sim=scheduler,
        link_layer=link_layer,
        rng=streams.substream("node", config.node_id),
    )
    host, port = transport.local_address
    print(
        f"node {config.node_id} listening on {host}:{port} "
        f"({config.seconds_per_period:g}s/period, "
        f"{len(config.bootstrap)} bootstrap seed(s))",
        flush=True,
    )
    endpoint.start()
    node.come_online()

    interrupted = False
    try:
        if duration is None:
            await stop.wait()
            interrupted = True
        else:
            wall_seconds = duration * config.seconds_per_period
            stopper = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait_for(
                    asyncio.shield(stopper), timeout=wall_seconds
                )
                interrupted = True
            except asyncio.TimeoutError:
                stopper.cancel()
    finally:
        # Drain: leave the overlay, say goodbye, close the socket.
        node.go_offline()
        endpoint.shutdown()
        for line in endpoint.log:
            print(f"  [node {config.node_id}] {line}")
        print(
            f"node {config.node_id} stopped at period "
            f"{scheduler.now:.1f}; counters: "
            + json.dumps(dict(sorted(endpoint.counters.items()))),
            flush=True,
        )
    return EXIT_INTERRUPTED if interrupted else 0


def node_main(argv: List[str]) -> int:
    """Entry point for ``repro node``."""
    args = _node_parser().parse_args(argv)
    try:
        config = (
            load_net_config(args.config) if args.config else NetNodeConfig()
        )
        bootstrap = (
            tuple(parse_hostport(b) for b in args.bootstrap)
            if args.bootstrap is not None
            else None
        )
        config = merge_overrides(
            config,
            node_id=args.node_id,
            host=args.host,
            port=args.port,
            seed=args.seed,
            seconds_per_period=args.seconds_per_period,
            bootstrap=bootstrap,
        )
        if args.trust_file:
            config = merge_overrides(
                config,
                trusted=load_trust_file(args.trust_file, config.node_id),
            )
    except ReproError as error:
        print(f"repro node: {error}", file=sys.stderr)
        return 2
    with graceful_shutdown():
        try:
            return asyncio.run(_run_node(config, args.duration))
        except KeyboardInterrupt:
            # Signal landed outside the loop's handler window (startup /
            # teardown); nothing is live at that point, exit cleanly.
            print("repro node: interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
        except (NetError, OSError) as error:
            print(f"repro node: {error}", file=sys.stderr)
            return 1


def _mesh_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro mesh",
        description="Launch an N-node localhost mesh in one process and "
        "check it converges to the simulator's envelope.",
    )
    parser.add_argument("--nodes", type=int, default=9)
    parser.add_argument("--duration", type=float, default=40.0)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--transport",
        choices=("loopback", "udp"),
        default="loopback",
        help="loopback = deterministic in-process fabric; udp = real sockets",
    )
    parser.add_argument(
        "--seconds-per-period",
        type=float,
        default=0.05,
        help="wall pacing for UDP runs (default 0.05 s/period)",
    )
    parser.add_argument(
        "--loss",
        type=float,
        default=0.0,
        help="loopback fault injection: frame loss rate",
    )
    parser.add_argument(
        "--reorder",
        type=float,
        default=0.0,
        help="loopback fault injection: reorder rate",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="FILE",
        help="also write the mesh report (with digest) as JSON",
    )
    parser.add_argument(
        "--logs-dir",
        default=None,
        metavar="DIR",
        help="write per-node event logs here (CI artifact)",
    )
    parser.add_argument(
        "--no-reference",
        action="store_true",
        help="skip the simulator reference run / convergence check",
    )
    return parser


def _write_mesh_artifacts(report, args) -> None:
    if args.json:
        payload = {
            "transport": report.transport,
            "num_nodes": report.num_nodes,
            "seed": report.seed,
            "duration": report.duration,
            "mean_degree": report.mean_degree,
            "fraction_disconnected": report.fraction_disconnected,
            "normalized_path_length": report.normalized_path_length,
            "all_bootstrapped": report.all_bootstrapped,
            "shuffle_offers": report.shuffle_offers,
            "counters": dict(sorted(report.counters.items())),
            "digest": report.digest(),
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"report written to {args.json}")
    if args.logs_dir:
        logs_dir = Path(args.logs_dir)
        logs_dir.mkdir(parents=True, exist_ok=True)
        for node_id, lines in enumerate(report.node_logs):
            (logs_dir / f"node-{node_id:03d}.log").write_text(
                "\n".join(lines) + "\n", encoding="utf-8"
            )
        print(f"{len(report.node_logs)} node logs written to {logs_dir}")


def mesh_main(argv: List[str]) -> int:
    """Entry point for ``repro mesh``."""
    args = _mesh_parser().parse_args(argv)
    faults = None
    if args.loss or args.reorder:
        faults = FaultPlan(loss_rate=args.loss, reorder_rate=args.reorder)
    try:
        spec = MeshSpec(
            num_nodes=args.nodes,
            seed=args.seed,
            duration=args.duration,
            seconds_per_period=args.seconds_per_period,
            faults=faults,
        )
    except NetError as error:
        print(f"repro mesh: {error}", file=sys.stderr)
        return 2
    report = None
    with graceful_shutdown():
        try:
            print(
                f"running {args.nodes}-node {args.transport} mesh "
                f"(seed={args.seed}, duration={args.duration:g} periods)...",
                flush=True,
            )
            if args.transport == "udp":
                report = run_udp_mesh(spec)
            else:
                report = run_loopback_mesh(spec)
        except KeyboardInterrupt:
            print("repro mesh: interrupted before completion", file=sys.stderr)
            return EXIT_INTERRUPTED
        except (NetError, OSError) as error:
            print(f"repro mesh: {error}", file=sys.stderr)
            return 1

    print(
        f"mesh done: mean degree {report.mean_degree:.2f}, "
        f"disconnected {report.fraction_disconnected:.3f}, "
        f"{report.shuffle_offers} shuffle offers, "
        f"bootstrapped={'all' if report.all_bootstrapped else 'PARTIAL'}"
    )
    print(f"digest: {report.digest()}")
    _write_mesh_artifacts(report, args)
    if args.no_reference:
        return 0
    reference = simulate_reference(spec)
    ok, summary = converged_against(report, reference)
    print(f"convergence vs simulator: {summary}")
    if not ok:
        print("repro mesh: mesh did NOT converge to the simulator envelope",
              file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Dispatch ``node``/``mesh`` (called from the top-level CLI)."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in ("node", "mesh"):
        print("usage: repro {node,mesh} [options]", file=sys.stderr)
        return 2
    command, rest = argv[0], argv[1:]
    if command == "node":
        return node_main(rest)
    return mesh_main(rest)


if __name__ == "__main__":
    sys.exit(main())
