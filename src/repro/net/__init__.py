"""Live-network layer: the simulator's protocol objects over real sockets.

The packages below put the *same* :mod:`repro.core` protocol code on a
wire.  Nothing in the protocol changes — it already only talks to a
:class:`~repro.sim.clock.Clock` and a link-layer facade — so this
package supplies network-backed implementations of both:

* :mod:`repro.net.clock` — :class:`WallClock` (asyncio-timer clock in
  shuffling-period units) and :class:`Scheduler` (sim/wall facade);
* :mod:`repro.net.codec` — length-prefixed, versioned wire frames with
  strict non-throwing decode;
* :mod:`repro.net.transport` — asyncio UDP plus a deterministic
  in-process loopback fabric with injectable faults;
* :mod:`repro.net.peers` / :mod:`repro.net.endpoint` — bootstrap,
  heartbeats, two-level dead-peer detection, pseudonym registry;
* :mod:`repro.net.linklayer` — LinkLayer adapters for one node
  (``repro node``) or an N-node in-process mesh;
* :mod:`repro.net.config` — seed-node TOML/JSON configuration;
* :mod:`repro.net.harness` — the localhost mesh harness and its
  convergence check against the simulator.

See ``docs/networking.md`` for the architecture tour and wire format.
"""

from .clock import Scheduler, WallClock
from .codec import (
    MAX_FRAME,
    WIRE_VERSION,
    CodecError,
    decode_frame,
    encode_frame,
)
from .config import (
    NetNodeConfig,
    load_net_config,
    load_trust_file,
    merge_overrides,
    parse_hostport,
)
from .endpoint import NetEndpoint
from .harness import (
    MeshReport,
    MeshSpec,
    converged_against,
    run_loopback_mesh,
    run_udp_mesh,
    simulate_reference,
)
from .linklayer import MeshLinkLayer, NetLinkLayer
from .peers import PeerRecord, PeerTable
from .transport import (
    FaultPlan,
    LoopbackNetwork,
    LoopbackTransport,
    UdpTransport,
)

__all__ = [
    "Scheduler",
    "WallClock",
    "MAX_FRAME",
    "WIRE_VERSION",
    "CodecError",
    "decode_frame",
    "encode_frame",
    "NetNodeConfig",
    "load_net_config",
    "load_trust_file",
    "merge_overrides",
    "parse_hostport",
    "NetEndpoint",
    "MeshReport",
    "MeshSpec",
    "converged_against",
    "run_loopback_mesh",
    "run_udp_mesh",
    "simulate_reference",
    "MeshLinkLayer",
    "NetLinkLayer",
    "PeerRecord",
    "PeerTable",
    "FaultPlan",
    "LoopbackNetwork",
    "LoopbackTransport",
    "UdpTransport",
]
