"""Length-prefixed, versioned wire codec for the live overlay.

Every datagram is one *frame*::

    magic  b"RN"   (2 bytes)
    version u8     (currently 1)
    type    u8     (message discriminator, see the WIRE_* constants)
    length  u32 BE (body length in bytes)
    body    ...    (exactly `length` bytes, message-specific)

Integers are big-endian.  Strings are ``u16`` length + UTF-8 bytes.
The codec is strict in both directions:

* :func:`encode_frame` refuses messages that exceed the UDP-safe
  :data:`MAX_FRAME` or overflow a field (raises
  :class:`~repro.errors.NetError` — an encode failure is a local
  programming error);
* :func:`decode_frame` **never raises**: any malformed input — short
  header, bad magic, unknown version or type, a length prefix that
  disagrees with the payload or exceeds :data:`MAX_FRAME`, truncated
  or trailing body bytes, garbage — returns a typed
  :class:`CodecError` value instead, so a hostile datagram cannot
  unwind a receive loop.

Pseudonym expiry crosses the wire as a **relative TTL** (``expires_at -
sender_now``), because two machines share no time axis; the receiver
re-anchors it at its own clock (``receiver_now + ttl``).  Each entry
also carries an optional transport route hint (host/port of the
pseudonym-service endpoint) so receivers learn ``token -> address``
routes passively; an absent hint is ``("", 0)``.

Privacy note: shuffle offers and replies carry pseudonym material only.
Node identities appear solely in frames that are legitimate over
*trusted* links (hello, heartbeat, goodbye) or to the directory
(register) — mirroring the paper's trusted-link/pseudonym-link split.
"""

from __future__ import annotations

import dataclasses
import math
import struct
from typing import Optional, Tuple, Union

from ..errors import NetError

__all__ = [
    "MAX_FRAME",
    "WIRE_VERSION",
    "CodecError",
    "PeerInfo",
    "WireEntry",
    "Hello",
    "HelloAck",
    "Heartbeat",
    "ShuffleOffer",
    "ShuffleReply",
    "Register",
    "Lookup",
    "LookupReply",
    "AppPayload",
    "Goodbye",
    "encode_frame",
    "decode_frame",
]

MAGIC = b"RN"
WIRE_VERSION = 1
HEADER = struct.Struct(">2sBBI")
#: Largest frame we emit or accept: the classic safe UDP payload bound.
MAX_FRAME = 65507
_MAX_STR = 512
_MAX_ENTRIES = 255
_MAX_PEERS = 1024

WIRE_HELLO = 1
WIRE_HELLO_ACK = 2
WIRE_HEARTBEAT = 3
WIRE_SHUFFLE_OFFER = 4
WIRE_SHUFFLE_REPLY = 5
WIRE_REGISTER = 6
WIRE_LOOKUP = 7
WIRE_LOOKUP_REPLY = 8
WIRE_APP_PAYLOAD = 9
WIRE_GOODBYE = 10


@dataclasses.dataclass(frozen=True)
class CodecError:
    """A typed decode failure (returned, never raised).

    ``code`` is a short stable slug (``"truncated"``, ``"bad-magic"``,
    ``"unknown-version"``, ``"unknown-type"``, ``"oversize"``,
    ``"length-mismatch"``, ``"malformed"``); ``reason`` is a human
    sentence for logs.
    """

    code: str
    reason: str


@dataclasses.dataclass(frozen=True)
class PeerInfo:
    """A peer's identity and transport address (trusted-link material)."""

    node_id: int
    host: str
    port: int


@dataclasses.dataclass(frozen=True)
class WireEntry:
    """One pseudonym as it crosses the wire.

    ``ttl`` is relative to the *sender's* clock at encode time; ``host``
    / ``port`` are an optional route hint for the endpoint behind
    ``token`` (``("", 0)`` when the sender has no route either).
    """

    value: int
    token: int
    ttl: float
    host: str = ""
    port: int = 0


@dataclasses.dataclass(frozen=True)
class Hello:
    """Bootstrap greeting: who I am and where to reach me."""

    node_id: int
    host: str
    port: int


@dataclasses.dataclass(frozen=True)
class HelloAck:
    """Bootstrap answer carrying the responder's known peers."""

    node_id: int
    peers: Tuple[PeerInfo, ...] = ()


@dataclasses.dataclass(frozen=True)
class Heartbeat:
    """Periodic liveness beacon; ``reply_wanted`` makes it a probe."""

    node_id: int
    seq: int
    reply_wanted: bool = False


@dataclasses.dataclass(frozen=True)
class ShuffleOffer:
    """A shuffle request's pseudonym set plus its reply channel.

    Exactly one of ``reply_node`` (trusted link) or ``reply_token``
    (pseudonym link, with an optional route hint) is set — the wire
    image of :class:`repro.core.shuffle.ShuffleRequest`.
    """

    entries: Tuple[WireEntry, ...]
    reply_node: Optional[int] = None
    reply_token: Optional[int] = None
    reply_host: str = ""
    reply_port: int = 0


@dataclasses.dataclass(frozen=True)
class ShuffleReply:
    """The responder's pseudonym set (wire image of ShuffleResponse)."""

    entries: Tuple[WireEntry, ...]


@dataclasses.dataclass(frozen=True)
class Register:
    """Pseudonym-service registration: bind/unbind ``token`` to an address."""

    node_id: int
    token: int
    host: str
    port: int
    active: bool = True


@dataclasses.dataclass(frozen=True)
class Lookup:
    """Pseudonym-service query: where does ``token`` live?"""

    token: int


@dataclasses.dataclass(frozen=True)
class LookupReply:
    """Pseudonym-service answer; ``found`` gates the address fields."""

    token: int
    found: bool
    host: str = ""
    port: int = 0


@dataclasses.dataclass(frozen=True)
class AppPayload:
    """An opaque dissemination payload (application frames)."""

    kind: str
    body: bytes


@dataclasses.dataclass(frozen=True)
class Goodbye:
    """Clean-shutdown notice so peers prune us immediately."""

    node_id: int


Message = Union[
    Hello,
    HelloAck,
    Heartbeat,
    ShuffleOffer,
    ShuffleReply,
    Register,
    Lookup,
    LookupReply,
    AppPayload,
    Goodbye,
]


# ----------------------------------------------------------------------
# encoding
# ----------------------------------------------------------------------


def _enc_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    if len(raw) > _MAX_STR:
        raise NetError(f"string field exceeds {_MAX_STR} bytes")
    out += struct.pack(">H", len(raw))
    out += raw


def _enc_u8(out: bytearray, value: int) -> None:
    if not 0 <= value <= 0xFF:
        raise NetError(f"u8 field out of range: {value}")
    out.append(value)


def _enc_u16(out: bytearray, value: int) -> None:
    if not 0 <= value <= 0xFFFF:
        raise NetError(f"u16 field out of range: {value}")
    out += struct.pack(">H", value)


def _enc_u32(out: bytearray, value: int) -> None:
    if not 0 <= value <= 0xFFFFFFFF:
        raise NetError(f"u32 field out of range: {value}")
    out += struct.pack(">I", value)


def _enc_u64(out: bytearray, value: int) -> None:
    if not 0 <= value <= 0xFFFFFFFFFFFFFFFF:
        raise NetError(f"u64 field out of range: {value}")
    out += struct.pack(">Q", value)


def _enc_f64(out: bytearray, value: float) -> None:
    out += struct.pack(">d", value)


def _enc_entry(out: bytearray, entry: WireEntry) -> None:
    _enc_u64(out, entry.value)
    _enc_u64(out, entry.token)
    _enc_f64(out, entry.ttl)
    _enc_str(out, entry.host)
    _enc_u16(out, entry.port)


def _enc_entries(out: bytearray, entries: Tuple[WireEntry, ...]) -> None:
    if not entries:
        raise NetError("a shuffle frame must carry at least one entry")
    if len(entries) > _MAX_ENTRIES:
        raise NetError(f"too many entries: {len(entries)} > {_MAX_ENTRIES}")
    _enc_u8(out, len(entries))
    for entry in entries:
        _enc_entry(out, entry)


def _encode_body(message: Message) -> Tuple[int, bytearray]:
    out = bytearray()
    if isinstance(message, Hello):
        _enc_u32(out, message.node_id)
        _enc_str(out, message.host)
        _enc_u16(out, message.port)
        return WIRE_HELLO, out
    if isinstance(message, HelloAck):
        _enc_u32(out, message.node_id)
        if len(message.peers) > _MAX_PEERS:
            raise NetError(f"too many peers: {len(message.peers)} > {_MAX_PEERS}")
        _enc_u16(out, len(message.peers))
        for peer in message.peers:
            _enc_u32(out, peer.node_id)
            _enc_str(out, peer.host)
            _enc_u16(out, peer.port)
        return WIRE_HELLO_ACK, out
    if isinstance(message, Heartbeat):
        _enc_u32(out, message.node_id)
        _enc_u32(out, message.seq)
        _enc_u8(out, 1 if message.reply_wanted else 0)
        return WIRE_HEARTBEAT, out
    if isinstance(message, ShuffleOffer):
        if (message.reply_node is None) == (message.reply_token is None):
            raise NetError("ShuffleOffer needs exactly one reply channel")
        if message.reply_node is not None:
            _enc_u8(out, 1)
            _enc_u32(out, message.reply_node)
        else:
            _enc_u8(out, 0)
            _enc_u64(out, message.reply_token)
            _enc_str(out, message.reply_host)
            _enc_u16(out, message.reply_port)
        _enc_entries(out, message.entries)
        return WIRE_SHUFFLE_OFFER, out
    if isinstance(message, ShuffleReply):
        _enc_entries(out, message.entries)
        return WIRE_SHUFFLE_REPLY, out
    if isinstance(message, Register):
        _enc_u32(out, message.node_id)
        _enc_u64(out, message.token)
        _enc_str(out, message.host)
        _enc_u16(out, message.port)
        _enc_u8(out, 1 if message.active else 0)
        return WIRE_REGISTER, out
    if isinstance(message, Lookup):
        _enc_u64(out, message.token)
        return WIRE_LOOKUP, out
    if isinstance(message, LookupReply):
        _enc_u64(out, message.token)
        _enc_u8(out, 1 if message.found else 0)
        _enc_str(out, message.host)
        _enc_u16(out, message.port)
        return WIRE_LOOKUP_REPLY, out
    if isinstance(message, AppPayload):
        _enc_str(out, message.kind)
        _enc_u32(out, len(message.body))
        out += message.body
        return WIRE_APP_PAYLOAD, out
    if isinstance(message, Goodbye):
        _enc_u32(out, message.node_id)
        return WIRE_GOODBYE, out
    raise NetError(f"cannot encode {type(message).__name__}")


def encode_frame(message: Message) -> bytes:
    """Serialize one message into a framed datagram.

    Raises :class:`~repro.errors.NetError` on anything unencodable —
    encode failures are local bugs, unlike decode failures which are
    adversarial input and therefore returned as values.
    """
    wire_type, body = _encode_body(message)
    frame = HEADER.pack(MAGIC, WIRE_VERSION, wire_type, len(body)) + bytes(body)
    if len(frame) > MAX_FRAME:
        raise NetError(
            f"frame of {len(frame)} bytes exceeds MAX_FRAME={MAX_FRAME}"
        )
    return frame


# ----------------------------------------------------------------------
# decoding
# ----------------------------------------------------------------------


class _Truncated(ValueError):
    """Internal: a body read ran off the end of the buffer."""


class _Reader:
    """Strict cursor over a frame body."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise _Truncated(f"needed {count} bytes at offset {self._pos}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self._take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self._take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self._take(8))[0]

    def f64(self) -> float:
        return struct.unpack(">d", self._take(8))[0]

    def str_(self) -> str:
        length = self.u16()
        if length > _MAX_STR:
            raise _Truncated(f"string length {length} exceeds {_MAX_STR}")
        return self._take(length).decode("utf-8")

    def raw(self, count: int) -> bytes:
        return self._take(count)

    def done(self) -> bool:
        return self._pos == len(self._data)


def _dec_entry(reader: _Reader) -> WireEntry:
    value = reader.u64()
    token = reader.u64()
    ttl = reader.f64()
    if math.isnan(ttl):
        raise _Truncated("entry ttl is NaN")
    host = reader.str_()
    port = reader.u16()
    return WireEntry(value=value, token=token, ttl=ttl, host=host, port=port)


def _dec_entries(reader: _Reader) -> Tuple[WireEntry, ...]:
    count = reader.u8()
    if count == 0:
        raise _Truncated("shuffle frame with zero entries")
    return tuple(_dec_entry(reader) for _ in range(count))


def _decode_body(wire_type: int, reader: _Reader) -> Message:
    if wire_type == WIRE_HELLO:
        return Hello(
            node_id=reader.u32(), host=reader.str_(), port=reader.u16()
        )
    if wire_type == WIRE_HELLO_ACK:
        node_id = reader.u32()
        count = reader.u16()
        if count > _MAX_PEERS:
            raise _Truncated(f"peer count {count} exceeds {_MAX_PEERS}")
        peers = tuple(
            PeerInfo(
                node_id=reader.u32(), host=reader.str_(), port=reader.u16()
            )
            for _ in range(count)
        )
        return HelloAck(node_id=node_id, peers=peers)
    if wire_type == WIRE_HEARTBEAT:
        return Heartbeat(
            node_id=reader.u32(),
            seq=reader.u32(),
            reply_wanted=reader.u8() != 0,
        )
    if wire_type == WIRE_SHUFFLE_OFFER:
        trusted = reader.u8()
        if trusted not in (0, 1):
            raise _Truncated(f"bad reply-channel flag {trusted}")
        if trusted:
            reply_node: Optional[int] = reader.u32()
            reply_token: Optional[int] = None
            reply_host, reply_port = "", 0
        else:
            reply_node = None
            reply_token = reader.u64()
            reply_host = reader.str_()
            reply_port = reader.u16()
        return ShuffleOffer(
            entries=_dec_entries(reader),
            reply_node=reply_node,
            reply_token=reply_token,
            reply_host=reply_host,
            reply_port=reply_port,
        )
    if wire_type == WIRE_SHUFFLE_REPLY:
        return ShuffleReply(entries=_dec_entries(reader))
    if wire_type == WIRE_REGISTER:
        return Register(
            node_id=reader.u32(),
            token=reader.u64(),
            host=reader.str_(),
            port=reader.u16(),
            active=reader.u8() != 0,
        )
    if wire_type == WIRE_LOOKUP:
        return Lookup(token=reader.u64())
    if wire_type == WIRE_LOOKUP_REPLY:
        return LookupReply(
            token=reader.u64(),
            found=reader.u8() != 0,
            host=reader.str_(),
            port=reader.u16(),
        )
    if wire_type == WIRE_APP_PAYLOAD:
        kind = reader.str_()
        length = reader.u32()
        if length > MAX_FRAME:
            raise _Truncated(f"payload length {length} exceeds {MAX_FRAME}")
        return AppPayload(kind=kind, body=reader.raw(length))
    # WIRE_GOODBYE — _decode_body is only called with known types.
    return Goodbye(node_id=reader.u32())


_KNOWN_TYPES = frozenset(
    {
        WIRE_HELLO,
        WIRE_HELLO_ACK,
        WIRE_HEARTBEAT,
        WIRE_SHUFFLE_OFFER,
        WIRE_SHUFFLE_REPLY,
        WIRE_REGISTER,
        WIRE_LOOKUP,
        WIRE_LOOKUP_REPLY,
        WIRE_APP_PAYLOAD,
        WIRE_GOODBYE,
    }
)

#: Exceptions a hostile body parse may legitimately surface.  Anything
#: outside this tuple is a codec bug and *should* propagate in tests.
_DECODE_FAILURES = (
    _Truncated,
    struct.error,
    UnicodeDecodeError,
    OverflowError,
)


def decode_frame(data: bytes) -> Union[Message, CodecError]:
    """Parse one datagram; returns a message or a :class:`CodecError`.

    Never raises on any input byte string: all validation failures come
    back as values (see the class docstring for the code catalog).
    """
    if len(data) < HEADER.size:
        return CodecError(
            "truncated", f"frame of {len(data)} bytes is shorter than a header"
        )
    magic, version, wire_type, length = HEADER.unpack_from(data)
    if magic != MAGIC:
        return CodecError("bad-magic", f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        return CodecError(
            "unknown-version", f"version {version} (speak {WIRE_VERSION})"
        )
    if length > MAX_FRAME:
        return CodecError(
            "oversize", f"declared body of {length} bytes exceeds {MAX_FRAME}"
        )
    body = data[HEADER.size:]
    if len(body) != length:
        return CodecError(
            "length-mismatch",
            f"declared {length} body bytes but received {len(body)}",
        )
    if wire_type not in _KNOWN_TYPES:
        return CodecError("unknown-type", f"unknown message type {wire_type}")
    reader = _Reader(bytes(body))
    try:
        message = _decode_body(wire_type, reader)
    except _DECODE_FAILURES as error:
        return CodecError("malformed", f"type {wire_type}: {error}")
    if not reader.done():
        return CodecError(
            "malformed", f"type {wire_type}: trailing bytes after body"
        )
    return message
