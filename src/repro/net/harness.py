"""Localhost mesh harness: N live nodes in one process, measured.

This is the integration bar for the network layer: build a *real*
:class:`~repro.core.protocol.Overlay` whose link layer is a
:class:`~repro.net.linklayer.MeshLinkLayer` of N
:class:`~repro.net.endpoint.NetEndpoint` instances, run it, sample it
with the stock :class:`~repro.metrics.MetricsCollector`, and compare
the result against a plain-simulator run at identical parameters.

Two fabrics, one code path:

* :func:`run_loopback_mesh` — the deterministic fabric: a
  :class:`~repro.sim.simulator.Simulator` drives the clock and a
  seeded :class:`~repro.net.transport.LoopbackNetwork` carries frames
  with injectable faults.  Same spec, same seed -> byte-identical
  :meth:`MeshReport.digest`.
* :func:`run_udp_mesh` — the real thing: ephemeral UDP sockets on
  localhost under a :class:`~repro.net.clock.WallClock` and asyncio.

Node 0 is the seed node (it bootstraps nobody and serves the pseudonym
directory); everyone else configures node 0's address as bootstrap.
The trust graph is a ring lattice built without randomness, so the
harness's only entropy is the spec's seed.
"""

from __future__ import annotations

import asyncio
import dataclasses
import hashlib
import json
from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..config import SystemConfig
from ..core import Overlay
from ..errors import NetError
from ..metrics import MetricsCollector
from ..rng import RandomStreams
from ..sim import Simulator
from .clock import Scheduler, WallClock
from .endpoint import NetEndpoint
from .linklayer import MeshLinkLayer
from .transport import FaultPlan, LoopbackNetwork, UdpTransport

__all__ = [
    "MeshSpec",
    "MeshReport",
    "ring_trust_graph",
    "mesh_system_config",
    "run_loopback_mesh",
    "run_udp_mesh",
    "simulate_reference",
    "converged_against",
]


@dataclasses.dataclass(frozen=True)
class MeshSpec:
    """Parameters for one localhost mesh run (times in shuffling periods)."""

    num_nodes: int = 9
    seed: int = 1
    duration: float = 40.0
    #: Trusted degree of the ring lattice (each node trusts the k
    #: nearest ring neighbors; must be even and >= 2).
    lattice_degree: int = 4
    target_degree: int = 8
    cache_size: int = 40
    shuffle_length: int = 8
    #: Deliberately NOT a divisor of the default duration: with churn
    #: off, every pseudonym minted at t=0 expires at each lifetime
    #: multiple (a 1–2 period degree dip while renewals re-propagate),
    #: so measuring exactly on a multiple reads the trough.
    pseudonym_lifetime: float = 15.0
    sample_interval: float = 2.0
    path_length_every: int = 2
    heartbeat_interval: float = 1.0
    suspect_after: float = 3.0
    dead_after: float = 9.0
    #: Wall seconds per period (UDP runs only).
    seconds_per_period: float = 0.05
    #: Loopback fault injection (loopback runs only; None = clean net).
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 3:
            raise NetError("a mesh needs at least 3 nodes")
        if self.lattice_degree < 2 or self.lattice_degree % 2:
            raise NetError("lattice_degree must be even and >= 2")
        if self.lattice_degree >= self.num_nodes:
            raise NetError("lattice_degree must be below num_nodes")
        if self.duration <= 0:
            raise NetError("duration must be positive")


@dataclasses.dataclass(frozen=True)
class MeshReport:
    """What a mesh run produced (see :meth:`digest` for reproducibility)."""

    transport: str
    num_nodes: int
    seed: int
    duration: float
    #: Final-sample overlay health.
    mean_degree: float
    fraction_disconnected: float
    normalized_path_length: Optional[float]
    #: All nodes bootstrapped (seeds count as bootstrapped).
    all_bootstrapped: bool
    #: Total shuffle offers decoded across the mesh (proof the overlay
    #: actually exchanged state over the wire).
    shuffle_offers: int
    #: Aggregated endpoint counters (summed over nodes).
    counters: Dict[str, int]
    #: Sampled disconnected-fraction series as (time, value) pairs.
    disconnected_series: Tuple[Tuple[float, float], ...]
    #: Per-node event logs (bootstrap, suspicion, shutdown...).
    node_logs: Tuple[Tuple[str, ...], ...]

    def digest(self) -> str:
        """Stable hash of everything deterministic about the run."""
        payload = {
            "transport": self.transport,
            "num_nodes": self.num_nodes,
            "seed": self.seed,
            "duration": self.duration,
            "mean_degree": round(self.mean_degree, 9),
            "fraction_disconnected": round(self.fraction_disconnected, 9),
            "normalized_path_length": (
                None
                if self.normalized_path_length is None
                else round(self.normalized_path_length, 9)
            ),
            "all_bootstrapped": self.all_bootstrapped,
            "shuffle_offers": self.shuffle_offers,
            "counters": dict(sorted(self.counters.items())),
            "disconnected_series": [
                (round(t, 9), round(v, 9)) for t, v in self.disconnected_series
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()


def ring_trust_graph(num_nodes: int, lattice_degree: int) -> nx.Graph:
    """A ring lattice: node i trusts its k nearest ring neighbors.

    Built arithmetically — no RNG — so the trust topology is a pure
    function of the spec.
    """
    graph = nx.Graph()
    graph.add_nodes_from(range(num_nodes))
    for node in range(num_nodes):
        for step in range(1, lattice_degree // 2 + 1):
            graph.add_edge(node, (node + step) % num_nodes)
    return graph


def mesh_system_config(spec: MeshSpec) -> SystemConfig:
    """The :class:`SystemConfig` equivalent of a mesh spec.

    ``pseudonym_lifetime`` is ``lifetime_ratio * mean_offline_time``;
    the mesh runs churn-free, so we express the spec's lifetime through
    the ratio against a fixed nominal offline time.
    """
    return SystemConfig(
        num_nodes=spec.num_nodes,
        mean_offline_time=10.0,
        lifetime_ratio=spec.pseudonym_lifetime / 10.0,
        cache_size=spec.cache_size,
        shuffle_length=spec.shuffle_length,
        target_degree=spec.target_degree,
        min_pseudonym_links=2,
        seed=spec.seed,
    )


def _final(series) -> Optional[float]:
    values = series.values
    return float(values[-1]) if len(values) else None


def _report(
    transport: str,
    spec: MeshSpec,
    overlay: Overlay,
    collector: MetricsCollector,
    endpoints: List[NetEndpoint],
) -> MeshReport:
    degrees = overlay.online_out_degrees()
    mean_degree = float(degrees.mean()) if degrees.size else 0.0
    counters: Dict[str, int] = {}
    for endpoint in endpoints:
        for key, value in endpoint.counters.items():
            counters[key] = counters.get(key, 0) + value
    disconnected = _final(collector.disconnected)
    return MeshReport(
        transport=transport,
        num_nodes=spec.num_nodes,
        seed=spec.seed,
        duration=spec.duration,
        mean_degree=mean_degree,
        fraction_disconnected=(
            disconnected if disconnected is not None else 1.0
        ),
        normalized_path_length=_final(collector.path_length),
        all_bootstrapped=all(e.bootstrapped for e in endpoints),
        shuffle_offers=sum(
            e.counters["shuffle_offers_in"] for e in endpoints
        ),
        counters=counters,
        disconnected_series=tuple(
            (float(t), float(v))
            for t, v in zip(
                collector.disconnected.times.tolist(),
                collector.disconnected.values.tolist(),
            )
        ),
        node_logs=tuple(tuple(e.log) for e in endpoints),
    )


def _build_mesh(
    spec: MeshSpec,
    scheduler: Scheduler,
    streams: RandomStreams,
    transports: List,
    addresses: List[Tuple[str, int]],
) -> Tuple[Overlay, MetricsCollector, List[NetEndpoint]]:
    """Wire endpoints + link layer + overlay + collector (fabric-agnostic)."""
    seed_address = addresses[0]
    mesh = MeshLinkLayer()
    endpoints: List[NetEndpoint] = []
    for node_id in range(spec.num_nodes):
        endpoint = NetEndpoint(
            node_id=node_id,
            clock=scheduler,
            transport=transports[node_id],
            rng=streams.substream("net", "endpoint", node_id),
            bootstrap=() if node_id == 0 else (seed_address,),
            heartbeat_interval=spec.heartbeat_interval,
            suspect_after=spec.suspect_after,
            dead_after=spec.dead_after,
        )
        mesh.add(endpoint)
        endpoints.append(endpoint)
    overlay = Overlay(
        ring_trust_graph(spec.num_nodes, spec.lattice_degree),
        mesh_system_config(spec),
        scheduler,
        mesh,
        streams,
    )
    collector = MetricsCollector(
        overlay,
        interval=spec.sample_interval,
        path_length_every=spec.path_length_every,
        rng=overlay.substream("mesh-collector"),
    )
    for endpoint in endpoints:
        endpoint.start()
    return overlay, collector, endpoints


def run_loopback_mesh(spec: MeshSpec) -> MeshReport:
    """Run the mesh on the deterministic in-process fabric."""
    sim = Simulator()
    scheduler = Scheduler(sim)
    streams = RandomStreams(spec.seed)
    network = LoopbackNetwork(
        scheduler,
        streams.substream("net", "fabric"),
        faults=spec.faults,
    )
    transports = [network.transport() for _ in range(spec.num_nodes)]
    addresses = [t.local_address for t in transports]
    overlay, collector, endpoints = _build_mesh(
        spec, scheduler, streams, transports, addresses
    )
    overlay.start()
    collector.start()
    scheduler.run_until(spec.duration)
    report = _report("loopback", spec, overlay, collector, endpoints)
    # Stop the protocol first (no more shuffle ticks into closing
    # sockets), then say goodbye and drain the in-flight frames.
    for node in overlay.nodes:
        node.go_offline()
    for endpoint in endpoints:
        endpoint.shutdown()
    scheduler.run_until(spec.duration + 1.0)
    # Metrics were frozen pre-shutdown; the logs should still show it.
    return dataclasses.replace(
        report, node_logs=tuple(tuple(e.log) for e in endpoints)
    )


async def _run_udp_mesh(spec: MeshSpec) -> MeshReport:
    loop = asyncio.get_running_loop()
    clock = WallClock(seconds_per_period=spec.seconds_per_period, loop=loop)
    scheduler = Scheduler(clock)
    streams = RandomStreams(spec.seed)
    transports = [UdpTransport(port=0) for _ in range(spec.num_nodes)]
    for transport in transports:
        await transport.start()
    addresses = [t.local_address for t in transports]
    overlay, collector, endpoints = _build_mesh(
        spec, scheduler, streams, transports, addresses
    )
    overlay.start()
    collector.start()
    await scheduler.run_for(spec.duration)
    report = _report("udp", spec, overlay, collector, endpoints)
    for node in overlay.nodes:
        node.go_offline()
    for endpoint in endpoints:
        endpoint.shutdown()
    # One beat of real time for the goodbyes to land, then the sockets
    # are gone (endpoint.shutdown closed them).
    await asyncio.sleep(0.05)
    return dataclasses.replace(
        report, node_logs=tuple(tuple(e.log) for e in endpoints)
    )


def run_udp_mesh(spec: MeshSpec) -> MeshReport:
    """Run the mesh over real localhost UDP sockets (blocking wrapper)."""
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        return asyncio.run(_run_udp_mesh(spec))
    raise RuntimeError(
        "run_udp_mesh cannot run inside a live event loop; "
        "await _run_udp_mesh(spec) instead"
    )


def simulate_reference(spec: MeshSpec) -> Tuple[float, float]:
    """(mean degree, disconnected fraction) from a pure-simulator run.

    Same trust graph, same :class:`SystemConfig`, no churn, ideal link
    layer — the envelope the live mesh must converge into.
    """
    overlay = Overlay.build(
        ring_trust_graph(spec.num_nodes, spec.lattice_degree),
        mesh_system_config(spec),
        with_churn=False,
    )
    collector = MetricsCollector(
        overlay,
        interval=spec.sample_interval,
        path_length_every=spec.path_length_every,
        rng=overlay.substream("mesh-collector"),
    )
    overlay.start()
    collector.start()
    overlay.run_until(spec.duration)
    degrees = overlay.online_out_degrees()
    mean_degree = float(degrees.mean()) if degrees.size else 0.0
    disconnected = _final(collector.disconnected)
    return mean_degree, disconnected if disconnected is not None else 1.0


def converged_against(
    report: MeshReport,
    reference: Tuple[float, float],
    degree_slack: float = 0.35,
    disconnected_slack: float = 0.10,
) -> Tuple[bool, str]:
    """Judge a live run against the simulator envelope.

    The live mesh must reach the simulator's mean degree within a
    relative ``degree_slack`` (plus one absolute link of grace for tiny
    meshes) and match its connectivity within ``disconnected_slack``.
    Returns ``(ok, human summary)``.
    """
    ref_degree, ref_disconnected = reference
    degree_gap = abs(report.mean_degree - ref_degree)
    degree_budget = max(1.0, degree_slack * ref_degree)
    disconnected_gap = abs(report.fraction_disconnected - ref_disconnected)
    checks = [
        (
            report.all_bootstrapped,
            "bootstrap: all nodes acked"
            if report.all_bootstrapped
            else "bootstrap: some nodes never acked",
        ),
        (
            report.shuffle_offers > 0,
            f"shuffles: {report.shuffle_offers} offers crossed the wire",
        ),
        (
            degree_gap <= degree_budget,
            f"degree: mesh {report.mean_degree:.2f} vs sim {ref_degree:.2f} "
            f"(gap {degree_gap:.2f}, budget {degree_budget:.2f})",
        ),
        (
            disconnected_gap <= disconnected_slack,
            f"connectivity: mesh {report.fraction_disconnected:.3f} vs sim "
            f"{ref_disconnected:.3f}",
        ),
    ]
    ok = all(passed for passed, _ in checks)
    summary = "; ".join(
        ("PASS " if passed else "FAIL ") + text for passed, text in checks
    )
    return ok, summary
