"""Command-line front end: regenerate any figure of the paper.

Usage::

    repro fig3 --scale quick --seed 1
    repro fig8 --plot               # ASCII plot of the time series
    repro all  --scale quick
    repro fig3 --scale quick --workers 4   # fan points out across processes
    repro lint src --format json    # determinism/hygiene linter
    repro bench --quick --json BENCH_micro.json
    repro sweep --axis availability=0.25,0.5 --workers 4 --resume
    repro mesh --nodes 20 --duration 40     # live localhost mesh
    repro node --port 9000 --node-id 0      # one live UDP node
    python -m repro.cli fig9

Scales: ``smoke`` (tests), ``quick`` (default), ``paper`` (Table I).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List, Optional

from .experiments import (
    PAPER,
    QUICK,
    SMOKE,
    ExperimentScale,
    figure3,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    lifetime_label,
)
from .viz import bar_chart, line_plot

__all__ = ["main"]

_SCALES: Dict[str, ExperimentScale] = {
    "paper": PAPER,
    "quick": QUICK,
    "smoke": SMOKE,
}


def _run_fig3(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    sweeps = figure3(scale, seed=seed, workers=workers)
    for f, sweep in sweeps.items():
        print(sweep.format_table("disconnected"))
        if plot:
            alphas = [point.alpha for point in sweep.points]
            print()
            print(
                line_plot(
                    {
                        "trust": (alphas, [p.trust_disconnected for p in sweep.points]),
                        "overlay": (alphas, [p.overlay_disconnected for p in sweep.points]),
                        "random": (alphas, [p.random_disconnected for p in sweep.points]),
                    },
                    title=f"Figure 3 (f={f:g}): disconnected fraction vs availability",
                    y_label="disconnected fraction",
                )
            )
        print()


def _run_fig4(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    sweeps = figure3(scale, seed=seed, workers=workers)
    for f, sweep in sweeps.items():
        print(sweep.format_table("path"))
        if plot:
            alphas = [point.alpha for point in sweep.points]
            print()
            print(
                line_plot(
                    {
                        "trust": (alphas, [p.trust_path_length for p in sweep.points]),
                        "overlay": (alphas, [p.overlay_path_length for p in sweep.points]),
                        "random": (alphas, [p.random_path_length for p in sweep.points]),
                    },
                    title=f"Figure 4 (f={f:g}): normalized path length vs availability",
                    y_label="normalized path length",
                )
            )
        print()


def _run_fig5(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    for f, result in figure5(scale, seed=seed, workers=workers).items():
        print(result.format_table())
        trust_mean, overlay_mean, random_mean = result.mean_degrees()
        print(
            f"mean degrees: trust {trust_mean:.1f}, overlay {overlay_mean:.1f},"
            f" random {random_mean:.1f}"
        )
        if plot:
            bucketed = {}
            for degree, count in sorted(result.overlay_histogram.items()):
                bucketed[f"deg {10 * (degree // 10)}-{10 * (degree // 10) + 9}"] = (
                    bucketed.get(
                        f"deg {10 * (degree // 10)}-{10 * (degree // 10) + 9}", 0
                    )
                    + count
                )
            print()
            print(bar_chart(bucketed, title=f"overlay degree histogram (f={f:g})"))
        print()


def _run_fig6(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    for f, result in figure6(scale, seed=seed, workers=workers).items():
        print(result.format_table())
        print()


def _run_fig7(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    result = figure7(scale, seed=seed, workers=workers)
    print(result.format_table())
    if plot:
        series = {
            f"r={lifetime_label(ratio)}": (result.alphas, curve)
            for ratio, curve in result.overlay_curves.items()
        }
        series["trust"] = (result.alphas, result.trust_curve)
        print()
        print(
            line_plot(
                series,
                title="Figure 7: disconnected fraction vs availability",
                y_label="disconnected fraction",
            )
        )


def _run_fig8(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    result = figure8(scale, seed=seed, workers=workers)
    print(result.format_table())
    if plot:
        series = {
            f"overlay r={lifetime_label(ratio)}": (
                list(s.times),
                list(s.values),
            )
            for ratio, s in result.overlay_series.items()
        }
        series["trust"] = (
            list(result.trust_series.times),
            list(result.trust_series.values),
        )
        print()
        print(
            line_plot(
                series,
                title="Figure 8: connectivity over time (alpha=0.25)",
                y_label="disconnected fraction",
            )
        )


def _run_fig9(scale: ExperimentScale, seed: int, plot: bool, workers: int) -> None:
    result = figure9(scale, seed=seed, workers=workers)
    print(result.format_table())
    if plot:
        series = {
            f"r={lifetime_label(ratio)}": (list(s.times), list(s.values))
            for ratio, s in result.series.items()
        }
        print()
        print(
            line_plot(
                series,
                title="Figure 9: link replacements per node per period",
                y_label="replacements/node/sp",
            )
        )


_FIGURES: Dict[str, Callable[[ExperimentScale, int, bool, int], None]] = {
    "fig3": _run_fig3,
    "fig4": _run_fig4,
    "fig5": _run_fig5,
    "fig6": _run_fig6,
    "fig7": _run_fig7,
    "fig8": _run_fig8,
    "fig9": _run_fig9,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point.  Returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        # The linter has its own argument grammar (paths, --format,
        # --rules); dispatch before the figure parser sees it.
        from .lint.cli import main as lint_main

        return lint_main(list(argv[1:]))
    if argv and argv[0] == "bench":
        # Likewise for the microbenchmark harness (--quick, --json,
        # --compare); see docs/benchmarking.md.
        from .bench.cli import main as bench_main

        return bench_main(list(argv[1:]))
    if argv and argv[0] == "sweep":
        # And for the parallel sweep runner (--axis, --workers,
        # --resume); see docs/parallel.md.
        from .parallel.cli import main as sweep_main

        return sweep_main(list(argv[1:]))
    if argv and argv[0] in ("node", "mesh"):
        # And for the live-network layer (repro node / repro mesh);
        # see docs/networking.md.
        from .net.cli import main as net_main

        return net_main(list(argv))

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce figures from 'Robust overlays for privacy-"
        "preserving data dissemination over a social graph' (ICDCS 2012).",
        epilog="A 'repro lint [paths]' subcommand runs the determinism/"
        "hygiene linter (see 'repro lint --help'); 'repro bench' runs "
        "the seeded microbenchmark suite (see 'repro bench --help').",
    )
    parser.add_argument(
        "figure",
        choices=sorted(_FIGURES) + ["all", "report", "audit"],
        help="which figure to regenerate ('report' assembles saved "
        "benchmark results into one markdown document; 'audit' runs "
        "the Section III-E privacy-attack battery)",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="quick",
        help="experiment scale (default: quick; 'paper' is Table I)",
    )
    parser.add_argument("--seed", type=int, default=1, help="root random seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes for the figure's independent points "
        "(results are identical for any count)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render ASCII plots of the series in addition to tables",
    )
    parser.add_argument(
        "--results-dir",
        default="benchmarks/results",
        help="where benchmark tables were saved (for 'report')",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the report here instead of stdout (for 'report')",
    )
    args = parser.parse_args(argv)

    if args.figure == "audit":
        from .attacks import run_privacy_audit
        from .experiments import make_config, make_trust_graph

        scale = _SCALES[args.scale]
        trust_graph = make_trust_graph(scale, f=0.5, seed=args.seed)
        config = make_config(scale, alpha=0.6, f=0.5, seed=args.seed)
        report = run_privacy_audit(
            trust_graph,
            config,
            warmup=min(60.0, scale.stabilization_horizon),
            seed=args.seed,
        )
        print(report.format_report())
        return 0

    if args.figure == "report":
        from .experiments import build_report

        report = build_report(
            args.results_dir,
            title="Reproduction report — Robust overlays (ICDCS 2012)",
        )
        if args.output:
            with open(args.output, "w", encoding="utf-8") as handle:
                handle.write(report + "\n")
            print(f"report written to {args.output}")
        else:
            print(report)
        return 0

    scale = _SCALES[args.scale]
    targets = sorted(_FIGURES) if args.figure == "all" else [args.figure]
    for target in targets:
        # Progress display is the one allowlisted host-clock use (DET003):
        # it reports to the human at the terminal, never to results.
        started = time.perf_counter()
        print(f"== {target} (scale={scale.name}, seed={args.seed}) ==")
        _FIGURES[target](scale, args.seed, args.plot, args.workers)
        elapsed = time.perf_counter() - started
        print(f"[{target} done in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
