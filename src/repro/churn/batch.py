"""Vectorized whole-population churn for the round-based batch engine.

The event-driven :class:`~repro.churn.model.ChurnProcess` schedules one
simulator event per session transition — perfect for the paper-scale
runs, hopeless at 10⁶ nodes.  :class:`BatchChurnModel` discretizes the
same alternating-renewal model (exponential online/offline durations,
Section IV-B) to one step per shuffle round: every online node leaves
with probability ``1 - exp(-1/T_on)`` and every offline node rejoins
with probability ``1 - exp(-1/T_off)``, evaluated for the whole
population with one uniform draw per node per round.  The stationary
availability ``T_on / (T_on + T_off)`` and the mean session lengths
match the continuous model; only sub-round timing is coarsened.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ChurnError

__all__ = ["BatchChurnModel", "ShardedChurn"]


class BatchChurnModel:
    """Discretized exponential churn over a whole node population.

    Parameters
    ----------
    num_nodes:
        Population size.
    availability:
        Stationary online fraction ``a`` in (0, 1].
    mean_offline_time:
        Mean offline duration ``T_off`` in rounds; the mean online
        duration follows as ``a * T_off / (1 - a)`` (the same relation
        :class:`~repro.config.SystemConfig` uses).
    rng:
        The model's private random stream; one ``random(num_nodes)``
        draw at construction (stationary seating) and one per
        :meth:`step`.
    start_all_online:
        Seat every node online instead of a stationary draw.
    """

    __slots__ = ("num_nodes", "p_leave", "p_join", "online", "_rng")

    def __init__(
        self,
        num_nodes: int,
        availability: float,
        mean_offline_time: float,
        rng: np.random.Generator,
        start_all_online: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ChurnError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 0.0 < availability <= 1.0:
            raise ChurnError(
                f"availability must be in (0, 1], got {availability}"
            )
        if mean_offline_time <= 0:
            raise ChurnError(
                f"mean_offline_time must be positive, got {mean_offline_time}"
            )
        self.num_nodes = num_nodes
        if availability >= 1.0:
            self.p_leave = 0.0
            self.p_join = 1.0
        else:
            mean_online = availability * mean_offline_time / (1.0 - availability)
            self.p_leave = 1.0 - math.exp(-1.0 / mean_online)
            self.p_join = 1.0 - math.exp(-1.0 / mean_offline_time)
        self._rng = rng
        if start_all_online:
            self.online = np.ones(num_nodes, dtype=bool)
        else:
            self.online = rng.random(num_nodes) < availability

    def step(self) -> Tuple[np.ndarray, np.ndarray]:
        """Advance one round; returns ``(joined_rows, left_rows)``.

        Each node draws one uniform and flips according to its state's
        per-round hazard, so the whole transition is two boolean masks.
        """
        draws = self._rng.random(self.num_nodes)
        online = self.online
        left = online & (draws < self.p_leave)
        joined = ~online & (draws < self.p_join)
        online ^= left | joined
        return np.flatnonzero(joined), np.flatnonzero(left)

    def online_rows(self) -> np.ndarray:
        """Ids of currently online nodes, ascending."""
        return np.flatnonzero(self.online)

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return int(self.online.sum())

    def online_fraction(self) -> float:
        """Currently online fraction of the population."""
        return self.online_count() / self.num_nodes


class ShardedChurn:
    """Shard-decomposed churn: independent :class:`BatchChurnModel` per
    contiguous node range, presented as one population-wide mask.

    Each shard draws from its own private stream, so the global online
    trajectory is a pure function of ``(seed, shard grid)`` — it does
    not depend on how many processes host the shards.  Workers replicate
    the full grid (every shard's model is cheap: one uniform draw per
    node per round), which gives every process the whole population's
    online mask locally for partner-reachability checks.

    Parameters
    ----------
    bounds:
        Shard boundaries, ``len == num_shards + 1``, ``bounds[0] == 0``;
        shard ``s`` owns global node ids ``[bounds[s], bounds[s+1])``.
        Empty shards are allowed.
    rngs:
        One private generator per shard, consumed in shard order.
    """

    __slots__ = ("num_nodes", "bounds", "models", "online")

    def __init__(
        self,
        bounds: Sequence[int],
        availability: float,
        mean_offline_time: float,
        rngs: Sequence[np.random.Generator],
        start_all_online: bool = False,
    ) -> None:
        bounds_arr = np.asarray(bounds, dtype=np.int64)
        if bounds_arr.ndim != 1 or len(bounds_arr) < 2 or bounds_arr[0] != 0:
            raise ChurnError(f"malformed shard bounds: {bounds_arr!r}")
        if np.any(np.diff(bounds_arr) < 0):
            raise ChurnError(f"shard bounds must be nondecreasing: {bounds_arr!r}")
        if len(rngs) != len(bounds_arr) - 1:
            raise ChurnError(
                f"need one rng per shard: {len(rngs)} rngs for "
                f"{len(bounds_arr) - 1} shards"
            )
        self.bounds = bounds_arr
        self.num_nodes = int(bounds_arr[-1])
        self.models: List[Optional[BatchChurnModel]] = []
        self.online = np.zeros(self.num_nodes, dtype=bool)
        for shard, rng in enumerate(rngs):
            lo = int(bounds_arr[shard])
            hi = int(bounds_arr[shard + 1])
            if hi == lo:
                # Empty shard: no model, no draws — serial and sharded
                # drivers must both skip it to stay in lockstep.
                self.models.append(None)
                continue
            model = BatchChurnModel(
                hi - lo, availability, mean_offline_time, rng, start_all_online
            )
            self.models.append(model)
            self.online[lo:hi] = model.online

    def step(self) -> Tuple[np.ndarray, np.ndarray]:
        """Advance every shard one round, in shard order; returns global
        ``(joined_rows, left_rows)``."""
        joined_parts: List[np.ndarray] = []
        left_parts: List[np.ndarray] = []
        for shard, model in enumerate(self.models):
            if model is None:
                continue
            lo = int(self.bounds[shard])
            hi = int(self.bounds[shard + 1])
            joined, left = model.step()
            self.online[lo:hi] = model.online
            joined_parts.append(joined + lo)
            left_parts.append(left + lo)
        if not joined_parts:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        return np.concatenate(joined_parts), np.concatenate(left_parts)

    def online_rows(self) -> np.ndarray:
        """Ids of currently online nodes, ascending."""
        return np.flatnonzero(self.online)

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return int(self.online.sum())

    def online_fraction(self) -> float:
        """Currently online fraction of the population."""
        if self.num_nodes == 0:
            return 0.0
        return self.online_count() / self.num_nodes
