"""Vectorized whole-population churn for the round-based batch engine.

The event-driven :class:`~repro.churn.model.ChurnProcess` schedules one
simulator event per session transition — perfect for the paper-scale
runs, hopeless at 10⁶ nodes.  :class:`BatchChurnModel` discretizes the
same alternating-renewal model (exponential online/offline durations,
Section IV-B) to one step per shuffle round: every online node leaves
with probability ``1 - exp(-1/T_on)`` and every offline node rejoins
with probability ``1 - exp(-1/T_off)``, evaluated for the whole
population with one uniform draw per node per round.  The stationary
availability ``T_on / (T_on + T_off)`` and the mean session lengths
match the continuous model; only sub-round timing is coarsened.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import ChurnError

__all__ = ["BatchChurnModel"]


class BatchChurnModel:
    """Discretized exponential churn over a whole node population.

    Parameters
    ----------
    num_nodes:
        Population size.
    availability:
        Stationary online fraction ``a`` in (0, 1].
    mean_offline_time:
        Mean offline duration ``T_off`` in rounds; the mean online
        duration follows as ``a * T_off / (1 - a)`` (the same relation
        :class:`~repro.config.SystemConfig` uses).
    rng:
        The model's private random stream; one ``random(num_nodes)``
        draw at construction (stationary seating) and one per
        :meth:`step`.
    start_all_online:
        Seat every node online instead of a stationary draw.
    """

    __slots__ = ("num_nodes", "p_leave", "p_join", "online", "_rng")

    def __init__(
        self,
        num_nodes: int,
        availability: float,
        mean_offline_time: float,
        rng: np.random.Generator,
        start_all_online: bool = False,
    ) -> None:
        if num_nodes < 1:
            raise ChurnError(f"num_nodes must be >= 1, got {num_nodes}")
        if not 0.0 < availability <= 1.0:
            raise ChurnError(
                f"availability must be in (0, 1], got {availability}"
            )
        if mean_offline_time <= 0:
            raise ChurnError(
                f"mean_offline_time must be positive, got {mean_offline_time}"
            )
        self.num_nodes = num_nodes
        if availability >= 1.0:
            self.p_leave = 0.0
            self.p_join = 1.0
        else:
            mean_online = availability * mean_offline_time / (1.0 - availability)
            self.p_leave = 1.0 - math.exp(-1.0 / mean_online)
            self.p_join = 1.0 - math.exp(-1.0 / mean_offline_time)
        self._rng = rng
        if start_all_online:
            self.online = np.ones(num_nodes, dtype=bool)
        else:
            self.online = rng.random(num_nodes) < availability

    def step(self) -> Tuple[np.ndarray, np.ndarray]:
        """Advance one round; returns ``(joined_rows, left_rows)``.

        Each node draws one uniform and flips according to its state's
        per-round hazard, so the whole transition is two boolean masks.
        """
        draws = self._rng.random(self.num_nodes)
        online = self.online
        left = online & (draws < self.p_leave)
        joined = ~online & (draws < self.p_join)
        online ^= left | joined
        return np.flatnonzero(joined), np.flatnonzero(left)

    def online_rows(self) -> np.ndarray:
        """Ids of currently online nodes, ascending."""
        return np.flatnonzero(self.online)

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return int(self.online.sum())

    def online_fraction(self) -> float:
        """Currently online fraction of the population."""
        return self.online_count() / self.num_nodes
