"""Churn substrate: the Yao et al. alternating-renewal model the paper
uses (Section IV-B), duration distributions, availability math, and
pre-generated session traces.
"""

from .availability import (
    availability,
    mean_online_for,
    online_subgraph,
    stationary_online_mask,
)
from .batch import BatchChurnModel
from .distributions import (
    DurationDistribution,
    Exponential,
    Pareto,
    Weibull,
    distribution_from_name,
)
from .model import ChurnProcess, NodeChurnSpec, homogeneous_specs
from .session import SessionTrace, Transition, generate_trace, replay_trace

__all__ = [
    "DurationDistribution",
    "Exponential",
    "Pareto",
    "Weibull",
    "distribution_from_name",
    "BatchChurnModel",
    "ChurnProcess",
    "NodeChurnSpec",
    "homogeneous_specs",
    "availability",
    "mean_online_for",
    "stationary_online_mask",
    "online_subgraph",
    "SessionTrace",
    "Transition",
    "generate_trace",
    "replay_trace",
]
