"""The Yao et al. alternating-renewal churn model (Section IV-B).

Each node independently alternates between *online* and *offline*
states; the time spent in each state is drawn from a per-node duration
distribution.  The paper gives every node the same exponential
parameters ``Ton`` (mean online time) and ``Toff`` (mean offline time),
yielding average availability ``alpha = Ton / (Ton + Toff)``; we also
support heterogeneous per-node parameters, which Yao et al. emphasize.

:class:`ChurnProcess` drives the state machine on a
:class:`~repro.sim.simulator.Simulator`, invoking a listener on every
transition.  Initial states are drawn from the stationary distribution
(each node online with probability its availability) so experiments
start in steady state rather than with a synchronized flash crowd.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..errors import ChurnError
from ..sim import Simulator
from .distributions import DurationDistribution, Exponential

__all__ = ["NodeChurnSpec", "ChurnProcess", "homogeneous_specs"]

TransitionListener = Callable[[int, bool], None]


class NodeChurnSpec:
    """Per-node churn parameters: online and offline duration sources."""

    __slots__ = ("online", "offline")

    def __init__(
        self, online: DurationDistribution, offline: DurationDistribution
    ) -> None:
        self.online = online
        self.offline = offline

    @property
    def availability(self) -> float:
        """Long-run fraction of time the node is online."""
        return self.online.mean / (self.online.mean + self.offline.mean)

    def __repr__(self) -> str:
        return f"NodeChurnSpec(online={self.online!r}, offline={self.offline!r})"


def homogeneous_specs(
    num_nodes: int, availability: float, mean_offline_time: float
) -> List[NodeChurnSpec]:
    """The paper's setting: identical exponential churn for every node.

    ``Ton`` is derived from the requested availability and ``Toff``.
    """
    if not 0.0 < availability < 1.0:
        raise ChurnError("availability must be strictly between 0 and 1")
    if mean_offline_time <= 0:
        raise ChurnError("mean_offline_time must be positive")
    mean_online = availability * mean_offline_time / (1.0 - availability)
    return [
        NodeChurnSpec(Exponential(mean_online), Exponential(mean_offline_time))
        for _ in range(num_nodes)
    ]


class ChurnProcess:
    """Drives per-node online/offline transitions on a simulator.

    Parameters
    ----------
    sim:
        The simulator providing the clock and event queue.
    specs:
        One :class:`NodeChurnSpec` per node; node ids are the indices.
    rng:
        Randomness for state durations and the initial state draw.
    listener:
        Called as ``listener(node_id, online)`` on every transition
        *after* the internal state is updated.  The initial state draw
        does not invoke the listener; read :meth:`is_online` instead.
    start_all_online:
        If true, every node starts online (useful for convergence
        experiments that begin from a full system); otherwise initial
        states follow the stationary distribution.
    """

    def __init__(
        self,
        sim: Simulator,
        specs: Sequence[NodeChurnSpec],
        rng: np.random.Generator,
        listener: Optional[TransitionListener] = None,
        start_all_online: bool = False,
    ) -> None:
        if not specs:
            raise ChurnError("specs must not be empty")
        self._sim = sim
        self._specs = list(specs)
        self._rng = rng
        self._listener = listener
        self._online: List[bool] = [False] * len(specs)
        self._transitions = 0
        self._started = False
        self._start_all_online = start_all_online

    @property
    def num_nodes(self) -> int:
        """Number of nodes driven by this process."""
        return len(self._specs)

    @property
    def transitions(self) -> int:
        """Total number of state changes so far."""
        return self._transitions

    def is_online(self, node_id: int) -> bool:
        """Current state of ``node_id``."""
        return bool(self._online[node_id])

    def online_nodes(self) -> List[int]:
        """Ids of all currently online nodes."""
        return [node for node, online in enumerate(self._online) if online]

    def online_count(self) -> int:
        """Number of currently online nodes."""
        return sum(self._online)

    def set_listener(self, listener: TransitionListener) -> None:
        """Install the transition listener (may be set after start)."""
        self._listener = listener

    def start(self) -> None:
        """Draw initial states and schedule the first transitions.

        Exponential residual times are memoryless, so drawing a fresh
        full duration for the current state is exactly the stationary
        behaviour; for heavy-tailed distributions it is an approximation
        that converges after a warm-up period.
        """
        if self._started:
            raise ChurnError("churn process already started")
        self._started = True
        for node_id, spec in enumerate(self._specs):
            if self._start_all_online:
                online = True
            else:
                online = bool(self._rng.random() < spec.availability)
            self._online[node_id] = online
            distribution = spec.online if online else spec.offline
            delay = distribution.sample(self._rng)
            self._sim.post_after(delay, self._transition, node_id)

    def add_node(self, spec: NodeChurnSpec, start_online: bool = True) -> int:
        """Grow the population by one node; returns its id.

        Supports runtime trust-graph growth: the new node's first state
        is ``start_online`` (a joining user is typically online), and
        its alternation is scheduled immediately when the process has
        started.
        """
        node_id = len(self._specs)
        self._specs.append(spec)
        self._online.append(start_online)
        if self._started:
            distribution = spec.online if start_online else spec.offline
            delay = distribution.sample(self._rng)
            self._sim.post_after(delay, self._transition, node_id)
        return node_id

    def _transition(self, node_id: int) -> None:
        new_state = not self._online[node_id]
        self._online[node_id] = new_state
        self._transitions += 1
        spec = self._specs[node_id]
        distribution = spec.online if new_state else spec.offline
        delay = distribution.sample(self._rng)
        self._sim.post_after(delay, self._transition, node_id)
        if self._listener is not None:
            self._listener(node_id, new_state)
