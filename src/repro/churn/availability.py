"""Availability math and static online sampling.

The paper defines a node's average availability as
``alpha = Ton / (Ton + Toff)``.  Some of its measurements (the trust
graph and random-graph baselines in Figures 3-5) do not need a running
protocol at all: the static graph is simply restricted to a random set
of online nodes drawn with probability ``alpha``.  This module provides
those helpers.
"""

from __future__ import annotations

from typing import List

import networkx as nx
import numpy as np

from ..errors import ChurnError

__all__ = [
    "availability",
    "mean_online_for",
    "stationary_online_mask",
    "online_subgraph",
]


def availability(mean_online: float, mean_offline: float) -> float:
    """``alpha = Ton / (Ton + Toff)``."""
    if mean_online <= 0 or mean_offline <= 0:
        raise ChurnError("mean durations must be positive")
    return mean_online / (mean_online + mean_offline)


def mean_online_for(alpha: float, mean_offline: float) -> float:
    """Solve ``alpha = Ton / (Ton + Toff)`` for ``Ton``."""
    if not 0.0 < alpha < 1.0:
        raise ChurnError("alpha must be strictly between 0 and 1")
    if mean_offline <= 0:
        raise ChurnError("mean_offline must be positive")
    return alpha * mean_offline / (1.0 - alpha)


def stationary_online_mask(
    num_nodes: int, alpha: float, rng: np.random.Generator
) -> np.ndarray:
    """Boolean mask of online nodes under stationary availability ``alpha``."""
    if not 0.0 < alpha <= 1.0:
        raise ChurnError("alpha must be in (0, 1]")
    return rng.random(num_nodes) < alpha


def online_subgraph(
    graph: nx.Graph, online_mask: np.ndarray
) -> nx.Graph:
    """The subgraph induced by the nodes marked online in ``online_mask``.

    Node labels must be ``0..n-1`` (the library convention).
    """
    if len(online_mask) != graph.number_of_nodes():
        raise ChurnError(
            f"mask length {len(online_mask)} does not match graph size "
            f"{graph.number_of_nodes()}"
        )
    online_nodes: List[int] = [int(node) for node in np.flatnonzero(online_mask)]
    return graph.subgraph(online_nodes).copy()
