"""Session traces: pre-generated churn schedules.

A :class:`SessionTrace` is a list of ``(time, node_id, online)``
transitions.  Traces decouple churn generation from simulation: the
same trace can drive the overlay protocol and the static baselines so
all three curves of a figure see *identical* availability patterns,
and traces can be persisted for exact reruns.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, List, Sequence

import numpy as np

from ..errors import ChurnError
from ..sim import Simulator
from .model import NodeChurnSpec

__all__ = ["Transition", "SessionTrace", "generate_trace", "replay_trace"]


@dataclasses.dataclass(frozen=True)
class Transition:
    """One churn event: ``node_id`` becomes online/offline at ``time``."""

    time: float
    node_id: int
    online: bool


class SessionTrace:
    """An ordered churn schedule plus the initial online states."""

    def __init__(
        self,
        num_nodes: int,
        initial_online: Sequence[bool],
        transitions: Sequence[Transition],
    ) -> None:
        if len(initial_online) != num_nodes:
            raise ChurnError("initial_online length must equal num_nodes")
        times = [transition.time for transition in transitions]
        if any(later < earlier for earlier, later in zip(times, times[1:])):
            raise ChurnError("transitions must be time-ordered")
        self._num_nodes = num_nodes
        self._initial_online = list(initial_online)
        self._transitions = list(transitions)

    @property
    def num_nodes(self) -> int:
        """Number of nodes covered by this trace."""
        return self._num_nodes

    @property
    def initial_online(self) -> List[bool]:
        """Initial online state per node (copy)."""
        return list(self._initial_online)

    @property
    def horizon(self) -> float:
        """Time of the last transition (0.0 for an empty trace)."""
        return self._transitions[-1].time if self._transitions else 0.0

    def __len__(self) -> int:
        return len(self._transitions)

    def __iter__(self) -> Iterator[Transition]:
        return iter(self._transitions)

    def online_at(self, time: float) -> List[bool]:
        """Online mask at a given time (linear scan; for analysis only)."""
        state = list(self._initial_online)
        for transition in self._transitions:
            if transition.time > time:
                break
            state[transition.node_id] = transition.online
        return state

    def empirical_availability(self, node_id: int, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` that ``node_id`` spends online."""
        if horizon <= 0:
            raise ChurnError("horizon must be positive")
        online = self._initial_online[node_id]
        last_time = 0.0
        online_time = 0.0
        for transition in self._transitions:
            if transition.node_id != node_id:
                continue
            if transition.time >= horizon:
                break
            if online:
                online_time += transition.time - last_time
            last_time = transition.time
            online = transition.online
        if online:
            online_time += horizon - last_time
        return online_time / horizon


def generate_trace(
    specs: Sequence[NodeChurnSpec],
    horizon: float,
    rng: np.random.Generator,
    start_all_online: bool = False,
) -> SessionTrace:
    """Pre-generate a churn trace up to ``horizon``.

    Semantics match :class:`~repro.churn.model.ChurnProcess`: initial
    states are stationary draws (or all-online), and each state duration
    is a fresh sample from the node's distribution.
    """
    if horizon <= 0:
        raise ChurnError("horizon must be positive")
    initial: List[bool] = []
    events: List[Transition] = []
    for node_id, spec in enumerate(specs):
        online = True if start_all_online else bool(rng.random() < spec.availability)
        initial.append(online)
        time = 0.0
        state = online
        while True:
            distribution = spec.online if state else spec.offline
            time += distribution.sample(rng)
            if time > horizon:
                break
            state = not state
            events.append(Transition(time, node_id, state))
    events.sort(key=lambda transition: (transition.time, transition.node_id))
    return SessionTrace(len(specs), initial, events)


def replay_trace(
    sim: Simulator,
    trace: SessionTrace,
    listener,
) -> None:
    """Schedule every transition of ``trace`` on ``sim``.

    ``listener(node_id, online)`` fires at each transition time.  The
    initial states are *not* replayed; apply ``trace.initial_online``
    before starting the simulation.
    """
    for transition in trace:
        sim.post(
            transition.time, listener, transition.node_id, transition.online
        )
