"""Duration distributions for the churn model.

Yao et al. (the churn model the paper adopts, Section IV-B) consider
exponential and Pareto distributions for the time a node spends in each
of its online/offline states.  The paper's evaluation uses exponential
durations only; we implement both, plus Weibull as an extension, behind
one small interface so churn processes are distribution-agnostic.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

import numpy as np

from ..errors import ChurnError

__all__ = [
    "DurationDistribution",
    "Exponential",
    "Pareto",
    "Weibull",
    "distribution_from_name",
]


class DurationDistribution(abc.ABC):
    """A positive-duration distribution with a known mean."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected duration."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one strictly positive duration."""

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` durations (default: loop over :meth:`sample`)."""
        return np.array([self.sample(rng) for _ in range(count)])


class Exponential(DurationDistribution):
    """Exponential durations — the paper's choice.

    Parameterized directly by the mean (the paper's ``Ton``/``Toff``).
    """

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ChurnError(f"exponential mean must be positive, got {mean}")
        self._mean = mean

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self._mean))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(self._mean, size=count)

    def __repr__(self) -> str:
        return f"Exponential(mean={self._mean})"


class Pareto(DurationDistribution):
    """Pareto (heavy-tailed) durations, Yao et al.'s alternative.

    Uses the Lomax form with scale chosen so the requested mean holds:
    for shape ``a > 1`` and mean ``m``, scale ``= m * (a - 1)`` and the
    sampled duration is ``scale * X`` where ``X ~ Lomax(a)``.
    """

    def __init__(self, mean: float, shape: float = 3.0) -> None:
        if mean <= 0:
            raise ChurnError(f"pareto mean must be positive, got {mean}")
        if shape <= 1.0:
            raise ChurnError(f"pareto shape must exceed 1 for a finite mean, got {shape}")
        self._mean = mean
        self._shape = shape
        self._scale = mean * (shape - 1.0)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def shape(self) -> float:
        """Tail exponent; lower values mean heavier tails."""
        return self._shape

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.pareto(self._shape))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self._scale * rng.pareto(self._shape, size=count)

    def __repr__(self) -> str:
        return f"Pareto(mean={self._mean}, shape={self._shape})"


class Weibull(DurationDistribution):
    """Weibull durations (extension; common in session-time studies)."""

    def __init__(self, mean: float, shape: float = 0.7) -> None:
        if mean <= 0:
            raise ChurnError(f"weibull mean must be positive, got {mean}")
        if shape <= 0:
            raise ChurnError(f"weibull shape must be positive, got {shape}")
        self._mean = mean
        self._shape = shape
        self._scale = mean / math.gamma(1.0 + 1.0 / shape)

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def shape(self) -> float:
        return self._shape

    def sample(self, rng: np.random.Generator) -> float:
        return float(self._scale * rng.weibull(self._shape))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return self._scale * rng.weibull(self._shape, size=count)

    def __repr__(self) -> str:
        return f"Weibull(mean={self._mean}, shape={self._shape})"


def distribution_from_name(
    name: str, mean: float, shape: Optional[float] = None
) -> DurationDistribution:
    """Build a distribution from a config string.

    Recognized names: ``exponential``, ``pareto``, ``weibull``.
    """
    lowered = name.lower()
    if lowered == "exponential":
        return Exponential(mean)
    if lowered == "pareto":
        return Pareto(mean) if shape is None else Pareto(mean, shape)
    if lowered == "weibull":
        return Weibull(mean) if shape is None else Weibull(mean, shape)
    raise ChurnError(f"unknown duration distribution {name!r}")
