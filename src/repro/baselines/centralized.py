"""The centralized-directory baseline the paper rules out.

Section II-E: "we cannot use a centralized node directory service in
our solution because the latter can be compromised (consider data
leaks from Facebook or other social networking sites)".  Related work
(Whisper) likewise relies on an invitation server that knows the
membership.

This module implements that rejected design as a *baseline*: a
:class:`DirectoryServer` knows every member and its liveness; each node
asks it for ``target_degree`` uniformly random peers on join and
refreshes periodically.  The topology this produces is the ideal the
paper's gossip protocol approximates — so comparing the two quantifies
the **price of privacy**: how much convergence time and overhead the
decentralized, pseudonym-based protocol pays to avoid the directory's
catastrophic trust assumption.

The privacy cost of the baseline is explicit in the API:
:meth:`DirectoryServer.breach` returns everything a compromise leaks —
the complete member list and the entire link structure, in one shot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import networkx as nx
import numpy as np

from ..churn import ChurnProcess, homogeneous_specs
from ..config import SystemConfig
from ..errors import ExperimentError
from ..rng import RandomStreams
from ..sim import Simulator

__all__ = ["DirectoryServer", "CentralizedOverlay", "BreachReport"]


@dataclasses.dataclass(frozen=True)
class BreachReport:
    """Everything a directory compromise discloses at once."""

    members: FrozenSet[int]
    links: Tuple[Tuple[int, int], ...]

    @property
    def identities_exposed(self) -> int:
        """Count of real identities leaked (= the whole group)."""
        return len(self.members)


class DirectoryServer:
    """An omniscient membership directory (the rejected design)."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._members: Set[int] = set()
        self._links: Dict[int, Set[int]] = {}
        self.queries_served = 0

    def register(self, node_id: int) -> None:
        """A member announces itself (disclosing its identity)."""
        self._members.add(node_id)
        self._links.setdefault(node_id, set())

    def sample_peers(self, node_id: int, count: int) -> List[int]:
        """Hand out uniformly random members (excluding the asker)."""
        self.queries_served += 1
        candidates = [member for member in self._members if member != node_id]
        if not candidates:
            return []
        size = min(count, len(candidates))
        indices = self._rng.choice(len(candidates), size=size, replace=False)
        return [candidates[int(index)] for index in indices]

    def record_link(self, u: int, v: int) -> None:
        """The server also learns the links it brokers."""
        self._links.setdefault(u, set()).add(v)
        self._links.setdefault(v, set()).add(u)

    def breach(self) -> BreachReport:
        """What an attacker gets by compromising the directory."""
        edges = set()
        for u, neighbors in self._links.items():
            for v in neighbors:
                edges.add((min(u, v), max(u, v)))
        return BreachReport(
            members=frozenset(self._members), links=tuple(sorted(edges))
        )


class CentralizedOverlay:
    """Random overlay maintained through the central directory.

    API mirrors :class:`repro.core.Overlay` closely enough for
    experiments to compare them: ``build``/``start``/``run_until``/
    ``snapshot``/``online_ids``.
    """

    def __init__(
        self,
        config: SystemConfig,
        sim: Simulator,
        churn: Optional[ChurnProcess],
        rng: np.random.Generator,
        refresh_period: float = 1.0,
    ) -> None:
        if refresh_period <= 0:
            raise ExperimentError("refresh_period must be positive")
        self.config = config
        self.sim = sim
        self.churn = churn
        self.directory = DirectoryServer(rng)
        self._rng = rng
        self._refresh_period = refresh_period
        self._links: Dict[int, Set[int]] = {
            node_id: set() for node_id in range(config.num_nodes)
        }
        self.messages_sent = 0
        self._started = False

    @classmethod
    def build(
        cls,
        config: SystemConfig,
        with_churn: bool = True,
        refresh_period: float = 1.0,
    ) -> "CentralizedOverlay":
        streams = RandomStreams(config.seed)
        sim = Simulator()
        churn: Optional[ChurnProcess] = None
        if with_churn:
            churn = ChurnProcess(
                sim,
                homogeneous_specs(
                    config.num_nodes, config.availability, config.mean_offline_time
                ),
                streams.substream("churn"),
            )
        return cls(
            config,
            sim,
            churn,
            streams.substream("directory"),
            refresh_period=refresh_period,
        )

    def start(self) -> None:
        """Register everyone; online nodes fetch their first peer sets."""
        if self._started:
            raise ExperimentError("already started")
        self._started = True
        for node_id in range(self.config.num_nodes):
            self.directory.register(node_id)
        if self.churn is not None:
            self.churn.set_listener(self._on_transition)
            self.churn.start()
            online = set(self.churn.online_nodes())
        else:
            online = set(range(self.config.num_nodes))
        for node_id in online:
            self._refresh(node_id)
        self.sim.post_after(self._refresh_period, self._periodic_refresh)

    def run_until(self, horizon: float) -> None:
        """Advance simulated time."""
        self.sim.run_until(horizon)

    def online_ids(self) -> List[int]:
        """Currently online members."""
        if self.churn is not None:
            return self.churn.online_nodes()
        return list(range(self.config.num_nodes))

    def _is_online(self, node_id: int) -> bool:
        if self.churn is None:
            return True
        return self.churn.is_online(node_id)

    def _on_transition(self, node_id: int, online: bool) -> None:
        if online:
            self._refresh(node_id)

    def _refresh(self, node_id: int) -> None:
        """Ask the directory to top the node's links up to target."""
        deficit = self.config.target_degree - len(self._links[node_id])
        if deficit <= 0:
            return
        peers = self.directory.sample_peers(node_id, deficit)
        self.messages_sent += 2  # request + response
        for peer in peers:
            self._links[node_id].add(peer)
            self.directory.record_link(node_id, peer)

    def _periodic_refresh(self) -> None:
        self.sim.post_after(self._refresh_period, self._periodic_refresh)
        for node_id in self.online_ids():
            self._refresh(node_id)

    def snapshot(self, online_only: bool = True) -> nx.Graph:
        """The current overlay as an undirected graph."""
        graph = nx.Graph()
        if online_only:
            included = set(self.online_ids())
        else:
            included = set(range(self.config.num_nodes))
        graph.add_nodes_from(included)
        for node_id, peers in self._links.items():
            if node_id not in included:
                continue
            for peer in peers:
                if peer in included:
                    graph.add_edge(node_id, peer)
        return graph
