"""Baseline systems the paper compares against or explicitly rejects:
the centralized-directory random overlay (rejected for its catastrophic
trust assumption; quantifies the price of privacy).
"""

from .centralized import BreachReport, CentralizedOverlay, DirectoryServer

__all__ = ["DirectoryServer", "CentralizedOverlay", "BreachReport"]
