"""Per-node overhead statistics (Figure 6).

The paper ranks nodes by their trust-graph degree and reports, per
node, the average number of messages sent per shuffle period *while the
node was online*, next to the node's maximum out-degree in the overlay.
The expected system-wide average is 2 (one request per node per period
plus, on average, one response), with high-degree nodes answering more
requests because more peers hold links to them.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from ..core import Overlay
from ..errors import ExperimentError

__all__ = ["NodeOverhead", "message_overhead_by_rank", "mean_messages_per_period"]


@dataclasses.dataclass(frozen=True)
class NodeOverhead:
    """One node's overhead summary."""

    node_id: int
    trust_degree: int
    messages_per_period: float
    max_out_degree: int


def message_overhead_by_rank(
    overlay: Overlay,
    max_out_degrees: Optional[List[int]] = None,
    min_online_time: float = 1.0,
) -> List[NodeOverhead]:
    """Per-node overhead, sorted by descending trust-graph degree.

    Parameters
    ----------
    overlay:
        A (finished or running) overlay experiment.
    max_out_degrees:
        Per-node maximum observed out-degree, as collected by
        :class:`~repro.metrics.collector.MetricsCollector`; falls back
        to the current out-degree when not supplied.
    min_online_time:
        Nodes online for less than this many periods are reported with
        zero rate instead of a noisy ratio.

    Returns
    -------
    list of NodeOverhead
        Index 0 is the highest-trust-degree node (rank 1 in Figure 6).
    """
    if min_online_time <= 0:
        raise ExperimentError("min_online_time must be positive")
    now = overlay.sim.now
    summaries = []
    for node in overlay.nodes:
        online_time = overlay.total_online_time(node.node_id)
        if online_time >= min_online_time:
            rate = node.counters.messages_sent / online_time
        else:
            rate = 0.0
        if max_out_degrees is not None:
            max_degree = max_out_degrees[node.node_id]
        else:
            max_degree = node.out_degree(now)
        summaries.append(
            NodeOverhead(
                node_id=node.node_id,
                trust_degree=node.links.trusted_degree,
                messages_per_period=rate,
                max_out_degree=max_degree,
            )
        )
    summaries.sort(key=lambda entry: (-entry.trust_degree, entry.node_id))
    return summaries


def mean_messages_per_period(overlay: Overlay) -> float:
    """System-wide average messages per node per online period.

    The paper's sanity check: this should be close to 2.
    """
    total_messages = 0
    total_online_time = 0.0
    for node in overlay.nodes:
        total_messages += node.counters.messages_sent
        total_online_time += overlay.total_online_time(node.node_id)
    if total_online_time <= 0:
        return 0.0
    return total_messages / total_online_time
