"""Bandwidth accounting for the maintenance protocol.

The paper reports overhead as message counts; deployments budget in
bytes.  This module layers a wire-size model over the simulation's
counters: each shuffle message carries up to ℓ pseudonyms, and every
pseudonym costs a value (p bits), an endpoint address, and an expiry
timestamp, plus per-message envelope overhead from the anonymity layers
(onion headers).

The model is deliberately explicit and overridable — change the
per-field sizes to match a concrete deployment's encoding.
"""

from __future__ import annotations

import dataclasses

from ..core import Overlay
from ..errors import ExperimentError

__all__ = ["WireModel", "BandwidthReport", "bandwidth_report"]


@dataclasses.dataclass(frozen=True)
class WireModel:
    """Byte costs of protocol fields.

    Defaults: 8-byte pseudonym values (p = 63 bits), 32-byte endpoint
    addresses (hidden-service-style), 8-byte expiries, a 64-byte
    message envelope (framing + MAC), and 3 x 48 bytes of onion
    overhead (one header per relay of a length-3 circuit).
    """

    pseudonym_value_bytes: int = 8
    address_bytes: int = 32
    expiry_bytes: int = 8
    envelope_bytes: int = 64
    onion_overhead_bytes: int = 144

    def __post_init__(self) -> None:
        for field in dataclasses.fields(self):
            if getattr(self, field.name) < 0:
                raise ExperimentError(f"{field.name} must be non-negative")

    @property
    def per_pseudonym_bytes(self) -> int:
        """Wire size of one pseudonym entry."""
        return self.pseudonym_value_bytes + self.address_bytes + self.expiry_bytes

    def message_bytes(self, pseudonym_count: int) -> int:
        """Wire size of one shuffle message carrying ``pseudonym_count``."""
        if pseudonym_count < 0:
            raise ExperimentError("pseudonym_count must be non-negative")
        return (
            self.envelope_bytes
            + self.onion_overhead_bytes
            + pseudonym_count * self.per_pseudonym_bytes
        )


@dataclasses.dataclass(frozen=True)
class BandwidthReport:
    """System-wide bandwidth summary for one overlay run."""

    total_messages: int
    total_bytes: int
    bytes_per_node_per_period: float
    mean_message_bytes: float

    def __str__(self) -> str:
        kib = self.bytes_per_node_per_period / 1024.0
        return (
            f"{self.total_messages} messages, "
            f"{self.total_bytes / 1024 / 1024:.2f} MiB total, "
            f"{kib:.2f} KiB per node per shuffling period"
        )


def bandwidth_report(
    overlay: Overlay,
    model: WireModel = WireModel(),
    fill_factor: float = 1.0,
) -> BandwidthReport:
    """Estimate maintenance bandwidth from an overlay's counters.

    Parameters
    ----------
    overlay:
        A (finished or running) overlay.
    model:
        The byte-cost model.
    fill_factor:
        Average fraction of the shuffle-length budget ℓ actually
        carried per message (1.0 = always full; warm systems with
        ample caches run near full).

    Notes
    -----
    The per-node rate divides by total *online* node-time, matching the
    per-node message rates of Figure 6.
    """
    if not 0.0 < fill_factor <= 1.0:
        raise ExperimentError("fill_factor must be in (0, 1]")
    total_messages = sum(
        node.counters.messages_sent for node in overlay.nodes
    )
    per_message = model.message_bytes(
        max(1, round(overlay.config.shuffle_length * fill_factor))
    )
    total_bytes = total_messages * per_message
    total_online_time = sum(
        overlay.total_online_time(node.node_id) for node in overlay.nodes
    )
    rate = total_bytes / total_online_time if total_online_time > 0 else 0.0
    return BandwidthReport(
        total_messages=total_messages,
        total_bytes=total_bytes,
        bytes_per_node_per_period=rate,
        mean_message_bytes=float(per_message),
    )
