"""Degree-distribution summary statistics.

Figure 5 compares distributions visually; these scalars quantify the
same comparison: the Gini coefficient (0 = perfectly uniform degrees,
→1 = all edges on one hub) and the normalized Shannon entropy of the
degree share.  The rewired overlay should sit between the skewed trust
graph and the tightly concentrated Erdős–Rényi reference.
"""

from __future__ import annotations

import math
from typing import Dict

import networkx as nx
import numpy as np

from ..errors import GraphError

__all__ = ["degree_gini", "degree_share_entropy", "degree_summary"]


def _degrees(graph: nx.Graph) -> np.ndarray:
    if graph.number_of_nodes() == 0:
        raise GraphError("graph is empty")
    return np.array([degree for _, degree in graph.degree()], dtype=float)


def degree_gini(graph: nx.Graph) -> float:
    """Gini coefficient of the degree sequence.

    0 for regular graphs; approaches 1 as edges concentrate on few
    hubs.  Degenerate case (all degrees zero) returns 0.
    """
    degrees = np.sort(_degrees(graph))
    total = degrees.sum()
    if total == 0:
        return 0.0
    n = degrees.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum()) / (n * total) - (n + 1) / n)


def degree_share_entropy(graph: nx.Graph) -> float:
    """Normalized Shannon entropy of each node's share of total degree.

    1.0 when every node carries an equal share of the edges; lower as
    hubs dominate.  Degenerate single-node or edgeless graphs return
    1.0 by convention (no concentration to speak of).
    """
    degrees = _degrees(graph)
    total = degrees.sum()
    n = degrees.size
    if total == 0 or n < 2:
        return 1.0
    shares = degrees / total
    nonzero = shares[shares > 0]
    entropy = float(-(nonzero * np.log(nonzero)).sum())
    return entropy / math.log(n)


def degree_summary(graph: nx.Graph) -> Dict[str, float]:
    """All degree statistics in one mapping (for result tables)."""
    degrees = _degrees(graph)
    return {
        "mean": float(degrees.mean()),
        "std": float(degrees.std()),
        "max": float(degrees.max()),
        "gini": degree_gini(graph),
        "entropy": degree_share_entropy(graph),
    }
