"""Periodic measurement of a running overlay (paper Section IV-C).

:class:`MetricsCollector` attaches to an :class:`~repro.core.Overlay`
and samples, once per configurable interval:

* the fraction of online nodes disconnected from the overlay's largest
  component, and the same metric on the trust-graph baseline;
* the normalized average path length (optionally less frequently,
  since it is the expensive metric);
* the per-period rate of pseudonym-link replacements per online node
  (Figure 9's overhead metric);
* the per-period rate of messages per online node;
* each node's maximum observed out-degree (Figure 6).

Sampling happens inside the simulation via scheduled events, so the
series align exactly with simulated time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import Overlay
from ..errors import ExperimentError
from ..graphs import fraction_disconnected, normalized_path_length
from ..rng import fallback_rng
from .series import TimeSeries

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Samples overlay health metrics on a fixed simulated-time grid."""

    def __init__(
        self,
        overlay: Overlay,
        interval: float = 1.0,
        path_length_every: int = 0,
        path_length_sources: Optional[int] = 32,
        track_trust_baseline: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        """
        Parameters
        ----------
        overlay:
            The system under measurement (not yet started is fine).
        interval:
            Sampling interval in shuffling periods.
        path_length_every:
            Measure normalized path length every this many samples
            (0 disables the metric entirely).
        path_length_sources:
            BFS source sample size for the path-length estimate
            (None = exact).
        track_trust_baseline:
            Also measure the trust graph restricted to online nodes.
        rng:
            Randomness for path-length source sampling.  Prefer an
            overlay substream (``overlay.substream("collector")``); the
            default is a seeded fallback generator derived from
            :data:`repro.config.DEFAULT_SEED`.
        """
        if interval <= 0:
            raise ExperimentError("interval must be positive")
        if path_length_every < 0:
            raise ExperimentError("path_length_every must be non-negative")
        self._overlay = overlay
        self._interval = interval
        self._path_length_every = path_length_every
        self._path_length_sources = path_length_sources
        self._track_trust = track_trust_baseline
        self._rng = rng if rng is not None else fallback_rng("metrics.collector")

        self.disconnected = TimeSeries("overlay disconnected fraction")
        self.trust_disconnected = TimeSeries("trust-graph disconnected fraction")
        self.path_length = TimeSeries("overlay normalized path length")
        self.trust_path_length = TimeSeries("trust-graph normalized path length")
        self.online_count = TimeSeries("online nodes")
        self.replacements_per_node = TimeSeries("link replacements per node per period")
        self.messages_per_node = TimeSeries("messages per node per period")

        self.max_out_degree: Dict[int, int] = {
            node.node_id: 0 for node in overlay.nodes
        }
        self._samples = 0
        self._last_replacements = 0
        self._last_messages = 0
        self._started = False

    @property
    def interval(self) -> float:
        """Sampling interval in shuffling periods."""
        return self._interval

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin sampling (first sample after ``initial_delay``)."""
        if self._started:
            raise ExperimentError("collector already started")
        self._started = True
        delay = self._interval if initial_delay is None else initial_delay
        self._overlay.sim.post_after(delay, self._sample)

    def _sample(self) -> None:
        self._overlay.sim.post_after(self._interval, self._sample)
        self._samples += 1
        now = self._overlay.sim.now
        total_nodes = len(self._overlay.nodes)

        snapshot = self._overlay.snapshot(online_only=True)
        self.disconnected.append(now, fraction_disconnected(snapshot))
        online = snapshot.number_of_nodes()
        self.online_count.append(now, float(online))

        trust_snapshot = None
        if self._track_trust:
            trust_snapshot = self._overlay.trust_snapshot()
            self.trust_disconnected.append(
                now, fraction_disconnected(trust_snapshot)
            )

        if self._path_length_every and self._samples % self._path_length_every == 0:
            self.path_length.append(
                now,
                normalized_path_length(
                    snapshot,
                    total_nodes,
                    sample_sources=self._path_length_sources,
                    rng=self._rng,
                ),
            )
            if trust_snapshot is not None:
                self.trust_path_length.append(
                    now,
                    normalized_path_length(
                        trust_snapshot,
                        total_nodes,
                        sample_sources=self._path_length_sources,
                        rng=self._rng,
                    ),
                )

        # Per-period rates from cumulative counters.
        replacements = sum(
            node.links.replacements_total for node in self._overlay.nodes
        )
        messages = sum(node.counters.messages_sent for node in self._overlay.nodes)
        denominator = max(1, online) * self._interval
        self.replacements_per_node.append(
            now, (replacements - self._last_replacements) / denominator
        )
        self.messages_per_node.append(
            now, (messages - self._last_messages) / denominator
        )
        self._last_replacements = replacements
        self._last_messages = messages

        for node in self._overlay.nodes:
            if node.online:
                degree = node.out_degree(now)
                if degree > self.max_out_degree.setdefault(node.node_id, 0):
                    self.max_out_degree[node.node_id] = degree

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def stable_disconnected(self, fraction: float = 0.25) -> float:
        """Tail-mean of the overlay's disconnected fraction."""
        return self.disconnected.tail_mean(fraction)

    def stable_trust_disconnected(self, fraction: float = 0.25) -> float:
        """Tail-mean of the trust baseline's disconnected fraction."""
        return self.trust_disconnected.tail_mean(fraction)

    def convergence_time(self, threshold: float = 0.05) -> Optional[float]:
        """First time the overlay's disconnected fraction fell below
        ``threshold`` (None if it never did)."""
        return self.disconnected.time_to_reach(threshold, below=True)

    def max_out_degrees(self) -> List[int]:
        """Per-node maximum observed out-degree, indexed by node id."""
        return [self.max_out_degree[node_id] for node_id in sorted(self.max_out_degree)]
