"""Periodic measurement of a running overlay (paper Section IV-C).

:class:`MetricsCollector` attaches to an :class:`~repro.core.Overlay`
and samples, once per configurable interval:

* the fraction of online nodes disconnected from the overlay's largest
  component, and the same metric on the trust-graph baseline;
* the normalized average path length (optionally less frequently,
  since it is the expensive metric);
* the per-period rate of pseudonym-link replacements per online node
  (Figure 9's overhead metric);
* the per-period rate of messages per online node;
* each node's maximum observed out-degree (Figure 6).

Sampling happens inside the simulation via scheduled events, so the
series align exactly with simulated time.

Each sample materializes the online set **once** and runs on one of
two backends (see docs/metrics.md): the default ``"fast"`` backend
takes a :meth:`~repro.core.Overlay.snapshot_fast` flat snapshot and
shares a single :class:`~repro.graphs.fastgraph.SnapshotAnalysis`
component labeling across every metric; ``"networkx"`` is the
reference path.  Both produce bit-identical series.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..core import Overlay
from ..errors import ExperimentError
from ..graphs import fraction_disconnected, largest_component, normalized_path_length
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis, resolve_graph_backend
from ..rng import fallback_rng
from .series import TimeSeries

__all__ = ["MetricsCollector"]


class MetricsCollector:
    """Samples overlay health metrics on a fixed simulated-time grid."""

    def __init__(
        self,
        overlay: Overlay,
        interval: float = 1.0,
        path_length_every: int = 0,
        path_length_sources: Optional[int] = 32,
        track_trust_baseline: bool = True,
        rng: Optional[np.random.Generator] = None,
        backend: Optional[str] = None,
    ) -> None:
        """
        Parameters
        ----------
        overlay:
            The system under measurement (not yet started is fine).
        interval:
            Sampling interval in shuffling periods.
        path_length_every:
            Measure normalized path length every this many samples
            (0 disables the metric entirely).
        path_length_sources:
            BFS source sample size for the path-length estimate
            (None = exact).
        track_trust_baseline:
            Also measure the trust graph restricted to online nodes.
        rng:
            Randomness for path-length source sampling.  Prefer an
            overlay substream (``overlay.substream("collector")``); the
            default is a seeded fallback generator derived from
            :data:`repro.config.DEFAULT_SEED`.  The collector owns this
            stream across samples, which is what keeps repeated source
            draws independent — see the hazard note on
            :func:`repro.graphs.average_path_length`.
        backend:
            Metric backend override (``"fast"`` or ``"networkx"``);
            defaults to :func:`repro.graphs.get_graph_backend`.  Both
            backends produce bit-identical series.
        """
        if interval <= 0:
            raise ExperimentError("interval must be positive")
        if path_length_every < 0:
            raise ExperimentError("path_length_every must be non-negative")
        self._overlay = overlay
        self._interval = interval
        self._path_length_every = path_length_every
        self._path_length_sources = path_length_sources
        self._track_trust = track_trust_baseline
        self._rng = rng if rng is not None else fallback_rng("metrics.collector")
        self._backend = resolve_graph_backend(backend)

        self.disconnected = TimeSeries("overlay disconnected fraction")
        self.trust_disconnected = TimeSeries("trust-graph disconnected fraction")
        self.path_length = TimeSeries("overlay normalized path length")
        self.trust_path_length = TimeSeries("trust-graph normalized path length")
        self.online_count = TimeSeries("online nodes")
        self.replacements_per_node = TimeSeries("link replacements per node per period")
        self.messages_per_node = TimeSeries("messages per node per period")

        self._max_out_degree = np.zeros(len(overlay.nodes), dtype=np.int64)
        # Trust-baseline labeling cache: Overlay.trust_snapshot_fast
        # returns the identical object while the online set and trust
        # graph are unchanged, so the union-find pass is reused too.
        self._trust_analysis_cache: Optional[SnapshotAnalysis] = None
        self._samples = 0
        self._last_replacements = 0
        self._last_messages = 0
        self._started = False

    @property
    def interval(self) -> float:
        """Sampling interval in shuffling periods."""
        return self._interval

    @property
    def backend(self) -> str:
        """The metric backend this collector samples with."""
        return self._backend

    @property
    def max_out_degree(self) -> Dict[int, int]:
        """Per-node maximum observed out-degree, keyed by node id."""
        return {
            node_id: int(value)
            for node_id, value in enumerate(self._max_out_degree.tolist())
        }

    def start(self, initial_delay: Optional[float] = None) -> None:
        """Begin sampling (first sample after ``initial_delay``)."""
        if self._started:
            raise ExperimentError("collector already started")
        self._started = True
        delay = self._interval if initial_delay is None else initial_delay
        self._overlay.sim.post_after(delay, self._sample)

    def _trust_analysis(self, trust_snapshot: FlatSnapshot) -> SnapshotAnalysis:
        cached = self._trust_analysis_cache
        if cached is not None and cached.snapshot is trust_snapshot:
            return cached
        analysis = SnapshotAnalysis(trust_snapshot)
        self._trust_analysis_cache = analysis
        return analysis

    def _grow_degree_tracking(self, total_nodes: int) -> None:
        if total_nodes > len(self._max_out_degree):
            grown = np.zeros(total_nodes, dtype=np.int64)
            grown[: len(self._max_out_degree)] = self._max_out_degree
            self._max_out_degree = grown

    def _sample(self) -> None:
        self._overlay.sim.post_after(self._interval, self._sample)
        self._samples += 1
        overlay = self._overlay
        now = overlay.sim.now
        total_nodes = len(overlay.nodes)
        online_ids = overlay.online_ids()
        online = len(online_ids)
        self.online_count.append(now, float(online))
        self._grow_degree_tracking(total_nodes)
        measure_paths = bool(
            self._path_length_every
            and self._samples % self._path_length_every == 0
        )

        if self._backend == "fast":
            self._sample_fast(now, total_nodes, online_ids, measure_paths)
        else:
            self._sample_networkx(now, total_nodes, online_ids, measure_paths)

        # Per-period rates from cumulative counters.
        replacements = sum(
            node.links.replacements_total for node in overlay.nodes
        )
        messages = sum(node.counters.messages_sent for node in overlay.nodes)
        denominator = max(1, online) * self._interval
        self.replacements_per_node.append(
            now, (replacements - self._last_replacements) / denominator
        )
        self.messages_per_node.append(
            now, (messages - self._last_messages) / denominator
        )
        self._last_replacements = replacements
        self._last_messages = messages

    def _sample_fast(
        self,
        now: float,
        total_nodes: int,
        online_ids: List[int],
        measure_paths: bool,
    ) -> None:
        overlay = self._overlay
        # One labeling per snapshot per sample: every metric below reads
        # the same SnapshotAnalysis.
        analysis = SnapshotAnalysis(overlay.snapshot_fast(online_ids=online_ids))
        self.disconnected.append(now, analysis.fraction_disconnected())

        trust_analysis: Optional[SnapshotAnalysis] = None
        if self._track_trust:
            trust_analysis = self._trust_analysis(
                overlay.trust_snapshot_fast(online_ids=online_ids)
            )
            self.trust_disconnected.append(
                now, trust_analysis.fraction_disconnected()
            )

        if measure_paths:
            # RNG draw order (overlay first, trust second) matches the
            # reference backend so a shared stream stays in lockstep.
            self.path_length.append(
                now,
                analysis.normalized_path_length(
                    total_nodes,
                    sample_sources=self._path_length_sources,
                    rng=self._rng,
                ),
            )
            if trust_analysis is not None:
                self.trust_path_length.append(
                    now,
                    trust_analysis.normalized_path_length(
                        total_nodes,
                        sample_sources=self._path_length_sources,
                        rng=self._rng,
                    ),
                )

        if online_ids:
            degrees = overlay.online_out_degrees(now, online_ids)
            ids = np.asarray(online_ids, dtype=np.int64)
            self._max_out_degree[ids] = np.maximum(
                self._max_out_degree[ids], degrees
            )

    def _sample_networkx(
        self,
        now: float,
        total_nodes: int,
        online_ids: List[int],
        measure_paths: bool,
    ) -> None:
        overlay = self._overlay
        snapshot = overlay.snapshot(online_only=True, online_ids=online_ids)
        component = largest_component(snapshot)
        self.disconnected.append(
            now, fraction_disconnected(snapshot, component=component)
        )

        trust_snapshot = None
        trust_component: Optional[List[int]] = None
        if self._track_trust:
            trust_snapshot = overlay.trust_snapshot(online_ids=online_ids)
            trust_component = largest_component(trust_snapshot)
            self.trust_disconnected.append(
                now,
                fraction_disconnected(trust_snapshot, component=trust_component),
            )

        if measure_paths:
            self.path_length.append(
                now,
                normalized_path_length(
                    snapshot,
                    total_nodes,
                    sample_sources=self._path_length_sources,
                    rng=self._rng,
                    component=component,
                ),
            )
            if trust_snapshot is not None:
                self.trust_path_length.append(
                    now,
                    normalized_path_length(
                        trust_snapshot,
                        total_nodes,
                        sample_sources=self._path_length_sources,
                        rng=self._rng,
                        component=trust_component,
                    ),
                )

        max_out_degree = self._max_out_degree
        for node in overlay.nodes:
            if node.online:
                degree = node.out_degree(now)
                if degree > max_out_degree[node.node_id]:
                    max_out_degree[node.node_id] = degree

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------

    def stable_disconnected(self, fraction: float = 0.25) -> float:
        """Tail-mean of the overlay's disconnected fraction."""
        return self.disconnected.tail_mean(fraction)

    def stable_trust_disconnected(self, fraction: float = 0.25) -> float:
        """Tail-mean of the trust baseline's disconnected fraction."""
        return self.trust_disconnected.tail_mean(fraction)

    def convergence_time(self, threshold: float = 0.05) -> Optional[float]:
        """First time the overlay's disconnected fraction fell below
        ``threshold`` (None if it never did)."""
        return self.disconnected.time_to_reach(threshold, below=True)

    def max_out_degrees(self) -> List[int]:
        """Per-node maximum observed out-degree, indexed by node id."""
        return [int(value) for value in self._max_out_degree.tolist()]
