"""Time-series containers for experiment measurements.

A :class:`TimeSeries` is a pair of parallel lists (times, values) with
the small analysis helpers the experiments need: tail averaging (the
paper reports "the state of the system after the reported metrics have
reached stable values"), convergence detection, and resampling.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ExperimentError

__all__ = ["TimeSeries"]


class TimeSeries:
    """An append-only series of (time, value) samples."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: List[float] = []
        self._values: List[float] = []

    def append(self, time: float, value: float) -> None:
        """Add one sample; times must be non-decreasing."""
        if self._times and time < self._times[-1]:
            raise ExperimentError(
                f"non-monotonic time {time} after {self._times[-1]}"
            )
        self._times.append(time)
        self._values.append(value)

    @property
    def times(self) -> np.ndarray:
        """Sample times as an array (copy)."""
        return np.array(self._times)

    @property
    def values(self) -> np.ndarray:
        """Sample values as an array (copy)."""
        return np.array(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self._times, self._values))

    def last(self) -> Tuple[float, float]:
        """Most recent sample."""
        if not self._times:
            raise ExperimentError(f"time series {self.name!r} is empty")
        return self._times[-1], self._values[-1]

    def tail_mean(self, fraction: float = 0.25) -> float:
        """Mean over the trailing ``fraction`` of samples.

        This is how experiments report "stable" values: the transient
        head of the series is discarded.
        """
        if not self._values:
            raise ExperimentError(f"time series {self.name!r} is empty")
        if not 0.0 < fraction <= 1.0:
            raise ExperimentError("fraction must be in (0, 1]")
        count = max(1, int(len(self._values) * fraction))
        return float(np.mean(self._values[-count:]))

    def time_to_reach(
        self, threshold: float, below: bool = True
    ) -> Optional[float]:
        """First time the series crosses ``threshold`` (None if never).

        With ``below=True`` (default) this is the convergence time of a
        metric that should shrink, like the disconnected fraction.
        """
        for time, value in zip(self._times, self._values):
            if (value <= threshold) if below else (value >= threshold):
                return time
        return None

    def stabilized(self, window: int = 10, tolerance: float = 0.02) -> bool:
        """Whether the last ``window`` samples vary at most ``tolerance``."""
        if len(self._values) < window:
            return False
        tail = self._values[-window:]
        return max(tail) - min(tail) <= tolerance

    @staticmethod
    def average(series_list: Sequence["TimeSeries"], name: str = "") -> "TimeSeries":
        """Pointwise mean of equally sampled series (seed averaging)."""
        if not series_list:
            raise ExperimentError("need at least one series to average")
        lengths = {len(series) for series in series_list}
        if len(lengths) != 1:
            raise ExperimentError("series have mismatched lengths")
        result = TimeSeries(name=name or series_list[0].name)
        stacked = np.vstack([series.values for series in series_list])
        for index, time in enumerate(series_list[0]._times):
            result.append(time, float(stacked[:, index].mean()))
        return result
