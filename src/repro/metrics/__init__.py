"""Performance metrics for overlay experiments (paper Section IV-C):
connectivity, normalized path length, degree distributions, message and
link-replacement overhead, and time-series collection.

Graph-level primitives (largest component, path lengths, histograms)
live in :mod:`repro.graphs.metrics`; this package adds the pieces that
need a *running* overlay.
"""

from .bandwidth import BandwidthReport, WireModel, bandwidth_report
from .collector import MetricsCollector
from .degree_stats import degree_gini, degree_share_entropy, degree_summary
from .overhead import NodeOverhead, mean_messages_per_period, message_overhead_by_rank
from .series import TimeSeries

__all__ = [
    "TimeSeries",
    "MetricsCollector",
    "NodeOverhead",
    "message_overhead_by_rank",
    "mean_messages_per_period",
    "WireModel",
    "BandwidthReport",
    "bandwidth_report",
    "degree_gini",
    "degree_share_entropy",
    "degree_summary",
]
