"""Internal-observer instrumentation.

An internal observer is a participating node that records everything it
legitimately sees: the shuffle sets it receives, when, and over which
reply channel.  A coalition pools those observations.  This module taps
the overlay's per-node ``observer`` hook — it never reads state a real
node would not have.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

from ..core import Overlay
from ..errors import ExperimentError

__all__ = ["Sighting", "ObserverCoalition"]


@dataclasses.dataclass(frozen=True)
class Sighting:
    """One pseudonym observation by one coalition member."""

    observer_id: int
    time: float
    value: int
    expires_at: float
    event: str  # "shuffle_request_received" or "shuffle_response_received"


class ObserverCoalition:
    """A set of colluding internal observers pooling observations."""

    def __init__(self, overlay: Overlay, members: Sequence[int]) -> None:
        if not members:
            raise ExperimentError("coalition must not be empty")
        self._overlay = overlay
        self._members = list(dict.fromkeys(members))
        for member in self._members:
            if not 0 <= member < len(overlay.nodes):
                raise ExperimentError(f"no such node {member}")
        self._sightings: List[Sighting] = []
        self._values_seen: Set[int] = set()
        self._first_seen: Dict[int, float] = {}
        self._installed = False

    @property
    def members(self) -> List[int]:
        """The colluding node ids."""
        return list(self._members)

    def install(self) -> None:
        """Attach observation hooks to every coalition member."""
        if self._installed:
            raise ExperimentError("coalition already installed")
        self._installed = True
        for member in self._members:
            node = self._overlay.nodes[member]
            node.observer = self._make_hook(member)

    def _make_hook(self, member: int):
        def hook(event: str, details: dict) -> None:
            if event not in (
                "shuffle_request_received",
                "shuffle_response_received",
            ):
                return
            time = details["time"]
            for pseudonym in details["entries"]:
                self._sightings.append(
                    Sighting(
                        observer_id=member,
                        time=time,
                        value=pseudonym.value,
                        expires_at=pseudonym.expires_at,
                        event=event,
                    )
                )
                if pseudonym.value not in self._values_seen:
                    self._values_seen.add(pseudonym.value)
                    self._first_seen[pseudonym.value] = time

        return hook

    # ------------------------------------------------------------------
    # pooled knowledge
    # ------------------------------------------------------------------

    def sightings(self) -> List[Sighting]:
        """All observations, in arrival order."""
        return list(self._sightings)

    def distinct_values(self) -> Set[int]:
        """Every pseudonym value the coalition has ever seen."""
        return set(self._values_seen)

    def values_alive_at(self, time: float) -> Set[int]:
        """Values seen whose expiry (as advertised) is after ``time``."""
        alive = set()
        for sighting in self._sightings:
            if sighting.expires_at > time:
                alive.add(sighting.value)
        return alive

    def first_sighting_time(self, value: int) -> Optional[float]:
        """When the coalition first saw ``value`` (None if never)."""
        return self._first_seen.get(value)

    def sightings_of(self, value: int) -> List[Sighting]:
        """All observations of one pseudonym value."""
        return [sighting for sighting in self._sightings if sighting.value == value]
