"""Passive-observer traffic analysis over the columnar traffic log.

The paper's external-observer threat model (Section II-D) grants an
adversary — e.g. an ISP — a full view of *which channels carried
messages when*, never the content.  That is exactly what
:class:`~repro.privlink.traffic.TrafficLog` records, and mixnet-backed
runs produce one record per relay hop per message, so these analyses
must scale to millions of observations.  Every function here therefore
works on the log's columnar arrays (interned endpoint ids + numpy
columns) in vectorized passes rather than iterating records.

The questions answered are the classic passive-observation primitives
(cf. Mittal et al., *Preserving Link Privacy in Social Network Based
Systems*): per-endpoint volumes, the heaviest channels, and how much
node-to-node traffic bypasses the anonymizing infrastructure (for the
ideal or mixnet layers a direct ``node:a -> node:b`` channel is what a
correlation attack hopes to see).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Tuple

import numpy as np

from ..privlink.traffic import TrafficLog

__all__ = [
    "TrafficSummary",
    "endpoint_message_counts",
    "top_channels",
    "direct_node_channel_fraction",
    "summarize_traffic",
]


def endpoint_message_counts(log: TrafficLog) -> Dict[str, int]:
    """Messages touching each endpoint (as source or destination).

    A record with ``src == dst`` counts twice, matching a per-endpoint
    scan of the record view.
    """
    _, src_ids, dst_ids, _ = log.columns()
    names = log.endpoint_names()
    if not src_ids.size:
        return {}
    counts = np.bincount(src_ids, minlength=len(names))
    counts += np.bincount(dst_ids, minlength=len(names))
    return {
        names[endpoint_id]: int(count)
        for endpoint_id, count in enumerate(counts.tolist())
        if count
    }


def top_channels(log: TrafficLog, limit: int = 10) -> List[Tuple[Tuple[str, str], int]]:
    """The ``limit`` busiest (src, dst) channels, heaviest first.

    Ties break lexicographically on the channel names so the result is
    deterministic regardless of interning order.
    """
    ranked = sorted(log.channels().items(), key=lambda item: (-item[1], item[0]))
    return ranked[:limit]


def direct_node_channel_fraction(log: TrafficLog) -> float:
    """Fraction of observations on direct ``node: -> node:`` channels.

    For the ideal link layer every observation is a direct channel (the
    anonymizing machinery is abstracted away); for a mixnet-backed run
    this must be 0.0 — any direct channel would mean two participants
    talked outside the relay infrastructure, the exact signal a passive
    correlation attack needs.  Returns 0.0 for an empty log.
    """
    _, src_ids, dst_ids, _ = log.columns()
    if not src_ids.size:
        return 0.0
    names = log.endpoint_names()
    is_node = np.array(
        [name.startswith("node:") for name in names], dtype=bool
    )
    direct = is_node[src_ids] & is_node[dst_ids]
    return float(np.count_nonzero(direct)) / float(src_ids.size)


@dataclasses.dataclass(frozen=True)
class TrafficSummary:
    """What a passive observer tallies from one experiment's traffic."""

    total_records: int
    unique_endpoints: int
    unique_channels: int
    direct_node_fraction: float
    busiest_channel: Tuple[str, str]
    busiest_channel_count: int


def summarize_traffic(log: TrafficLog) -> TrafficSummary:
    """One-pass observer summary of a traffic log.

    Raises ``ValueError`` on an empty log — an observer with no
    observations has nothing to summarize.
    """
    channels = log.channels()
    if not channels:
        raise ValueError("cannot summarize an empty traffic log")
    (busiest, busiest_count), = top_channels(log, limit=1)
    return TrafficSummary(
        total_records=len(log),
        unique_endpoints=len(log.unique_endpoints()),
        unique_channels=len(channels),
        direct_node_fraction=direct_node_channel_fraction(log),
        busiest_channel=busiest,
        busiest_channel_count=busiest_count,
    )
