"""Static privacy analysis of colluding internal observers.

Section III-E reasons about what a set of colluding participants can
learn from its *position in the trust graph*:

* a single non-cut-vertex node learns essentially nothing beyond its
  own edges (III-E1);
* a colluding set that is **not** a vertex cut cannot control
  pseudonym flow (III-E2);
* a colluding set that **is** a vertex cut can partition pseudonym
  flow and run stronger attacks — in the extreme, if one side of the
  cut contains exactly two nodes a and b, the coalition knows any
  a-b overlay connectivity must be a trust edge (III-E3).

These are graph-theoretic statements, so this module answers them with
graph algorithms over the trust graph, no simulation required.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..errors import ExperimentError
from ..graphs.fastgraph import FlatSnapshot, SnapshotAnalysis, resolve_graph_backend

__all__ = ["CoalitionExposure", "is_vertex_cut", "cut_components", "coalition_exposure"]


def _remainder_analysis(
    trust_graph: nx.Graph, members: Set[int]
) -> Optional[SnapshotAnalysis]:
    """One flat-snapshot labeling of the trust graph minus the coalition.

    Returns None when the fast backend is off or the graph is not
    non-negative-integer labeled (the reference path handles those).
    """
    if resolve_graph_backend() != "fast":
        return None
    if not all(
        isinstance(node, (int, np.integer)) and node >= 0
        for node in trust_graph.nodes()
    ):
        return None
    base = FlatSnapshot.from_networkx(trust_graph)
    keep = np.array(
        [label not in members for label in base.node_ids.tolist()], dtype=bool
    )
    return SnapshotAnalysis(base.induced(keep))


def is_vertex_cut(trust_graph: nx.Graph, coalition: Sequence[int]) -> bool:
    """Whether removing ``coalition`` disconnects the trust graph.

    A coalition that covers all nodes trivially "disconnects" the rest;
    by convention that returns True only if at least two non-coalition
    nodes remain separated, else False.
    """
    members = set(coalition)
    analysis = _remainder_analysis(trust_graph, members)
    if analysis is not None:
        if analysis.snapshot.num_nodes <= 1:
            return False
        return analysis.component_count() != 1
    rest = [node for node in trust_graph.nodes() if node not in members]
    if len(rest) <= 1:
        return False
    remainder = trust_graph.subgraph(rest)
    return not nx.is_connected(remainder)


def cut_components(
    trust_graph: nx.Graph, coalition: Sequence[int]
) -> List[FrozenSet[int]]:
    """Connected components of the trust graph minus the coalition,
    ordered by smallest member."""
    members = set(coalition)
    analysis = _remainder_analysis(trust_graph, members)
    if analysis is not None:
        return [
            frozenset(int(label) for label in component.tolist())
            for component in analysis.components()
        ]
    rest = [node for node in trust_graph.nodes() if node not in members]
    remainder = trust_graph.subgraph(rest)
    return [frozenset(component) for component in nx.connected_components(remainder)]


@dataclasses.dataclass(frozen=True)
class CoalitionExposure:
    """What a coalition's graph position lets it do.

    Attributes
    ----------
    coalition:
        The colluding node set.
    known_ids:
        Real node IDs the coalition knows: its members plus all their
        trust neighbors (the only IDs the protocol ever discloses).
    forms_vertex_cut:
        Whether the coalition can partition pseudonym flow.
    isolated_pairs:
        Cut components of size exactly two whose two members are
        adjacent in the trust graph — the III-E3 worst case where the
        coalition learns a trust edge with certainty.
    probe_targets:
        Pairs of distinct coalition-adjacent nodes the coalition could
        subject to the timing-analysis link-detection attack.
    """

    coalition: FrozenSet[int]
    known_ids: FrozenSet[int]
    forms_vertex_cut: bool
    isolated_pairs: Tuple[Tuple[int, int], ...]
    probe_targets: Tuple[Tuple[int, int], ...]

    @property
    def id_disclosure_fraction(self) -> float:
        """Known IDs net of the coalition itself, as a count."""
        return float(len(self.known_ids - self.coalition))


def coalition_exposure(
    trust_graph: nx.Graph,
    coalition: Sequence[int],
    max_probe_targets: int = 1000,
) -> CoalitionExposure:
    """Full static analysis of one coalition."""
    members = frozenset(coalition)
    if not members:
        raise ExperimentError("coalition must not be empty")
    unknown = [node for node in members if node not in trust_graph]
    if unknown:
        raise ExperimentError(f"coalition nodes not in trust graph: {unknown}")

    known: Set[int] = set(members)
    adjacent: Set[int] = set()
    for member in members:
        for neighbor in trust_graph.neighbors(member):
            known.add(neighbor)
            if neighbor not in members:
                adjacent.add(neighbor)

    # One remainder labeling answers both the cut question and the
    # component enumeration on the fast path.
    analysis = _remainder_analysis(trust_graph, set(members))
    if analysis is not None:
        rest = analysis.snapshot.num_nodes
        forms_cut = rest > 1 and analysis.component_count() != 1
        components: List[FrozenSet[int]] = [
            frozenset(int(label) for label in component.tolist())
            for component in analysis.components()
        ]
    else:
        forms_cut = is_vertex_cut(trust_graph, list(members))
        components = (
            cut_components(trust_graph, list(members)) if forms_cut else []
        )
    isolated: List[Tuple[int, int]] = []
    if forms_cut:
        for component in components:
            if len(component) == 2:
                a, b = sorted(component)
                if trust_graph.has_edge(a, b):
                    isolated.append((a, b))

    probes: List[Tuple[int, int]] = []
    adjacent_sorted = sorted(adjacent)
    for index, a in enumerate(adjacent_sorted):
        for b in adjacent_sorted[index + 1:]:
            probes.append((a, b))
            if len(probes) >= max_probe_targets:
                break
        if len(probes) >= max_probe_targets:
            break

    return CoalitionExposure(
        coalition=members,
        known_ids=frozenset(known),
        forms_vertex_cut=forms_cut,
        isolated_pairs=tuple(isolated),
        probe_targets=tuple(probes),
    )
