"""The vertex-cut flow-control attack (paper Section III-E3).

"When a set of colluding internal observers forms a vertex cut in the
trust graph, then it has the possibility to control the flow of
pseudonyms from one part of the graph to the other.  If this set
maliciously deviates from the protocol and sends only pseudonyms
created by the set, then it can detect the existence of overlay links
between adjacent nodes [...]"

This module *runs* that attack: the coalition installs a shuffle filter
that strips every pseudonym not minted by a coalition member, starving
the two sides of each other's pseudonyms.  The experiment then measures
how thoroughly the coalition controls cross-side connectivity: the
fraction of overlay links between the separated sides that do **not**
pass through the coalition.  With an effective cut that fraction decays
toward zero — every remaining cross-side path is coalition-mediated,
which is exactly the observation power the paper describes.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..core import Overlay
from ..errors import ExperimentError
from .analysis import cut_components, is_vertex_cut

__all__ = ["VertexCutOutcome", "install_flow_control", "measure_flow_control"]


@dataclasses.dataclass(frozen=True)
class VertexCutOutcome:
    """Result of the flow-control measurement."""

    coalition: FrozenSet[int]
    sides: Tuple[FrozenSet[int], ...]
    cross_side_links: int
    coalition_mediated_links: int

    @property
    def uncontrolled_fraction(self) -> float:
        """Cross-side overlay links NOT passing through the coalition.

        0.0 means total flow control: the coalition sits on every path
        between the separated parts.
        """
        total = self.cross_side_links + self.coalition_mediated_links
        if total == 0:
            return 0.0
        return self.cross_side_links / total


def install_flow_control(overlay: Overlay, coalition: Sequence[int]) -> None:
    """Make the coalition deviate: forward only coalition pseudonyms.

    Installs a shuffle filter on every member that drops any pseudonym
    whose (measurement-oracle) owner is outside the coalition.  The
    oracle stands in for the coalition's own bookkeeping — members know
    exactly which pseudonyms they minted.
    """
    members: Set[int] = set(coalition)
    if not members:
        raise ExperimentError("coalition must not be empty")

    def make_filter(member: int):
        def only_coalition(entries):
            return tuple(
                pseudonym
                for pseudonym in entries
                if overlay.owner_of_value(pseudonym.value) in members
            )

        return only_coalition

    for member in members:
        if not 0 <= member < len(overlay.nodes):
            raise ExperimentError(f"no such node {member}")
        overlay.nodes[member].shuffle_filter = make_filter(member)


def measure_flow_control(
    overlay: Overlay, coalition: Sequence[int]
) -> VertexCutOutcome:
    """Measure how much cross-cut connectivity escapes the coalition.

    The trust graph minus the coalition is split into components; every
    current overlay link joining two *different* components (neither
    endpoint in the coalition) counts as uncontrolled, every link with
    a coalition endpoint as mediated.
    """
    members = frozenset(coalition)
    if not is_vertex_cut(overlay.trust_graph, list(members)):
        raise ExperimentError("coalition is not a vertex cut of the trust graph")
    components = cut_components(overlay.trust_graph, list(members))
    side_of = {}
    for index, component in enumerate(components):
        for node in component:
            side_of[node] = index

    snapshot = overlay.snapshot(online_only=False)
    cross = 0
    mediated = 0
    for u, v in snapshot.edges():
        u_in = u in members
        v_in = v in members
        if u_in or v_in:
            if u_in != v_in:
                mediated += 1
            continue
        if side_of.get(u) != side_of.get(v):
            cross += 1
    return VertexCutOutcome(
        coalition=members,
        sides=tuple(components),
        cross_side_links=cross,
        coalition_mediated_links=mediated,
    )
