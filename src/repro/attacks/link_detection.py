"""The timing-analysis link-detection attack (Section III-E2).

Setup: colluding observers n and o are trust-adjacent to target nodes a
and b respectively.  "n can produce a pseudonym P and send it only to
a.  If a gossips P to b in the next gossip round and b gossips P to o
in the next round as well, then n and o can reasonably assume that an
overlay link exists between a and b."

The attack deviates from the protocol only in message *content* (a
crafted pseudonym), which the paper's semi-honest model allows it to
study.  Detection requires attribution: o can attribute a sighting to b
only when the carrying message identifiably came from b — a shuffle
request from b over their trusted link (it carries b's reply id), or
the response to a request o itself sent to b.

The paper argues the attack succeeds rarely because a must pick P out
of its whole cache quickly *and* pick b as partner, then b must do the
same toward o.  :func:`run_link_detection_trials` measures exactly that
success rate against ground truth.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence, Tuple

from ..core import Overlay, ShuffleRequest, mint_pseudonym
from ..core.shuffle import make_shuffle_set
from ..errors import ExperimentError

__all__ = [
    "LinkDetectionOutcome",
    "inject_marked_pseudonym",
    "watch_for_marked_value",
    "run_link_detection_trials",
]


@dataclasses.dataclass(frozen=True)
class LinkDetectionOutcome:
    """Result of one attack trial."""

    observer_n: int
    target_a: int
    observer_o: int
    target_b: int
    marked_value: int
    injected_at: float
    detected_via_b: bool
    detection_time: Optional[float]
    seen_anywhere: bool
    ground_truth_link: bool

    @property
    def correct(self) -> bool:
        """Whether the attack's conclusion matches ground truth."""
        return self.detected_via_b == self.ground_truth_link


def _require_trust_edge(overlay: Overlay, u: int, v: int) -> None:
    if not overlay.trust_graph.has_edge(u, v):
        raise ExperimentError(f"nodes {u} and {v} share no trust edge")


def inject_marked_pseudonym(
    overlay: Overlay, observer_n: int, target_a: int, lifetime: float = math.inf
) -> int:
    """Have observer n send a crafted pseudonym only to its neighbor a.

    Returns the marked value.  The pseudonym is routable (it gets a
    real endpoint owned by n) so honest nodes treat it exactly like any
    other pseudonym.
    """
    _require_trust_edge(overlay, observer_n, target_a)
    node_n = overlay.nodes[observer_n]
    if not node_n.online or node_n.own is None:
        raise ExperimentError(f"observer {observer_n} must be online")
    rng = overlay.substream("attack", "marked", observer_n)
    address = overlay.link_layer.create_endpoint(observer_n)
    marked = mint_pseudonym(rng, address, overlay.sim.now, lifetime)
    # Measurement registry, so ground-truth snapshots stay consistent.
    overlay._record_pseudonym(observer_n, marked)
    entries = make_shuffle_set(node_n.own, (marked,), limit=2)
    request = ShuffleRequest(entries=entries, reply_node=observer_n)
    overlay.link_layer.send_to_node(observer_n, target_a, request)
    node_n.counters.messages_sent += 1
    return marked.value


class _MarkedValueWatcher:
    """Observer-side detector with sender attribution."""

    def __init__(
        self, overlay: Overlay, observer_o: int, target_b: int, marked_value: int
    ) -> None:
        self._overlay = overlay
        self._observer_o = observer_o
        self._target_b = target_b
        self._marked_value = marked_value
        self._pending_request_to_b = False
        self.detected_via_b_at: Optional[float] = None
        self.seen_anywhere_at: Optional[float] = None
        overlay.nodes[observer_o].observer = self._hook

    def _entries_contain_mark(self, entries) -> bool:
        return any(pseudonym.value == self._marked_value for pseudonym in entries)

    def _hook(self, event: str, details: dict) -> None:
        if event == "shuffle_request_sent":
            target = details["target"]
            self._pending_request_to_b = (
                target.is_trusted and target.node_id == self._target_b
            )
            return
        if event == "shuffle_request_received":
            if self._entries_contain_mark(details["entries"]):
                if self.seen_anywhere_at is None:
                    self.seen_anywhere_at = details["time"]
                if (
                    details.get("reply_node") == self._target_b
                    and self.detected_via_b_at is None
                ):
                    self.detected_via_b_at = details["time"]
            return
        if event == "shuffle_response_received":
            if self._entries_contain_mark(details["entries"]):
                if self.seen_anywhere_at is None:
                    self.seen_anywhere_at = details["time"]
                if self._pending_request_to_b and self.detected_via_b_at is None:
                    self.detected_via_b_at = details["time"]
            # A response concludes the exchange it answered.
            self._pending_request_to_b = False


def watch_for_marked_value(
    overlay: Overlay, observer_o: int, target_b: int, marked_value: int
) -> _MarkedValueWatcher:
    """Install the marked-value detector on observer o."""
    _require_trust_edge(overlay, observer_o, target_b)
    return _MarkedValueWatcher(overlay, observer_o, target_b, marked_value)


def _overlay_link_exists(overlay: Overlay, a: int, b: int) -> bool:
    """Ground truth: any current overlay link between a and b."""
    if overlay.trust_graph.has_edge(a, b):
        return True
    now = overlay.sim.now
    for first, second in ((a, b), (b, a)):
        for pseudonym in overlay.nodes[first].links.pseudonym_links():
            if pseudonym.is_expired(now):
                continue
            if overlay.owner_of_value(pseudonym.value) == second:
                return True
    return False


def run_link_detection_trials(
    overlay: Overlay,
    pairs: Sequence[Tuple[int, int, int, int]],
    detection_window: float = 5.0,
    trial_spacing: float = 0.0,
) -> List[LinkDetectionOutcome]:
    """Run the attack for several (n, a, o, b) quadruples.

    The overlay must already be started.  Trials run sequentially; each
    injects a marked pseudonym, advances the simulation by
    ``detection_window`` periods, and records the outcome.

    Parameters
    ----------
    overlay:
        A running overlay.
    pairs:
        Quadruples ``(observer_n, target_a, observer_o, target_b)``;
        n-a and o-b must be trust edges.
    detection_window:
        How long (in shuffling periods) the coalition watches before
        concluding.
    trial_spacing:
        Extra idle time between trials, letting marked values wash out.
    """
    outcomes: List[LinkDetectionOutcome] = []
    for observer_n, target_a, observer_o, target_b in pairs:
        if not overlay.nodes[observer_n].online:
            continue  # attack needs a live injector; skip this trial
        ground_truth = _overlay_link_exists(overlay, target_a, target_b)
        injected_at = overlay.sim.now
        marked_value = inject_marked_pseudonym(overlay, observer_n, target_a)
        watcher = watch_for_marked_value(
            overlay, observer_o, target_b, marked_value
        )
        overlay.run_until(overlay.sim.now + detection_window)
        outcomes.append(
            LinkDetectionOutcome(
                observer_n=observer_n,
                target_a=target_a,
                observer_o=observer_o,
                target_b=target_b,
                marked_value=marked_value,
                injected_at=injected_at,
                detected_via_b=watcher.detected_via_b_at is not None,
                detection_time=watcher.detected_via_b_at,
                seen_anywhere=watcher.seen_anywhere_at is not None,
                ground_truth_link=ground_truth,
            )
        )
        overlay.nodes[observer_o].observer = None
        if trial_spacing > 0:
            overlay.run_until(overlay.sim.now + trial_spacing)
    return outcomes
