"""Threat-model analyses from paper Section III-E: static coalition
exposure over the trust graph, internal-observer instrumentation,
overlay-size estimation, and the timing-analysis link-detection attack.
"""

from .analysis import (
    CoalitionExposure,
    coalition_exposure,
    cut_components,
    is_vertex_cut,
)
from .audit import AuditReport, run_privacy_audit
from .link_detection import (
    LinkDetectionOutcome,
    inject_marked_pseudonym,
    run_link_detection_trials,
    watch_for_marked_value,
)
from .observers import ObserverCoalition, Sighting
from .size_estimation import SizeEstimate, estimate_overlay_size
from .traffic_analysis import (
    TrafficSummary,
    direct_node_channel_fraction,
    endpoint_message_counts,
    summarize_traffic,
    top_channels,
)
from .vertexcut import (
    VertexCutOutcome,
    install_flow_control,
    measure_flow_control,
)

__all__ = [
    "CoalitionExposure",
    "coalition_exposure",
    "is_vertex_cut",
    "cut_components",
    "ObserverCoalition",
    "Sighting",
    "SizeEstimate",
    "estimate_overlay_size",
    "LinkDetectionOutcome",
    "inject_marked_pseudonym",
    "watch_for_marked_value",
    "run_link_detection_trials",
    "VertexCutOutcome",
    "install_flow_control",
    "measure_flow_control",
    "AuditReport",
    "run_privacy_audit",
    "TrafficSummary",
    "endpoint_message_counts",
    "top_channels",
    "direct_node_channel_fraction",
    "summarize_traffic",
]
