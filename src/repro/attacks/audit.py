"""A packaged privacy audit: run the Section III-E threat suite.

:func:`run_privacy_audit` builds a live overlay over a trust graph and
executes the full attack battery against it:

1. **Static coalition exposure** — random coalitions of a given size:
   how many identities they learn, how often they form vertex cuts.
2. **Size estimation** (III-E4) — accuracy of the coalition's
   live-pseudonym population estimate.
3. **Timing-analysis link detection** (III-E2) — precision of the
   marked-pseudonym attack over sampled observer/target quadruples.

The result is an :class:`AuditReport` suitable for printing — the kind
of artifact a group deploying the system would want before trusting it.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from ..config import SystemConfig
from ..core import Overlay
from ..errors import ExperimentError
from .analysis import coalition_exposure
from .link_detection import run_link_detection_trials
from .observers import ObserverCoalition
from .size_estimation import estimate_overlay_size

__all__ = ["AuditReport", "run_privacy_audit"]


@dataclasses.dataclass(frozen=True)
class AuditReport:
    """Aggregate outcome of a privacy audit."""

    num_nodes: int
    coalition_size: int
    coalitions_tested: int
    mean_ids_learned: float
    vertex_cut_fraction: float
    size_estimate_error: float
    detection_trials: int
    detections: int
    detection_correct: int

    @property
    def detection_rate(self) -> float:
        """Fraction of trials in which the coalition claimed a link."""
        if self.detection_trials == 0:
            return 0.0
        return self.detections / self.detection_trials

    @property
    def detection_accuracy(self) -> float:
        """Fraction of trials whose conclusion matched ground truth."""
        if self.detection_trials == 0:
            return 0.0
        return self.detection_correct / self.detection_trials

    def format_report(self) -> str:
        lines = [
            f"Privacy audit ({self.num_nodes} nodes, coalitions of "
            f"{self.coalition_size})",
            "-" * 64,
            "1. static exposure "
            f"({self.coalitions_tested} random coalitions):",
            f"     identities learned beyond the coalition: "
            f"{self.mean_ids_learned:.1f} on average "
            f"({self.mean_ids_learned / max(1, self.num_nodes):.1%} of the group)",
            f"     coalitions forming a vertex cut: "
            f"{self.vertex_cut_fraction:.0%}",
            "2. size estimation (III-E4, permitted knowledge):",
            f"     relative error of the live-pseudonym estimate: "
            f"{self.size_estimate_error:.1%}",
            "3. timing-analysis link detection (III-E2):",
            f"     trials: {self.detection_trials}, detections: "
            f"{self.detections} ({self.detection_rate:.0%}), correct "
            f"conclusions: {self.detection_accuracy:.0%}",
        ]
        return "\n".join(lines)


def _sample_coalitions(
    trust_graph: nx.Graph,
    size: int,
    count: int,
    rng: np.random.Generator,
) -> List[List[int]]:
    nodes = list(trust_graph.nodes())
    if size > len(nodes):
        raise ExperimentError("coalition size exceeds population")
    return [
        [int(node) for node in rng.choice(len(nodes), size=size, replace=False)]
        for _ in range(count)
    ]


def _sample_detection_quadruples(
    overlay: Overlay,
    count: int,
    rng: np.random.Generator,
) -> List[Tuple[int, int, int, int]]:
    """(observer_n, target_a, observer_o, target_b) with trust edges."""
    graph = overlay.trust_graph
    nodes = [node for node in graph.nodes() if graph.degree(node) >= 1]
    quadruples: List[Tuple[int, int, int, int]] = []
    attempts = 0
    while len(quadruples) < count and attempts < 50 * count:
        attempts += 1
        observer_n = nodes[int(rng.integers(0, len(nodes)))]
        observer_o = nodes[int(rng.integers(0, len(nodes)))]
        neighbors_n = list(graph.neighbors(observer_n))
        neighbors_o = list(graph.neighbors(observer_o))
        if not neighbors_n or not neighbors_o:
            continue
        target_a = neighbors_n[int(rng.integers(0, len(neighbors_n)))]
        target_b = neighbors_o[int(rng.integers(0, len(neighbors_o)))]
        if len({observer_n, target_a, observer_o, target_b}) < 4:
            continue
        quadruples.append((observer_n, target_a, observer_o, target_b))
    return quadruples


def run_privacy_audit(
    trust_graph: nx.Graph,
    config: SystemConfig,
    warmup: float = 40.0,
    coalition_size: int = 3,
    coalitions: int = 10,
    detection_trials: int = 6,
    detection_window: float = 4.0,
    seed: Optional[int] = None,
) -> AuditReport:
    """Run the full Section III-E attack battery against a live system."""
    if coalition_size < 1 or coalitions < 1:
        raise ExperimentError("coalition_size and coalitions must be >= 1")
    rng = np.random.default_rng(seed if seed is not None else config.seed)

    # 1. Static exposure over random coalitions.
    learned: List[float] = []
    cuts = 0
    for members in _sample_coalitions(trust_graph, coalition_size, coalitions, rng):
        exposure = coalition_exposure(trust_graph, members)
        learned.append(exposure.id_disclosure_fraction)
        if exposure.forms_vertex_cut:
            cuts += 1

    # 2 + 3. Dynamic attacks against a live overlay.
    overlay = Overlay.build(trust_graph, config, with_churn=False)
    observer_members = list(range(min(coalition_size, config.num_nodes)))
    coalition = ObserverCoalition(overlay, observer_members)
    coalition.install()
    overlay.start()
    overlay.run_until(warmup)
    estimate = estimate_overlay_size(overlay, coalition, window=warmup)

    quadruples = _sample_detection_quadruples(overlay, detection_trials, rng)
    outcomes = run_link_detection_trials(
        overlay, quadruples, detection_window=detection_window
    )

    return AuditReport(
        num_nodes=config.num_nodes,
        coalition_size=coalition_size,
        coalitions_tested=coalitions,
        mean_ids_learned=float(np.mean(learned)) if learned else 0.0,
        vertex_cut_fraction=cuts / coalitions,
        size_estimate_error=estimate.relative_error,
        detection_trials=len(outcomes),
        detections=sum(outcome.detected_via_b for outcome in outcomes),
        detection_correct=sum(outcome.correct for outcome in outcomes),
    )
