"""Overlay-size estimation by internal observers (Section III-E4).

"If the number of nodes in the system is small, then all nodes will
eventually see all pseudonyms in the system before they expire, which
allows nodes to estimate the number of participating nodes.  This,
however, does not violate our privacy requirements."

An observer coalition counts distinct live pseudonym values: each
online node owns exactly one live pseudonym, so the count of distinct
unexpired values seen over a recent window estimates the number of
(recently online) participants.  Counting *all* values ever seen
instead over-counts by the pseudonym turnover factor — the experiment
quantifies both estimators.
"""

from __future__ import annotations

import dataclasses

from ..core import Overlay
from ..errors import ExperimentError
from .observers import ObserverCoalition

__all__ = ["SizeEstimate", "estimate_overlay_size"]


@dataclasses.dataclass(frozen=True)
class SizeEstimate:
    """Outcome of the size-estimation attack."""

    true_size: int
    live_value_estimate: int
    all_values_seen: int
    window: float

    @property
    def relative_error(self) -> float:
        """Relative error of the live-value estimator."""
        if self.true_size == 0:
            return 0.0
        return abs(self.live_value_estimate - self.true_size) / self.true_size


def estimate_overlay_size(
    overlay: Overlay,
    coalition: ObserverCoalition,
    window: float,
) -> SizeEstimate:
    """Estimate the participant count from the coalition's sightings.

    Parameters
    ----------
    overlay:
        The system under attack (already run for a while with the
        coalition installed).
    coalition:
        The observers whose pooled sightings form the estimate.
    window:
        Only sightings within the last ``window`` shuffling periods
        count toward the live estimate, limiting staleness.

    Returns
    -------
    SizeEstimate
        The live-value estimator plus the naive all-values count.
    """
    if window <= 0:
        raise ExperimentError("window must be positive")
    now = overlay.sim.now
    live_values = set()
    for sighting in coalition.sightings():
        if sighting.time >= now - window and sighting.expires_at > now:
            live_values.add(sighting.value)
    # Each coalition member also knows its own pseudonym.
    for member in coalition.members:
        own = overlay.nodes[member].own
        if own is not None and not own.is_expired(now):
            live_values.add(own.value)
    return SizeEstimate(
        true_size=len(overlay.nodes),
        live_value_estimate=len(live_values),
        all_values_seen=len(coalition.distinct_values()),
        window=window,
    )
