"""Pseudonym-addressed unicast routing over the overlay.

The paper positions the robust overlay as a substrate for "an
additional routing layer"; this module implements one, in the spirit of
on-demand (AODV-style) route discovery adapted to the privacy model:

1. **Discovery** — the sender floods a TTL-limited
   :class:`~repro.routing.messages.RouteRequest` for a *pseudonym
   value* over the overlay's bidirectional channels.  Each forwarder
   remembers a reverse pointer (the previous hop's pseudonym endpoint)
   keyed by request id.
2. **Reply** — the pseudonym's holder answers with a
   :class:`~repro.routing.messages.RouteReply` that retraces the
   reverse pointers; every node on the path installs a forward pointer
   ``target_value -> next-hop endpoint`` in its routing table.
3. **Data** — :class:`~repro.routing.messages.DataPacket` unicasts
   follow the forward pointers hop by hop.

Identities never appear: targets are pseudonym values, and every
pointer is a pseudonym-service endpoint.  Pointers rot naturally —
endpoints close when pseudonyms expire and sends to them drop — so
routes are rediscovered on demand.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any, Dict, List, Optional, Set, Tuple

from ..core import Overlay
from ..errors import DisseminationError, ProtocolError
from ..privlink import Address
from .messages import DataPacket, RouteReply, RouteRequest

__all__ = ["RouteRecord", "DeliveryRecord", "PseudonymRouter"]


@dataclasses.dataclass
class RouteRecord:
    """Outcome of one route discovery."""

    request_id: int
    target_value: int
    started_at: float
    completed_at: Optional[float] = None
    route_hops: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        """Whether a route reply made it back to the origin."""
        return self.completed_at is not None

    @property
    def latency(self) -> Optional[float]:
        """Discovery round-trip time in shuffling periods."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at


@dataclasses.dataclass
class DeliveryRecord:
    """Outcome of one unicast send."""

    packet_id: int
    target_value: int
    started_at: float
    delivered_at: Optional[float] = None
    hops: Optional[int] = None

    @property
    def delivered(self) -> bool:
        """Whether the target's holder received the payload."""
        return self.delivered_at is not None


class _NodeRoutingState:
    """Per-node routing memory."""

    __slots__ = ("seen_requests", "reverse", "table")

    def __init__(self) -> None:
        self.seen_requests: Set[int] = set()
        # request_id -> endpoint of the hop the request arrived from
        # (None at the request origin).
        self.reverse: Dict[int, Optional[Address]] = {}
        # target pseudonym value -> next-hop endpoint.
        self.table: Dict[int, Address] = {}


class PseudonymRouter:
    """On-demand unicast routing by pseudonym value.

    Parameters
    ----------
    overlay:
        A running overlay.  :meth:`install` must be called before use;
        it claims every node's ``app_handler``.
    discovery_ttl:
        Hop budget for route-request floods.
    data_ttl:
        Hop budget for data packets (guards against routing loops from
        stale pointers).
    """

    def __init__(
        self, overlay: Overlay, discovery_ttl: int = 8, data_ttl: int = 24
    ) -> None:
        if discovery_ttl < 1:
            raise ProtocolError("discovery_ttl must be at least 1")
        if data_ttl < 1:
            raise ProtocolError("data_ttl must be at least 1")
        self._overlay = overlay
        self._discovery_ttl = discovery_ttl
        self._data_ttl = data_ttl
        self._states: Dict[int, _NodeRoutingState] = {
            node.node_id: _NodeRoutingState() for node in overlay.nodes
        }
        self._request_ids = itertools.count(1)
        self._packet_ids = itertools.count(1)
        self.discoveries: Dict[int, RouteRecord] = {}
        self.deliveries: Dict[int, DeliveryRecord] = {}
        # request_id -> origin node id, to close the discovery record.
        self._request_origin: Dict[int, int] = {}
        # target value -> queued (origin, payload, delivery record).
        self._pending: Dict[int, List[Tuple[int, Any, DeliveryRecord]]] = {}
        self._installed = False
        self.control_messages = 0
        self.data_messages = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def install(self) -> None:
        """Attach the router to every overlay node."""
        if self._installed:
            raise ProtocolError("router already installed")
        self._installed = True
        for node in self._overlay.nodes:
            node.app_handler = self._on_message

    def table_of(self, node_id: int) -> Dict[int, Address]:
        """A copy of one node's routing table (for inspection)."""
        return dict(self._state(node_id).table)

    def invalidate(self, node_id: int, target_value: int) -> bool:
        """Drop a node's cached route toward ``target_value``.

        The application-level analogue of an AODV route error: after
        repeated delivery failures (a hop offline, a pointer rotted),
        invalidating forces the next :meth:`send` to rediscover a path
        through currently-online nodes.  Returns whether a route was
        cached.
        """
        return self._state(node_id).table.pop(target_value, None) is not None

    def discover(self, origin_id: int, target_value: int) -> RouteRecord:
        """Start a route discovery from ``origin_id``.

        Returns immediately with a :class:`RouteRecord` that completes
        (``succeeded``) when the reply arrives; run the simulation to
        let it happen.
        """
        origin = self._overlay.nodes[origin_id]
        if not origin.online or origin.own is None:
            raise DisseminationError(f"origin {origin_id} is offline")
        request_id = next(self._request_ids)
        record = RouteRecord(
            request_id=request_id,
            target_value=target_value,
            started_at=self._overlay.sim.now,
        )
        self.discoveries[request_id] = record
        self._request_origin[request_id] = origin_id
        state = self._state(origin_id)
        state.seen_requests.add(request_id)
        state.reverse[request_id] = None
        request = RouteRequest(
            request_id=request_id,
            target_value=target_value,
            upstream=origin.own.address,
            hops=0,
            ttl=self._discovery_ttl,
        )
        self._flood(origin_id, request)
        return record

    def send(
        self, origin_id: int, target_value: int, payload: Any
    ) -> DeliveryRecord:
        """Unicast ``payload`` to the holder of ``target_value``.

        Uses the cached route when one exists; otherwise triggers a
        discovery and queues the payload until the route is installed.
        """
        origin = self._overlay.nodes[origin_id]
        if not origin.online:
            raise DisseminationError(f"origin {origin_id} is offline")
        packet_id = next(self._packet_ids)
        record = DeliveryRecord(
            packet_id=packet_id,
            target_value=target_value,
            started_at=self._overlay.sim.now,
        )
        self.deliveries[packet_id] = record
        state = self._state(origin_id)
        if target_value in state.table or self._holds_value(
            origin_id, target_value
        ):
            packet = DataPacket(
                packet_id=packet_id,
                target_value=target_value,
                payload=payload,
                hops=0,
                ttl=self._data_ttl,
            )
            self._forward_data(origin_id, packet)
        else:
            self._pending.setdefault(target_value, []).append(
                (origin_id, payload, record)
            )
            # Piggyback one discovery per pending batch.
            if len(self._pending[target_value]) == 1:
                self.discover(origin_id, target_value)
        return record

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _state(self, node_id: int) -> _NodeRoutingState:
        try:
            return self._states[node_id]
        except KeyError:
            # Node added after router construction (trust-graph growth).
            state = _NodeRoutingState()
            self._states[node_id] = state
            return state

    def _holds_value(self, node_id: int, target_value: int) -> bool:
        own = self._overlay.nodes[node_id].own
        return own is not None and own.value == target_value

    def _channels(self, node_id: int) -> List[Tuple[str, Any]]:
        """The node's current overlay channels (see dissemination)."""
        node = self._overlay.nodes[node_id]
        now = self._overlay.sim.now
        channels: List[Tuple[str, Any]] = [
            ("trusted", neighbor) for neighbor in node.links.trusted
        ]
        channels.extend(
            ("out", pseudonym.address)
            for pseudonym in node.links.pseudonym_links()
            if not pseudonym.is_expired(now)
        )
        return channels

    def _flood(self, node_id: int, request: RouteRequest) -> None:
        layer = self._overlay.link_layer
        for kind, target in self._channels(node_id):
            if kind == "trusted":
                layer.send_to_node(node_id, target, request)
            else:
                layer.send_to_endpoint(node_id, target, request)
            self.control_messages += 1

    def _send_via_endpoint(self, node_id: int, address: Address, message) -> None:
        self._overlay.link_layer.send_to_endpoint(node_id, address, message)

    def _on_message(self, node_id: int, payload: Any) -> None:
        if isinstance(payload, RouteRequest):
            self._handle_request(node_id, payload)
        elif isinstance(payload, RouteReply):
            self._handle_reply(node_id, payload)
        elif isinstance(payload, DataPacket):
            self._handle_data(node_id, payload)

    def _handle_request(self, node_id: int, request: RouteRequest) -> None:
        state = self._state(node_id)
        if request.request_id in state.seen_requests:
            return
        state.seen_requests.add(request.request_id)
        state.reverse[request.request_id] = request.upstream

    # The holder answers; everyone else re-floods with itself upstream.
        node = self._overlay.nodes[node_id]
        if self._holds_value(node_id, request.target_value):
            reply = RouteReply(
                request_id=request.request_id,
                target_value=request.target_value,
                downstream=node.own.address,
                hops=0,
            )
            self._send_via_endpoint(node_id, request.upstream, reply)
            self.control_messages += 1
            return
        if request.ttl <= 1 or node.own is None:
            return
        forwarded = RouteRequest(
            request_id=request.request_id,
            target_value=request.target_value,
            upstream=node.own.address,
            hops=request.hops + 1,
            ttl=request.ttl - 1,
        )
        self._flood(node_id, forwarded)

    def _handle_reply(self, node_id: int, reply: RouteReply) -> None:
        state = self._state(node_id)
        state.table[reply.target_value] = reply.downstream
        upstream = state.reverse.get(reply.request_id, "missing")
        if upstream is None:
            # This node originated the request: discovery complete.
            record = self.discoveries.get(reply.request_id)
            if record is not None and record.completed_at is None:
                record.completed_at = self._overlay.sim.now
                record.route_hops = reply.hops + 1
            self._drain_pending(node_id, reply.target_value)
            return
        if upstream == "missing":
            return  # stale reply; reverse pointer already gone
        node = self._overlay.nodes[node_id]
        if node.own is None:
            return
        forwarded = RouteReply(
            request_id=reply.request_id,
            target_value=reply.target_value,
            downstream=node.own.address,
            hops=reply.hops + 1,
        )
        self._send_via_endpoint(node_id, upstream, forwarded)
        self.control_messages += 1

    def _drain_pending(self, node_id: int, target_value: int) -> None:
        for origin_id, payload, record in self._pending.pop(target_value, []):
            packet = DataPacket(
                packet_id=next(self._packet_ids),
                target_value=target_value,
                payload=payload,
                hops=0,
                ttl=self._data_ttl,
            )
            record.packet_id = packet.packet_id
            self.deliveries[packet.packet_id] = record
            self._forward_data(origin_id, packet)

    def _handle_data(self, node_id: int, packet: DataPacket) -> None:
        if self._holds_value(node_id, packet.target_value):
            record = self.deliveries.get(packet.packet_id)
            if record is not None and record.delivered_at is None:
                record.delivered_at = self._overlay.sim.now
                record.hops = packet.hops
            return
        if packet.ttl <= 1:
            return
        forwarded = DataPacket(
            packet_id=packet.packet_id,
            target_value=packet.target_value,
            payload=packet.payload,
            hops=packet.hops + 1,
            ttl=packet.ttl - 1,
        )
        self._forward_data(node_id, forwarded)

    def _forward_data(self, node_id: int, packet: DataPacket) -> None:
        if self._holds_value(node_id, packet.target_value):
            self._handle_data(node_id, packet)
            return
        state = self._state(node_id)
        next_hop = state.table.get(packet.target_value)
        if next_hop is None:
            return  # no route (pointer rotted away); packet dropped
        self._send_via_endpoint(node_id, next_hop, packet)
        self.data_messages += 1
