"""Wire types for the pseudonym routing layer.

All addressing is by pseudonym: a route request hunts for the *holder
of a pseudonym value*, never for a node identity, and every hop-by-hop
pointer is a pseudonym-service endpoint address.  The routing layer
therefore discloses exactly what the overlay's own gossip already
discloses — pseudonyms — and nothing more.
"""

from __future__ import annotations

import dataclasses

from ..errors import ProtocolError
from ..privlink import Address

__all__ = ["RouteRequest", "RouteReply", "DataPacket"]


@dataclasses.dataclass(frozen=True)
class RouteRequest:
    """A TTL-limited flooded probe for the holder of ``target_value``.

    ``upstream`` is the pseudonym endpoint of the previous hop, giving
    the next hop a channel to send the reply back on; it is rewritten
    at every hop, so no node learns more than its direct predecessor's
    pseudonym — which it would learn from ordinary gossip anyway.
    """

    request_id: int
    target_value: int
    upstream: Address
    hops: int
    ttl: int

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ProtocolError("ttl must be non-negative")
        if self.hops < 0:
            raise ProtocolError("hops must be non-negative")


@dataclasses.dataclass(frozen=True)
class RouteReply:
    """Travels the reverse path, installing forward pointers.

    ``downstream`` is the pseudonym endpoint of the hop the reply just
    came from — the receiving node stores it as its next hop toward
    ``target_value``.
    """

    request_id: int
    target_value: int
    downstream: Address
    hops: int


@dataclasses.dataclass(frozen=True)
class DataPacket:
    """A unicast payload addressed to a pseudonym value."""

    packet_id: int
    target_value: int
    payload: object
    hops: int
    ttl: int

    def __post_init__(self) -> None:
        if self.ttl < 0:
            raise ProtocolError("ttl must be non-negative")
