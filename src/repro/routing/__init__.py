"""Pseudonym-addressed unicast routing — the "additional routing layer"
the paper names as an application of the robust overlay.  On-demand
route discovery (flooded requests, reverse-path replies) installs
per-node forward pointers keyed by pseudonym value; data packets follow
the pointers hop by hop.  Identities never appear on the wire.
"""

from .messages import DataPacket, RouteReply, RouteRequest
from .service import DeliveryRecord, PseudonymRouter, RouteRecord

__all__ = [
    "RouteRequest",
    "RouteReply",
    "DataPacket",
    "PseudonymRouter",
    "RouteRecord",
    "DeliveryRecord",
]
